//! The load/clear up-down counter used throughout the data path.
//!
//! Paper Fig. 13 shows each information-base memory component addressed by
//! counters with `Enable`, `Incr/Decr`, `Load` and `Clear` pins; Fig. 12
//! additionally uses a counter to decrement the TTL of the entry under
//! modification. One parameterized component covers both.

use crate::{mask, Clocked};

/// The control word staged on a counter's pins for the next clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterCtl {
    /// Keep the current value (enable deasserted).
    #[default]
    Hold,
    /// Add one, wrapping at the counter width.
    Increment,
    /// Subtract one, wrapping at the counter width.
    Decrement,
    /// Load a parallel value.
    Load(u64),
    /// Synchronously clear to zero.
    Clear,
}

/// A `width`-bit up/down counter.
#[derive(Debug, Clone)]
pub struct UpDownCounter {
    width: u32,
    value: u64,
    ctl: CounterCtl,
}

impl UpDownCounter {
    /// Creates a counter of `width` bits, initially zero.
    pub fn new(width: u32) -> Self {
        Self {
            width,
            value: 0,
            ctl: CounterCtl::Hold,
        }
    }

    /// Stages a control word for the next edge. Staging twice in one cycle
    /// keeps the last word, like re-driving the pins.
    pub fn control(&mut self, ctl: CounterCtl) {
        self.ctl = ctl;
    }

    /// Current count (pre-edge until `tick`).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Counter width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Largest representable count.
    pub fn max(&self) -> u64 {
        mask(u64::MAX, self.width)
    }
}

impl Clocked for UpDownCounter {
    fn tick(&mut self) {
        self.value = match self.ctl {
            CounterCtl::Hold => self.value,
            CounterCtl::Increment => mask(self.value.wrapping_add(1), self.width),
            CounterCtl::Decrement => mask(self.value.wrapping_sub(1), self.width),
            CounterCtl::Load(v) => mask(v, self.width),
            CounterCtl::Clear => 0,
        };
        self.ctl = CounterCtl::Hold;
    }

    fn reset(&mut self) {
        self.value = 0;
        self.ctl = CounterCtl::Hold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_up_and_down() {
        let mut c = UpDownCounter::new(10);
        c.control(CounterCtl::Increment);
        c.tick();
        c.control(CounterCtl::Increment);
        c.tick();
        assert_eq!(c.value(), 2);
        c.control(CounterCtl::Decrement);
        c.tick();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn hold_is_default_after_tick() {
        let mut c = UpDownCounter::new(10);
        c.control(CounterCtl::Increment);
        c.tick();
        c.tick(); // no staged control: hold
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn wraps_at_width() {
        let mut c = UpDownCounter::new(2);
        c.control(CounterCtl::Load(3));
        c.tick();
        c.control(CounterCtl::Increment);
        c.tick();
        assert_eq!(c.value(), 0);
        c.control(CounterCtl::Decrement);
        c.tick();
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn load_and_clear() {
        let mut c = UpDownCounter::new(8);
        c.control(CounterCtl::Load(0x1FF)); // truncated to 8 bits
        c.tick();
        assert_eq!(c.value(), 0xFF);
        c.control(CounterCtl::Clear);
        c.tick();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn pre_edge_value_visible() {
        let mut c = UpDownCounter::new(8);
        c.control(CounterCtl::Load(42));
        assert_eq!(c.value(), 0);
        c.tick();
        assert_eq!(c.value(), 42);
    }

    proptest! {
        #[test]
        fn increment_then_decrement_is_identity(start in 0u64..1024, width in 3u32..16) {
            let mut c = UpDownCounter::new(width);
            c.control(CounterCtl::Load(start));
            c.tick();
            let loaded = c.value();
            c.control(CounterCtl::Increment);
            c.tick();
            c.control(CounterCtl::Decrement);
            c.tick();
            prop_assert_eq!(c.value(), loaded);
        }
    }
}
