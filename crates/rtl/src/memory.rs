//! Synchronous-read block RAM.
//!
//! Each information-base level holds three of these (index, label and
//! operation components — paper Fig. 13), each "1 KB long" (1024 words).
//! FPGA block RAM registers the read address, so the data for an address
//! presented in cycle *t* appears on the output in cycle *t + 1*; the search
//! FSM's `WAIT FOR INFO`/`WAIT FOR READ VALUE` states (Fig. 11) exist to
//! absorb exactly this latency, and the 3-cycles-per-entry term of the
//! `3n + 5` search cost follows from it.

use crate::{mask, Clocked};

/// A word-addressed RAM with registered (1-cycle) reads and synchronous
/// writes. One read port and one write port, as in Fig. 13.
#[derive(Debug, Clone)]
pub struct SyncMemory {
    width: u32,
    words: Vec<u64>,
    // Staged pins.
    read_addr: Option<usize>,
    write: Option<(usize, u64)>,
    // Registered read output.
    data_out: u64,
}

impl SyncMemory {
    /// Creates a memory of `depth` words, each `width` bits, zero-filled.
    pub fn new(width: u32, depth: usize) -> Self {
        Self {
            width,
            words: vec![0; depth],
            read_addr: None,
            write: None,
            data_out: 0,
        }
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.words.len()
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Stages a read address; the word appears on [`Self::data_out`] after
    /// the next tick. Addresses wrap modulo the depth, as address buses
    /// narrower than the decoder would.
    pub fn set_read_addr(&mut self, addr: u64) {
        self.read_addr = Some(addr as usize % self.words.len());
    }

    /// Stages a write of `value` at `addr` for the next edge.
    pub fn write(&mut self, addr: u64, value: u64) {
        let addr = addr as usize % self.words.len();
        self.write = Some((addr, mask(value, self.width)));
    }

    /// The registered read output: the word addressed on the *previous*
    /// cycle.
    pub fn data_out(&self) -> u64 {
        self.data_out
    }

    /// Direct combinational peek, bypassing the read register. Not part of
    /// the hardware interface — used by tests and by the software-visible
    /// "read the information base directly" debug path.
    pub fn peek(&self, addr: usize) -> u64 {
        self.words[addr % self.words.len()]
    }
}

impl Clocked for SyncMemory {
    fn tick(&mut self) {
        // Write-first semantics: a simultaneous read of the written address
        // observes the new value, matching Altera M4K write-through mode.
        if let Some((addr, value)) = self.write.take() {
            self.words[addr] = value;
        }
        if let Some(addr) = self.read_addr.take() {
            self.data_out = self.words[addr];
        }
    }

    fn reset(&mut self) {
        self.words.fill(0);
        self.read_addr = None;
        self.write = None;
        self.data_out = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_has_one_cycle_latency() {
        let mut m = SyncMemory::new(20, 16);
        m.write(3, 777);
        m.tick();
        m.set_read_addr(3);
        assert_eq!(m.data_out(), 0, "data must not appear before the edge");
        m.tick();
        assert_eq!(m.data_out(), 777);
    }

    #[test]
    fn data_out_holds_between_reads() {
        let mut m = SyncMemory::new(20, 16);
        m.write(1, 11);
        m.tick();
        m.set_read_addr(1);
        m.tick();
        m.tick(); // no new read address
        assert_eq!(m.data_out(), 11);
    }

    #[test]
    fn write_through_on_same_cycle() {
        let mut m = SyncMemory::new(20, 16);
        m.write(5, 99);
        m.set_read_addr(5);
        m.tick();
        assert_eq!(m.data_out(), 99);
    }

    #[test]
    fn values_masked_to_width() {
        let mut m = SyncMemory::new(2, 8);
        m.write(0, 0b1111);
        m.tick();
        assert_eq!(m.peek(0), 0b11);
    }

    #[test]
    fn addresses_wrap() {
        let mut m = SyncMemory::new(8, 4);
        m.write(5, 42); // wraps to 1
        m.tick();
        assert_eq!(m.peek(1), 42);
        m.set_read_addr(9); // wraps to 1
        m.tick();
        assert_eq!(m.data_out(), 42);
    }

    #[test]
    fn reset_clears_contents() {
        let mut m = SyncMemory::new(8, 4);
        m.write(2, 9);
        m.tick();
        m.reset();
        assert_eq!(m.peek(2), 0);
        assert_eq!(m.data_out(), 0);
    }

    proptest! {
        #[test]
        fn write_then_read_round_trips(addr in 0u64..1024, value: u64) {
            let mut m = SyncMemory::new(20, 1024);
            m.write(addr, value);
            m.tick();
            m.set_read_addr(addr);
            m.tick();
            prop_assert_eq!(m.data_out(), value & 0xF_FFFF);
        }
    }
}
