//! Width-parameterized equality comparators.
//!
//! "The data path also contains three comparators of different data widths
//! (32 bits, 20 bits, and 10 bits) so index and label values can be compared
//! when performing computations" (paper §3.2): 32 bits compares the packet
//! identifier against level-1 indices, 20 bits compares labels against
//! level-2/3 indices, and 10 bits compares the read address counter against
//! the write address counter to detect the end of a search.
//!
//! A comparator is purely combinational; the struct exists so designs can
//! name their comparators for waveform tracing.

use crate::mask;

/// An equality comparator over `width`-bit operands.
#[derive(Debug, Clone)]
pub struct Comparator {
    width: u32,
    a: u64,
    b: u64,
}

impl Comparator {
    /// Creates a comparator for `width`-bit operands.
    pub fn new(width: u32) -> Self {
        Self { width, a: 0, b: 0 }
    }

    /// Drives the operand pins. Inputs wider than the comparator are
    /// truncated, as the physical wiring would.
    pub fn drive(&mut self, a: u64, b: u64) {
        self.a = mask(a, self.width);
        self.b = mask(b, self.width);
    }

    /// The `A = B` output for the currently driven operands (combinational —
    /// valid immediately).
    pub fn aeb(&self) -> bool {
        self.a == self.b
    }

    /// Comparator width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// One-shot comparison without holding state.
    pub fn compare(width: u32, a: u64, b: u64) -> bool {
        mask(a, width) == mask(b, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_and_unequal() {
        let mut c = Comparator::new(20);
        c.drive(500, 500);
        assert!(c.aeb());
        c.drive(500, 501);
        assert!(!c.aeb());
    }

    #[test]
    fn compares_only_low_bits() {
        // Two values differing only above the comparator width are equal.
        let mut c = Comparator::new(10);
        c.drive(0x400 | 5, 5);
        assert!(c.aeb());
        assert!(Comparator::compare(10, 0x400 | 5, 5));
        assert!(!Comparator::compare(11, 0x400 | 5, 5));
    }

    proptest! {
        #[test]
        fn matches_masked_equality(a: u64, b: u64, width in 1u32..=64) {
            prop_assert_eq!(
                Comparator::compare(width, a, b),
                mask(a, width) == mask(b, width)
            );
        }
    }
}
