//! VCD round-trip: a minimal VCD reader re-parses the writer's output and
//! must reconstruct the exact per-cycle signal values of the original
//! trace. Guards the export that makes the Fig. 14–16 waveforms viewable
//! in GTKWave.

use mpls_rtl::vcd::to_vcd;
use mpls_rtl::{SignalId, Trace};
use proptest::prelude::*;
use std::collections::HashMap;

/// A minimal VCD model: variable names and the value timeline.
struct ParsedVcd {
    /// id code -> (name, width)
    vars: HashMap<String, (String, u32)>,
    /// (timestamp, id code, value)
    changes: Vec<(usize, String, u64)>,
}

fn parse_vcd(text: &str) -> ParsedVcd {
    let mut vars = HashMap::new();
    let mut changes = Vec::new();
    let mut now = 0usize;
    let mut in_defs = true;
    for line in text.lines() {
        let line = line.trim();
        if in_defs {
            if let Some(rest) = line.strip_prefix("$var wire ") {
                // "<width> <id> <name> $end"
                let mut parts = rest.split_whitespace();
                let width: u32 = parts.next().unwrap().parse().unwrap();
                let id = parts.next().unwrap().to_string();
                let name = parts.next().unwrap().to_string();
                vars.insert(id, (name, width));
            }
            if line == "$enddefinitions $end" {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            now = ts.parse().unwrap();
        } else if let Some(rest) = line.strip_prefix('b') {
            // "b<binary> <id>"
            let (value, id) = rest.split_once(' ').unwrap();
            changes.push((now, id.to_string(), u64::from_str_radix(value, 2).unwrap()));
        } else if !line.is_empty() {
            // "<0|1><id>"
            let (v, id) = line.split_at(1);
            changes.push((now, id.to_string(), v.parse().unwrap()));
        }
    }
    ParsedVcd { vars, changes }
}

/// Replays the parsed changes into a per-cycle value table.
fn replay(parsed: &ParsedVcd, cycles: usize) -> HashMap<String, Vec<u64>> {
    let mut current: HashMap<&str, u64> = HashMap::new();
    let mut out: HashMap<String, Vec<u64>> = parsed
        .vars
        .values()
        .map(|(n, _)| (n.clone(), Vec::new()))
        .collect();
    let mut idx = 0;
    for cycle in 0..cycles {
        while idx < parsed.changes.len() && parsed.changes[idx].0 <= cycle {
            let (_, id, v) = &parsed.changes[idx];
            current.insert(&parsed.vars[id].0, *v);
            idx += 1;
        }
        // The VCD writer emits changes *at* the cycle they take effect.
        for (id, (name, _)) in &parsed.vars {
            let _ = id;
            out.get_mut(name)
                .unwrap()
                .push(current.get(name.as_str()).copied().unwrap_or(0));
        }
    }
    out
}

fn build_trace(columns: &[(String, u32, Vec<u64>)]) -> (Trace, Vec<SignalId>) {
    let mut t = Trace::new();
    let ids: Vec<SignalId> = columns
        .iter()
        .map(|(name, width, _)| t.probe(name.clone(), *width))
        .collect();
    let cycles = columns[0].2.len();
    for c in 0..cycles {
        for (i, (_, _, values)) in columns.iter().enumerate() {
            t.sample(ids[i], values[c]);
        }
        t.commit_cycle();
    }
    (t, ids)
}

#[test]
fn figure14_vcd_round_trips() {
    let run = mpls_core_fixture();
    let vcd = to_vcd(&run, "m", 20);
    let parsed = parse_vcd(&vcd);
    assert_eq!(parsed.vars.len(), run.signal_count());
    let replayed = replay(&parsed, run.cycles());
    for i in 0..run.signal_count() {
        let id = run.find(run.name(sig_at(&run, i))).unwrap();
        let name = run.name(id).to_string();
        for (c, &replayed_value) in replayed[&name].iter().enumerate().take(run.cycles()) {
            assert_eq!(replayed_value, run.value_at(id, c), "{name} at cycle {c}");
        }
    }
}

/// Stand-in helpers: Trace has no public index iterator, so walk by name
/// through the known Fig. 14 signal list.
fn sig_at(trace: &Trace, i: usize) -> SignalId {
    // Reconstruct by probing names in declaration order via find() over
    // the canonical signal names used by the modifier's trace.
    const NAMES: [&str; 15] = [
        "level",
        "packetid",
        "label_lookup",
        "old_label",
        "new_label",
        "operation_in",
        "save",
        "lookup",
        "w_index",
        "r_index",
        "label_out",
        "operation_out",
        "lookup_done",
        "packetdiscard",
        "stack_items",
    ];
    trace.find(NAMES[i]).expect("known signal")
}

fn mpls_core_fixture() -> Trace {
    // A hand-made trace shaped like the modifier's (15 signals) so this
    // crate does not depend on mpls-core: reuse the same names.
    let columns: Vec<(String, u32, Vec<u64>)> = vec![
        ("level".into(), 2, vec![1, 1, 1, 2, 2]),
        ("packetid".into(), 32, vec![0, 600, 600, 0, 0]),
        ("label_lookup".into(), 20, vec![0, 0, 0, 5, 5]),
        ("old_label".into(), 32, vec![0, 600, 600, 0, 0]),
        ("new_label".into(), 20, vec![0, 500, 500, 0, 0]),
        ("operation_in".into(), 2, vec![0, 3, 3, 0, 0]),
        ("save".into(), 1, vec![0, 1, 1, 0, 0]),
        ("lookup".into(), 1, vec![0, 0, 0, 1, 1]),
        ("w_index".into(), 11, vec![0, 0, 1, 1, 1]),
        ("r_index".into(), 10, vec![0, 0, 0, 0, 1]),
        ("label_out".into(), 20, vec![0, 0, 0, 0, 500]),
        ("operation_out".into(), 2, vec![0, 0, 0, 0, 3]),
        ("lookup_done".into(), 1, vec![0, 0, 0, 0, 1]),
        ("packetdiscard".into(), 1, vec![0, 0, 0, 0, 0]),
        ("stack_items".into(), 2, vec![0, 0, 0, 1, 1]),
    ];
    build_trace(&columns).0
}

proptest! {
    /// Arbitrary traces round-trip exactly through the VCD writer.
    #[test]
    fn arbitrary_traces_round_trip(
        raw in proptest::collection::vec(
            (1u32..24, proptest::collection::vec(any::<u64>(), 1..20)),
            1..6,
        )
    ) {
        // Equalize column lengths and mask values to each width.
        let cycles = raw.iter().map(|(_, v)| v.len()).min().unwrap();
        let columns: Vec<(String, u32, Vec<u64>)> = raw
            .iter()
            .enumerate()
            .map(|(i, (width, values))| {
                let masked: Vec<u64> = values[..cycles]
                    .iter()
                    .map(|v| mpls_rtl::mask(*v, *width))
                    .collect();
                (format!("sig{i}"), *width, masked)
            })
            .collect();
        let (trace, ids) = build_trace(&columns);
        let vcd = to_vcd(&trace, "t", 20);
        let parsed = parse_vcd(&vcd);
        prop_assert_eq!(parsed.vars.len(), columns.len());
        let replayed = replay(&parsed, cycles);
        for (i, (name, _, values)) in columns.iter().enumerate() {
            for c in 0..cycles {
                prop_assert_eq!(
                    replayed[name][c],
                    values[c],
                    "{} cycle {}", name, c
                );
            }
            let _ = ids[i];
        }
    }
}
