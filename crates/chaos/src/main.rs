//! `chaos`: run a seeded corpus of generated scenarios through the
//! invariant oracles; shrink and persist a repro for every failure.
//!
//! ```text
//! chaos --quick                 # 40-case PR-gate corpus (~1 min)
//! chaos --cases 200             # full seeded corpus
//! chaos --seed 7 --cases 500    # a different corpus
//! chaos --out target/repros     # where failing repros land
//! ```
//!
//! Exit status is the number of failing cases (0 = all oracles green).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cases: u64 = 200;
    let mut seed: u64 = 0xC4A0_5EED;
    let mut out = PathBuf::from("chaos-repros");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cases = 40,
            "--cases" => {
                cases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cases needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"))
            }
            "--out" => {
                out = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage("--out needs a path"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: chaos [--quick | --cases N] [--seed S] [--out DIR]\n\
                     Runs N generated scenarios (seed S) through the invariant\n\
                     oracles; failing cases are shrunk and written to DIR."
                );
                return ExitCode::SUCCESS;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }

    println!("chaos corpus: {cases} cases, seed {seed:#x}");
    let failures = mpls_chaos::run_corpus(seed, cases, |done, total| {
        if done % 20 == 0 || done == total {
            println!("  {done}/{total} cases checked");
        }
    });

    if failures.is_empty() {
        println!("all oracles green across {cases} cases");
        return ExitCode::SUCCESS;
    }
    for f in &failures {
        println!(
            "case {}: {} — shrunk to {} fault(s)",
            f.case, f.violation, f.faults_left
        );
        match mpls_chaos::write_repro(&out, f) {
            Ok(p) => println!("  repro: {}", p.display()),
            Err(e) => println!("  could not write repro: {e}"),
        }
    }
    println!("{} of {cases} cases failed", failures.len());
    ExitCode::from(failures.len().min(255) as u8)
}

fn usage(msg: &str) -> ! {
    eprintln!("chaos: {msg} (try --help)");
    std::process::exit(2);
}
