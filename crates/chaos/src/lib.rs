#![warn(missing_docs)]
//! Chaos harness for the simulator: a deterministic scenario fuzzer, a
//! suite of invariant oracles, and a greedy failure minimizer.
//!
//! The fuzzer composes topology families × fault schedules (link and
//! node outages, control partitions, PDU chaos, wire loss) × control
//! planes (centralized, LDP, segment routing) × LDP timers × traffic
//! mixes × router kinds into ordinary [`Scenario`] documents — the same
//! schema `mpls-sim run` executes — so every generated case, and every
//! shrunk repro, is a standalone JSON file anyone can replay.
//!
//! Every case is judged by six oracles:
//!
//! 1. **Conservation** — each flow's packets are all accounted for:
//!    `sent == delivered + router + queue + policer + link + loss drops`.
//! 2. **Shard identity** — the serialized report at 4 shards is
//!    byte-identical to 1 shard.
//! 3. **Linear/fast identity** — the `software_fast` router's report is
//!    byte-identical to `software_linear`'s.
//! 4. **Fixed point** — when every fault heals, converged LDP tables
//!    route each signaled FEC to the same egress at the same cost as
//!    the omniscient centralized solver.
//! 5. **Quiesce** — FIB churn stops within a bounded window of the last
//!    disturbance; nothing happens after the network goes quiet.
//! 6. **Source route** — on SR cases whose faults all heal, the path a
//!    probe of each flow takes through the reported FIBs equals the
//!    route an independently compiled fabric predicts (segments, ECMP
//!    hashing and RLD fallbacks included).
//!
//! On a violation, [`minimize`] greedily drops faults, flows, LSPs and
//! nodes while the violation persists, yielding a minimal repro.

use mpls_cli::scenario::{
    AttachDecl, ClosedLoopDecl, ControlChoice, FaultEventDecl, FaultsDecl, FlowDecl, LdpDecl,
    LinkDecl, LspDecl, NodeDecl, PatternDecl, PduChaosDecl, PoliceDecl, RouterDecl, Scenario,
    SrDecl, SubscriberDecl,
};
use mpls_control::{Hop, NodeConfig, NodeId, RouterRole, Topology};
use mpls_dataplane::LabelOp;
use mpls_net::SimReport;
use mpls_packet::ipv4::parse_addr;
use mpls_packet::Label;
use mpls_sr::{SrFabric, SrPolicySpec};
use std::collections::BTreeMap;

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Oracle name: `conservation`, `shard_identity`, `engine_identity`,
    /// `router_identity`, `fixed_point`, `quiesce`, `sr_source_route` or
    /// `runnable`.
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A deterministic splitmix64 stream; the whole harness is a pure
/// function of its seeds.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.next_u64() % 100 < pct
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

/// One generated case: a corpus index and the scenario it maps to.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// Position in the corpus (stable for a given corpus seed).
    pub id: u64,
    /// The generated scenario.
    pub scenario: Scenario,
}

fn node(id: u32, role: &str) -> NodeDecl {
    NodeDecl {
        id,
        role: role.into(),
        name: None,
        shard: None,
    }
}

fn link(a: u32, b: u32, cost: u32, mbps: u64, delay_us: u64) -> LinkDecl {
    LinkDecl {
        a,
        b,
        cost,
        bandwidth_mbps: mbps,
        delay_us,
    }
}

/// Converts a synthesized [`Topology`] into scenario decls, re-rolling
/// per-link bandwidth and delay so the fuzzer still explores
/// heterogeneous channels. Endpoints are the first and last LERs, which
/// both family generators place in different pods/rings.
fn from_topology(t: &Topology, rng: &mut Rng) -> (Vec<NodeDecl>, Vec<LinkDecl>, u32, u32, bool) {
    let nodes: Vec<NodeDecl> = t
        .nodes()
        .iter()
        .map(|n| {
            node(
                n.id,
                if n.role == RouterRole::Ler {
                    "ler"
                } else {
                    "lsr"
                },
            )
        })
        .collect();
    let links = t
        .links()
        .iter()
        .map(|l| {
            link(
                l.a,
                l.b,
                l.cost,
                rng.range(1, 10) * 100,
                rng.range(100, 1500),
            )
        })
        .collect();
    let lers: Vec<u32> = t
        .nodes()
        .iter()
        .filter(|n| n.role == RouterRole::Ler)
        .map(|n| n.id)
        .collect();
    // A LER's attachment link in a fat tree is a bridge: no link-
    // disjoint standby exists, so these cases stay off protection.
    let protectable = !t
        .nodes()
        .iter()
        .any(|n| n.role == RouterRole::Ler && t.neighbors(n.id).len() < 2);
    (nodes, links, lers[0], *lers.last().unwrap(), protectable)
}

/// Topology families the fuzzer draws from. Each yields the node set,
/// link set, the two LER endpoints traffic runs between, and whether a
/// link-disjoint standby exists for protection.
fn topology(rng: &mut Rng) -> (Vec<NodeDecl>, Vec<LinkDecl>, u32, u32, bool) {
    match rng.range(0, 4) {
        // A line: no alternate path, faults on it are service-affecting.
        0 => {
            let n = rng.range(3, 6) as u32;
            let mut nodes = vec![node(0, "ler")];
            for id in 1..n - 1 {
                nodes.push(node(id, "lsr"));
            }
            nodes.push(node(n - 1, "ler"));
            let links = (0..n - 1)
                .map(|i| {
                    link(
                        i,
                        i + 1,
                        1 + (rng.range(0, 2) as u32),
                        rng.range(1, 10) * 100,
                        rng.range(100, 1500),
                    )
                })
                .collect();
            (nodes, links, 0, n - 1, false)
        }
        // The paper's two-path figure: a fast north path and a slower,
        // costlier south path — restoration and protection both have
        // somewhere to go.
        1 => {
            let nodes = vec![
                node(0, "ler"),
                node(1, "ler"),
                node(2, "lsr"),
                node(3, "lsr"),
                node(4, "lsr"),
                node(5, "lsr"),
            ];
            let south_cost = 2 + rng.range(0, 2) as u32;
            let links = vec![
                link(0, 2, 1, 1000, rng.range(200, 800)),
                link(2, 3, 1, 1000, rng.range(200, 800)),
                link(3, 1, 1, 1000, rng.range(200, 800)),
                link(0, 4, south_cost, 100, rng.range(1000, 2500)),
                link(4, 5, south_cost, 100, rng.range(1000, 2500)),
                link(5, 1, south_cost, 100, rng.range(1000, 2500)),
            ];
            (nodes, links, 0, 1, true)
        }
        // Small instances of the scale families EXT-15 streams at
        // 1000+ nodes: the same generators, kept narrow so the whole
        // corpus still runs in seconds. A LER's attachment link in a
        // fat tree is a bridge, so these cases stay on restoration.
        3 => {
            let t = Topology::fat_tree(4, 1 + rng.range(0, 1) as u32, 1_000_000_000, 1_000);
            from_topology(&t, rng)
        }
        4 => {
            let t = Topology::ring_of_rings(
                rng.range(3, 4) as u32,
                rng.range(2, 3) as u32,
                1_000_000_000,
                1_000,
            );
            from_topology(&t, rng)
        }
        // A ring: every node has two ways out.
        _ => {
            let n = rng.range(4, 7) as u32;
            let far = n / 2;
            let nodes = (0..n)
                .map(|id| node(id, if id == 0 || id == far { "ler" } else { "lsr" }))
                .collect();
            let links = (0..n)
                .map(|i| {
                    link(
                        i,
                        (i + 1) % n,
                        1 + (rng.range(0, 2) as u32),
                        rng.range(2, 10) * 100,
                        rng.range(100, 1200),
                    )
                })
                .collect();
            (nodes, links, 0, far, true)
        }
    }
}

/// Generates the `idx`-th scenario of the corpus under `corpus_seed`.
/// Every fault window closes before the horizon, so converged state is
/// comparable against the centralized fixed point.
pub fn generate(corpus_seed: u64, idx: u64) -> ChaosCase {
    let mut rng = Rng::new(corpus_seed ^ idx.wrapping_mul(0x5851_F42D_4C95_7F2D));
    let (nodes, mut links, ler_a, ler_b, protectable) = topology(&mut rng);

    // Heterogeneous propagation delays: stretch a subset of links by a
    // large factor so per-channel lookahead differs wildly — the regime
    // the merge engine's per-shard bounds are supposed to exploit, and
    // where a buggy bound computation would actually misorder events.
    if rng.chance(40) {
        for l in &mut links {
            if rng.chance(35) {
                l.delay_us *= rng.range(4, 12);
            }
        }
    }

    let attached = vec![
        AttachDecl {
            node: ler_b,
            prefix: "192.168.1.0/24".into(),
        },
        AttachDecl {
            node: ler_a,
            prefix: "10.1.0.0/16".into(),
        },
    ];
    // Control plane: the omniscient solver, in-band LDP, or compiled
    // segment-routing source routes.
    let control = match rng.range(0, 2) {
        0 => "centralized",
        1 => "ldp",
        _ => "sr",
    };
    let use_ldp = control == "ldp";
    let use_sr = control == "sr";
    let recovery = match rng.range(0, 2) {
        0 => "restoration",
        // Protection needs a link-disjoint standby; on a line (or past
        // a fat tree's bridge attachment links) there is none. LDP and
        // SR replace the recovery model wholesale.
        1 if protectable && !use_ldp && !use_sr => "protection",
        _ => "none",
    };
    let lsps = vec![
        LspDecl {
            ingress: ler_a,
            egress: ler_b,
            fec: "192.168.1.0/24".into(),
            cos: rng.range(0, 7) as u8,
            bandwidth_mbps: 0,
            explicit_route: None,
            php: rng.chance(30),
            protected: recovery == "protection",
        },
        LspDecl {
            ingress: ler_b,
            egress: ler_a,
            fec: "10.1.0.0/16".into(),
            cos: 0,
            bandwidth_mbps: 0,
            explicit_route: None,
            php: false,
            protected: false,
        },
    ];

    let mut flows = Vec::new();
    let nflows = rng.range(1, 3);
    for i in 0..nflows {
        let forward = i == 0 || rng.chance(60);
        let (ingress, dst) = if forward {
            (ler_a, format!("192.168.1.{}", rng.range(1, 250)))
        } else {
            (ler_b, format!("10.1.0.{}", rng.range(1, 250)))
        };
        let interval_us = rng.range(40, 400);
        let pattern = match rng.range(0, 3) {
            0 => PatternDecl::Cbr { interval_us },
            1 => PatternDecl::Poisson {
                mean_interval_us: interval_us,
            },
            2 => PatternDecl::OnOff {
                on_us: rng.range(300, 2000),
                off_us: rng.range(300, 2000),
                interval_us,
            },
            // Closed-loop sources self-clock off reverse-path acks, so
            // every generated fault window also stresses the AIMD
            // recovery path and the conservation oracle sees
            // retransmissions.
            _ => PatternDecl::ClosedLoop {
                mean_arrival_us: rng.range(300, 1500),
                size_min_pkts: 2,
                size_max_pkts: rng.range(8, 96),
                size_alpha_milli: rng.range(1050, 1900) as u32,
                max_cwnd: rng.range(4, 32),
                rto_us: rng.range(2_000, 12_000),
                ecn_threshold: rng.range(0, 12) as u32,
                pacing_us: rng.range(1, 5),
                sla_fct_ms: if rng.chance(30) { rng.range(5, 40) } else { 0 },
                diurnal_period_ms: if rng.chance(25) { rng.range(10, 40) } else { 0 },
                diurnal_trough_pct: rng.range(30, 100) as u8,
                flash_start_ms: rng.range(0, 15),
                flash_duration_ms: if rng.chance(25) { rng.range(3, 10) } else { 0 },
                flash_multiplier_pct: rng.range(100, 400) as u32,
            },
        };
        flows.push(FlowDecl {
            name: format!("f{i}"),
            ingress,
            src: if forward {
                "10.1.0.9".into()
            } else {
                "192.168.1.9".into()
            },
            dst,
            payload_bytes: rng.range(64, 900) as usize,
            precedence: rng.range(0, 7) as u8,
            pattern,
            start_ms: rng.range(0, 8),
            stop_ms: rng.range(25, 45),
            police: if rng.chance(20) {
                Some(PoliceDecl {
                    rate_mbps: rng.range(1, 40),
                    burst_bytes: rng.range(1500, 9000),
                })
            } else {
                None
            },
        });
    }

    // Fault schedule. Targets are exclusive: each link or node hosts at
    // most one scheduled fault, and a crashing node claims its incident
    // links too, so windows cannot half-revive each other.
    let mut faults = FaultsDecl {
        recovery: recovery.into(),
        detection_delay_us: rng.range(300, 1500),
        ..FaultsDecl::default()
    };
    let mut free_links: Vec<(u32, u32)> = links.iter().map(|l| (l.a, l.b)).collect();
    let mut free_nodes: Vec<u32> = nodes.iter().map(|n| n.id).collect();
    let nfaults = rng.range(0, 3);
    for _ in 0..nfaults {
        let down = rng.range(8, 20);
        let up = down + rng.range(3, 12);
        match rng.range(0, 3) {
            0 if !free_links.is_empty() => {
                let (a, b) =
                    free_links.swap_remove(rng.range(0, free_links.len() as u64 - 1) as usize);
                faults
                    .events
                    .push(FaultEventDecl::LinkDown { at_ms: down, a, b });
                faults
                    .events
                    .push(FaultEventDecl::LinkUp { at_ms: up, a, b });
            }
            1 if !free_nodes.is_empty() => {
                let n = free_nodes.swap_remove(rng.range(0, free_nodes.len() as u64 - 1) as usize);
                free_links.retain(|&(a, b)| a != n && b != n);
                faults.events.push(FaultEventDecl::NodeDown {
                    at_ms: down,
                    node: n,
                });
                faults
                    .events
                    .push(FaultEventDecl::NodeUp { at_ms: up, node: n });
            }
            2 if !free_links.is_empty() => {
                let (a, b) =
                    free_links.swap_remove(rng.range(0, free_links.len() as u64 - 1) as usize);
                faults
                    .events
                    .push(FaultEventDecl::PartitionStart { at_ms: down, a, b });
                faults
                    .events
                    .push(FaultEventDecl::PartitionEnd { at_ms: up, a, b });
            }
            _ => {}
        }
    }
    if use_ldp && rng.chance(40) && !links.is_empty() {
        let l = &links[rng.range(0, links.len() as u64 - 1) as usize];
        let from = rng.range(5, 15);
        faults.pdu_chaos.push(PduChaosDecl {
            a: l.a,
            b: l.b,
            loss: if rng.chance(60) { rng.f64() * 0.3 } else { 0.0 },
            duplicate: if rng.chance(40) { rng.f64() * 0.3 } else { 0.0 },
            reorder: if rng.chance(40) { rng.f64() * 0.3 } else { 0.0 },
            corrupt: if rng.chance(40) { rng.f64() * 0.2 } else { 0.0 },
            from_ms: from,
            until_ms: from + rng.range(5, 15),
        });
    }
    if rng.chance(25) && !links.is_empty() {
        let l = &links[rng.range(0, links.len() as u64 - 1) as usize];
        faults.loss.push(mpls_cli::scenario::LinkLossDecl {
            a: l.a,
            b: l.b,
            probability: rng.f64() * 0.05,
        });
    }
    let have_faults =
        !(faults.events.is_empty() && faults.loss.is_empty() && faults.pdu_chaos.is_empty());

    let router = if use_sr {
        // The embedded router's hardware stack holds three entries;
        // source routes plus metadata LSEs need the software data plane.
        if rng.chance(50) {
            RouterDecl::SoftwareHash
        } else {
            RouterDecl::SoftwareLinear
        }
    } else {
        match rng.range(0, 3) {
            0 => RouterDecl::Embedded {
                clock_mhz: [25.0, 50.0, 100.0][rng.range(0, 2) as usize],
            },
            1 => RouterDecl::SoftwareHash,
            _ => RouterDecl::SoftwareLinear,
        }
    };

    // SR knob sweep: deep and shallow push budgets (loose-hop
    // compression on and off), RLDs that sometimes hide the entropy
    // pair, and both metadata sub-stacks.
    let sr = SrDecl {
        rld: rng.range(2, 12) as u8,
        max_push_depth: rng.range(2, 12) as u8,
        entropy: rng.chance(70),
        mna: rng.chance(25),
        ..SrDecl::default()
    };

    let ldp = LdpDecl {
        hello_interval_us: [500, 1000][rng.range(0, 1) as usize],
        hold_us: rng.range(3500, 7000),
        max_backoff_exp: rng.range(3, 6) as u32,
        jitter_seed: rng.next_u64(),
        stale_ttl_us: if rng.chance(40) {
            rng.range(4000, 9000)
        } else {
            0
        },
    };

    // A fifth of the corpus adds a subscriber population behind the
    // forward ingress: three residential SLA classes expand into
    // closed-loop flows with a diurnal curve and (sometimes) a flash
    // crowd, so population-scale ack-clocked load rides through the
    // same fault windows and oracle battery.
    let subscribers = if rng.chance(20) {
        vec![SubscriberDecl {
            name: "pop".into(),
            ingress: ler_a,
            src: "10.0.2.1".into(),
            dst: format!("192.168.1.{}", rng.range(1, 250)),
            subscribers: rng.range(200, 3000),
            mean_think_ms: rng.range(200, 1200),
            base: ClosedLoopDecl {
                size_max_pkts: rng.range(8, 64),
                max_cwnd: rng.range(4, 24),
                rto_us: rng.range(2_000, 12_000),
                ecn_threshold: rng.range(0, 12) as u32,
                diurnal_period_ms: if rng.chance(50) { rng.range(10, 40) } else { 0 },
                diurnal_trough_pct: rng.range(30, 100) as u8,
                flash_start_ms: rng.range(0, 15),
                flash_duration_ms: if rng.chance(50) { rng.range(3, 10) } else { 0 },
                flash_multiplier_pct: rng.range(100, 400) as u32,
                ..ClosedLoopDecl::default()
            },
            classes: Vec::new(),
            start_ms: rng.range(0, 8),
            stop_ms: rng.range(25, 45),
        }]
    } else {
        Vec::new()
    };

    let last_fault_ms = faults
        .events
        .iter()
        .map(|e| match *e {
            FaultEventDecl::LinkDown { at_ms, .. }
            | FaultEventDecl::LinkUp { at_ms, .. }
            | FaultEventDecl::NodeDown { at_ms, .. }
            | FaultEventDecl::NodeUp { at_ms, .. }
            | FaultEventDecl::PartitionStart { at_ms, .. }
            | FaultEventDecl::PartitionEnd { at_ms, .. } => at_ms,
        })
        .chain(faults.pdu_chaos.iter().map(|c| c.until_ms))
        .max()
        .unwrap_or(0);
    let last_stop_ms = flows
        .iter()
        .map(|f| f.stop_ms)
        .chain(subscribers.iter().map(|s| s.stop_ms))
        .max()
        .unwrap_or(0);

    let scenario = Scenario {
        nodes,
        links,
        attached,
        lsps,
        flows,
        subscribers,
        router,
        queue: Default::default(),
        faults: have_faults.then_some(faults),
        control: Some(control.into()),
        ldp: use_ldp.then_some(ldp),
        sr: use_sr.then_some(sr),
        topology: None,
        telemetry: None,
        seed: rng.next_u64(),
        horizon_ms: last_fault_ms.max(last_stop_ms) + 100,
        shards: None,
        // Half the corpus runs its base oracles on the merge engine so
        // the fuzzer exercises both schedulers end to end.
        engine: rng.chance(50).then(|| "merge".into()),
    };
    ChaosCase { id: idx, scenario }
}

// ---------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------

/// Extra settle time the quiesce oracle grants past the last scheduled
/// disturbance (plus hold time and stale TTL) before FIB churn counts
/// as a violation.
const QUIESCE_BUDGET_NS: u64 = 40_000_000;

/// LDP floods hop by hop, so settling time grows with the topology:
/// the base budget plus one slowest-link traversal per node covers the
/// worst flooding chain the corpus generates (the wide scale-family
/// cases) while staying tight on the small figures.
fn quiesce_budget_ns(sc: &Scenario) -> u64 {
    let max_delay_ns = sc
        .links
        .iter()
        .map(|l| l.delay_us * 1_000)
        .max()
        .unwrap_or(0);
    QUIESCE_BUDGET_NS + sc.nodes.len() as u64 * max_delay_ns
}

fn conservation(report: &SimReport) -> Result<(), Violation> {
    for (spec, s) in &report.flows {
        let accounted = s.delivered
            + s.router_dropped
            + s.queue_dropped
            + s.policer_dropped
            + s.link_dropped
            + s.loss_dropped;
        if s.sent != accounted {
            return Err(Violation {
                oracle: "conservation",
                detail: format!(
                    "flow {:?}: sent {} != accounted {} (delivered {} router {} queue {} \
                     policer {} link {} loss {})",
                    spec.name,
                    s.sent,
                    accounted,
                    s.delivered,
                    s.router_dropped,
                    s.queue_dropped,
                    s.policer_dropped,
                    s.link_dropped,
                    s.loss_dropped
                ),
            });
        }
    }
    Ok(())
}

/// True when every scheduled fault window closes: each downed link and
/// crashed node comes back and each partition heals, so the end state is
/// comparable against the fault-free fixed point.
fn all_faults_heal(sc: &Scenario) -> bool {
    let Some(f) = &sc.faults else { return true };
    let mut link_bal: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    let mut node_bal: BTreeMap<u32, i64> = BTreeMap::new();
    let mut part_bal: BTreeMap<(u32, u32), i64> = BTreeMap::new();
    let key = |a: u32, b: u32| (a.min(b), a.max(b));
    for ev in &f.events {
        match *ev {
            FaultEventDecl::LinkDown { a, b, .. } => *link_bal.entry(key(a, b)).or_default() += 1,
            FaultEventDecl::LinkUp { a, b, .. } => *link_bal.entry(key(a, b)).or_default() -= 1,
            FaultEventDecl::NodeDown { node, .. } => *node_bal.entry(node).or_default() += 1,
            FaultEventDecl::NodeUp { node, .. } => *node_bal.entry(node).or_default() -= 1,
            FaultEventDecl::PartitionStart { a, b, .. } => {
                *part_bal.entry(key(a, b)).or_default() += 1
            }
            FaultEventDecl::PartitionEnd { a, b, .. } => {
                *part_bal.entry(key(a, b)).or_default() -= 1
            }
        }
    }
    link_bal.values().all(|&v| v <= 0)
        && node_bal.values().all(|&v| v <= 0)
        && part_bal.values().all(|&v| v <= 0)
}

fn last_disturbance_ns(sc: &Scenario) -> u64 {
    let Some(f) = &sc.faults else { return 0 };
    f.events
        .iter()
        .map(|e| match *e {
            FaultEventDecl::LinkDown { at_ms, .. }
            | FaultEventDecl::LinkUp { at_ms, .. }
            | FaultEventDecl::NodeDown { at_ms, .. }
            | FaultEventDecl::NodeUp { at_ms, .. }
            | FaultEventDecl::PartitionStart { at_ms, .. }
            | FaultEventDecl::PartitionEnd { at_ms, .. } => at_ms,
        })
        .chain(f.pdu_chaos.iter().map(|c| c.until_ms))
        .max()
        .unwrap_or(0)
        * 1_000_000
}

/// Traces an unlabeled packet for `dst` from `ingress` through per-node
/// forwarding tables. Returns the delivering node and total link cost,
/// `None` when it would be dropped, and an error on a forwarding loop.
fn trace(
    configs: &BTreeMap<NodeId, NodeConfig>,
    topo: &Topology,
    ingress: NodeId,
    dst: u32,
) -> Result<Option<(NodeId, u64)>, Violation> {
    let link_cost = |a: NodeId, b: NodeId| -> u64 {
        topo.link_between(a, b)
            .map(|id| topo.links()[id as usize].cost as u64)
            .unwrap_or(u64::MAX)
    };
    let Some(cfg) = configs.get(&ingress) else {
        return Ok(None);
    };
    let Some(fec) = cfg
        .fecs
        .iter()
        .filter(|f| f.prefix.contains(dst))
        .max_by_key(|f| f.prefix.len)
    else {
        return Ok(None);
    };
    let mut node = ingress;
    let mut label: Option<Label> = Some(fec.push_label);
    let Some(mut hop) = cfg.next_hop_for(label) else {
        return Ok(None);
    };
    let mut cost = 0u64;
    for _ in 0..=configs.len() {
        match hop {
            Hop::Local => return Ok(Some((node, cost))),
            Hop::Node(next) => {
                cost += link_cost(node, next);
                node = next;
                let Some(cfg) = configs.get(&node) else {
                    return Ok(None);
                };
                match label {
                    Some(l) => {
                        let Some(b) = cfg
                            .bindings
                            .iter()
                            .find(|b| b.level == 2 && b.key == l.value() as u64)
                        else {
                            return Ok(None);
                        };
                        match b.op {
                            LabelOp::Swap => {
                                label = Some(b.new_label);
                                match cfg.next_hop_for(label) {
                                    Some(h) => hop = h,
                                    None => return Ok(None),
                                }
                            }
                            LabelOp::Pop => {
                                label = None;
                                match cfg.ip_route_for(dst) {
                                    Some(h) => hop = h,
                                    None => return Ok(None),
                                }
                            }
                            _ => return Ok(None),
                        }
                    }
                    None => match cfg.ip_route_for(dst) {
                        Some(h) => hop = h,
                        None => return Ok(None),
                    },
                }
            }
        }
    }
    Err(Violation {
        oracle: "fixed_point",
        detail: format!("forwarding loop tracing {dst:#x} from {ingress}"),
    })
}

/// Runs every applicable oracle on `sc`. `Ok(())` means the case is
/// green; the first violation wins otherwise.
pub fn check(sc: &Scenario) -> Result<(), Violation> {
    let run_engine =
        |shards: usize, s: &Scenario, engine: Option<&str>| -> Result<SimReport, Violation> {
            s.run_with_overrides(false, Some(shards), None, engine)
                .map_err(|e| Violation {
                    oracle: "runnable",
                    detail: e.to_string(),
                })
        };
    let run = |shards: usize, s: &Scenario| run_engine(shards, s, None);
    let base = run(1, sc)?;

    // Oracle 1: packet conservation, per flow, per cause.
    conservation(&base)?;

    // Oracle 2: shard byte-identity (1 vs 4).
    let sharded = run(4, sc)?;
    let a = serde_json::to_string(&base).expect("report serializes");
    let b = serde_json::to_string(&sharded).expect("report serializes");
    if a != b {
        return Err(Violation {
            oracle: "shard_identity",
            detail: format!(
                "4-shard report diverged from sequential ({} vs {} bytes)",
                a.len(),
                b.len()
            ),
        });
    }

    // Oracle 2b: engine byte-identity — the barrier and channel-merge
    // schedulers must agree at 4 shards regardless of which engine the
    // scenario itself selected.
    let barrier = run_engine(4, sc, Some("barrier"))?;
    let merge = run_engine(4, sc, Some("merge"))?;
    let eb = serde_json::to_string(&barrier).expect("report serializes");
    let em = serde_json::to_string(&merge).expect("report serializes");
    if eb != em {
        return Err(Violation {
            oracle: "engine_identity",
            detail: format!(
                "merge-engine report diverged from barrier at 4 shards ({} vs {} bytes)",
                eb.len(),
                em.len()
            ),
        });
    }

    // Oracle 3: the fast software path must match the linear reference
    // byte for byte.
    if matches!(sc.router, RouterDecl::SoftwareLinear) {
        let mut twin = sc.clone();
        twin.router = RouterDecl::SoftwareFast;
        let fast = run(1, &twin)?;
        let c = serde_json::to_string(&fast).expect("report serializes");
        if a != c {
            return Err(Violation {
                oracle: "router_identity",
                detail: "software_fast report diverged from software_linear".into(),
            });
        }
    }

    let mode = sc.control_mode(None).map_err(|e| Violation {
        oracle: "runnable",
        detail: e.to_string(),
    })?;

    // Oracle 6: on SR cases, once every fault heals the reported FIBs
    // must route a probe of each flow along exactly the source route an
    // independently compiled fabric predicts — same segments, same
    // entropy-hashed ECMP choices, same RLD fallbacks.
    if mode == ControlChoice::Sr {
        if all_faults_heal(sc) {
            let fibs = base.fibs.as_ref().ok_or_else(|| Violation {
                oracle: "sr_source_route",
                detail: "sr run exposed no FIBs".into(),
            })?;
            let cp = sc.build_control_plane().map_err(|e| Violation {
                oracle: "runnable",
                detail: e.to_string(),
            })?;
            let mut fabric = SrFabric::new(cp.topology().clone(), sc.sr_config());
            for id in cp.lsp_ids() {
                let req = &cp.lsp(id).expect("listed lsp exists").request;
                fabric.add_policy(SrPolicySpec {
                    ingress: req.ingress,
                    egress: req.egress,
                    prefix: req.fec,
                    cos: req.cos,
                });
            }
            for route in cp.attached_routes() {
                fabric.add_local(route.node, route.prefix);
            }
            fabric.compile();
            for f in &sc.flows {
                let (src, dst) = match (parse_addr(&f.src), parse_addr(&f.dst)) {
                    (Some(s), Some(d)) => (s, d),
                    _ => continue,
                };
                let want = fabric.predict_path(f.ingress, src, dst);
                let got = SrFabric::walk_configs(fibs, f.ingress, src, dst);
                if got != want {
                    return Err(Violation {
                        oracle: "sr_source_route",
                        detail: format!(
                            "flow {:?} ({} -> {}): delivered path {:?} != compiled route {:?}",
                            f.name, f.src, f.dst, got, want
                        ),
                    });
                }
            }
        }
        return Ok(());
    }
    if mode != ControlChoice::Ldp {
        return Ok(());
    }

    // Oracle 5: quiesce — the control plane must stop reprogramming
    // FIBs within a bounded window of the last scheduled disturbance.
    let hold_ns = sc.ldp_config().hold_ns;
    let ttl_ns = sc.ldp_config().stale_ttl_ns;
    let bound = last_disturbance_ns(sc) + hold_ns + ttl_ns + quiesce_budget_ns(sc);
    if base.control.last_fib_change_ns > bound {
        return Err(Violation {
            oracle: "quiesce",
            detail: format!(
                "FIBs still changing at {} ns, {} ns past the quiesce bound",
                base.control.last_fib_change_ns,
                base.control.last_fib_change_ns - bound
            ),
        });
    }

    // Oracle 4: semantic fixed point vs the centralized solver — only
    // comparable when every fault healed, leaving the full topology.
    if all_faults_heal(sc) {
        let ldp_fibs = base.fibs.as_ref().ok_or_else(|| Violation {
            oracle: "fixed_point",
            detail: "ldp run exposed no FIBs".into(),
        })?;
        let cp = sc.build_control_plane().map_err(|e| Violation {
            oracle: "runnable",
            detail: e.to_string(),
        })?;
        let central: BTreeMap<NodeId, NodeConfig> = cp
            .topology()
            .nodes()
            .iter()
            .map(|n| (n.id, cp.config_for(n.id)))
            .collect();
        for l in &sc.lsps {
            let (addr, len) = l
                .fec
                .split_once('/')
                .and_then(|(a, l)| Some((parse_addr(a)?, l.parse::<u8>().ok()?)))
                .ok_or_else(|| Violation {
                    oracle: "runnable",
                    detail: format!("bad fec {:?}", l.fec),
                })?;
            // Probe one host inside the prefix.
            let probe = if len < 30 { addr | 5 } else { addr };
            let got = trace(ldp_fibs, cp.topology(), l.ingress, probe)?;
            let want = trace(&central, cp.topology(), l.ingress, probe)?;
            match (got, want) {
                (Some((ge, gc)), Some((we, wc))) => {
                    if ge != we || gc != wc {
                        return Err(Violation {
                            oracle: "fixed_point",
                            detail: format!(
                                "{}->{:?}: ldp delivers at node {ge} cost {gc}, \
                                 centralized at node {we} cost {wc}",
                                l.ingress, l.fec
                            ),
                        });
                    }
                }
                (None, Some(_)) => {
                    return Err(Violation {
                        oracle: "fixed_point",
                        detail: format!(
                            "{}->{:?}: centralized routes but converged LDP drops",
                            l.ingress, l.fec
                        ),
                    });
                }
                // Centralized can't route it either (a shrunk scenario
                // may have lost the egress) — nothing to compare.
                (_, None) => {}
            }
        }
    }
    Ok(())
}

/// `check` as an `Option`, treating unrunnable scenarios produced by
/// shrinking (e.g. a removed egress breaks signaling) as non-failing.
fn violates(sc: &Scenario) -> Option<Violation> {
    match check(sc) {
        Err(v) if v.oracle != "runnable" => Some(v),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// The number of scheduled faults in a scenario — the quantity the
/// minimizer drives toward zero.
pub fn fault_count(sc: &Scenario) -> usize {
    sc.faults
        .as_ref()
        .map(|f| f.events.len() + f.pdu_chaos.len() + f.loss.len())
        .unwrap_or(0)
}

/// Greedily minimizes a failing scenario: repeatedly drop one fault
/// event, chaos window, loss entry, flow, LSP or node (with its incident
/// links and references) and keep the removal whenever the violation
/// persists. Runs to a fixpoint. Returns the shrunk scenario and the
/// violation it still exhibits.
pub fn minimize(sc: &Scenario) -> (Scenario, Violation) {
    let mut best = sc.clone();
    let mut witness = violates(&best).expect("minimize requires a failing scenario");
    loop {
        let mut progressed = false;
        // Faults first: the repro should name as few as possible.
        let nev = best.faults.as_ref().map(|f| f.events.len()).unwrap_or(0);
        for i in (0..nev).rev() {
            let mut cand = best.clone();
            cand.faults.as_mut().unwrap().events.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        let nch = best.faults.as_ref().map(|f| f.pdu_chaos.len()).unwrap_or(0);
        for i in (0..nch).rev() {
            let mut cand = best.clone();
            cand.faults.as_mut().unwrap().pdu_chaos.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        let nls = best.faults.as_ref().map(|f| f.loss.len()).unwrap_or(0);
        for i in (0..nls).rev() {
            let mut cand = best.clone();
            cand.faults.as_mut().unwrap().loss.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        if fault_count(&best) == 0 {
            if let Some(f) = &best.faults {
                if f.events.is_empty() && f.pdu_chaos.is_empty() && f.loss.is_empty() {
                    let mut cand = best.clone();
                    cand.faults = None;
                    if let Some(v) = violates(&cand) {
                        best = cand;
                        witness = v;
                        progressed = true;
                    }
                }
            }
        }
        for i in (0..best.flows.len()).rev() {
            let mut cand = best.clone();
            cand.flows.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        for i in (0..best.subscribers.len()).rev() {
            let mut cand = best.clone();
            cand.subscribers.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        for i in (0..best.lsps.len()).rev() {
            let mut cand = best.clone();
            cand.lsps.remove(i);
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        // Nodes last: each removal also strips incident links and every
        // declaration that references the node.
        let ids: Vec<u32> = best.nodes.iter().map(|n| n.id).collect();
        for id in ids {
            let mut cand = best.clone();
            cand.nodes.retain(|n| n.id != id);
            cand.links.retain(|l| l.a != id && l.b != id);
            cand.attached.retain(|a| a.node != id);
            cand.lsps.retain(|l| {
                l.ingress != id
                    && l.egress != id
                    && l.explicit_route
                        .as_ref()
                        .map(|r| !r.contains(&id))
                        .unwrap_or(true)
            });
            cand.flows.retain(|f| f.ingress != id);
            cand.subscribers.retain(|s| s.ingress != id);
            if let Some(f) = &mut cand.faults {
                f.events.retain(|e| match *e {
                    FaultEventDecl::LinkDown { a, b, .. }
                    | FaultEventDecl::LinkUp { a, b, .. }
                    | FaultEventDecl::PartitionStart { a, b, .. }
                    | FaultEventDecl::PartitionEnd { a, b, .. } => a != id && b != id,
                    FaultEventDecl::NodeDown { node, .. } | FaultEventDecl::NodeUp { node, .. } => {
                        node != id
                    }
                });
                f.pdu_chaos.retain(|c| c.a != id && c.b != id);
                f.loss.retain(|l| l.a != id && l.b != id);
            }
            if cand.nodes.is_empty() {
                continue;
            }
            if let Some(v) = violates(&cand) {
                best = cand;
                witness = v;
                progressed = true;
            }
        }
        if !progressed {
            return (best, witness);
        }
    }
}

// ---------------------------------------------------------------------
// Corpus runner
// ---------------------------------------------------------------------

/// One corpus failure: the case, its violation, and the minimized repro.
#[derive(Debug)]
pub struct Failure {
    /// Corpus index of the failing case.
    pub case: u64,
    /// The violation the *minimized* scenario still exhibits.
    pub violation: Violation,
    /// The minimized scenario.
    pub minimized: Scenario,
    /// Scheduled faults left after shrinking.
    pub faults_left: usize,
}

/// Runs `n` generated cases under `corpus_seed`; failing cases are
/// shrunk. Calls `progress(done, total)` after each case.
pub fn run_corpus(corpus_seed: u64, n: u64, mut progress: impl FnMut(u64, u64)) -> Vec<Failure> {
    let mut failures = Vec::new();
    for idx in 0..n {
        let case = generate(corpus_seed, idx);
        if let Some(_v) = violates(&case.scenario) {
            let (minimized, violation) = minimize(&case.scenario);
            let faults_left = fault_count(&minimized);
            failures.push(Failure {
                case: idx,
                violation,
                minimized,
                faults_left,
            });
        }
        progress(idx + 1, n);
    }
    failures
}

/// Serializes a minimized repro as a standalone `mpls-sim run` scenario
/// file in `dir`, returning the path.
pub fn write_repro(dir: &std::path::Path, f: &Failure) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("chaos-repro-{}.json", f.case));
    let doc = serde_json::to_string_pretty(&f.minimized).expect("scenario serializes");
    std::fs::write(&path, format!("{doc}\n"))?;
    let meta = dir.join(format!("chaos-repro-{}.oracle.txt", f.case));
    std::fs::write(
        &meta,
        format!(
            "case: {}\noracle: {}\ndetail: {}\nfaults_left: {}\nreplay: mpls-sim run {}\n",
            f.case,
            f.violation.oracle,
            f.violation.detail,
            f.faults_left,
            path.display()
        ),
    )?;
    Ok(path)
}
