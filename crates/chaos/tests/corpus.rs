//! The seeded corpus itself, exercised the way CI runs it.

use mpls_chaos::{check, generate};

const SEED: u64 = 0xC4A0_5EED;

/// The generator is a pure function of (seed, index): the same inputs
/// must produce byte-identical scenarios, or repro files would rot.
#[test]
fn generation_is_deterministic() {
    for idx in [0, 7, 19, 123] {
        let a = serde_json::to_string(&generate(SEED, idx).scenario).unwrap();
        let b = serde_json::to_string(&generate(SEED, idx).scenario).unwrap();
        assert_eq!(a, b, "case {idx} not reproducible");
    }
    let a = serde_json::to_string(&generate(SEED, 3).scenario).unwrap();
    let b = serde_json::to_string(&generate(SEED ^ 1, 3).scenario).unwrap();
    assert_ne!(a, b, "different seeds should diverge");
}

/// Generated scenarios cover the fault space: across a modest window
/// the corpus must include LDP and centralized control, scheduled
/// events, PDU chaos, wire loss, both execution engines, and
/// heterogeneous (stretched) link delays.
#[test]
fn corpus_covers_the_fault_space() {
    let (mut ldp, mut central, mut events, mut chaos, mut loss) = (0, 0, 0, 0, 0);
    let (mut merge, mut stretched) = (0, 0);
    let (mut closed_loop, mut subs) = (0, 0);
    for idx in 0..40 {
        let sc = generate(SEED, idx).scenario;
        closed_loop += sc
            .flows
            .iter()
            .filter(|f| {
                matches!(
                    f.pattern,
                    mpls_cli::scenario::PatternDecl::ClosedLoop { .. }
                )
            })
            .count();
        subs += sc.subscribers.len();
        if sc.uses_ldp(None).unwrap() {
            ldp += 1;
        } else {
            central += 1;
        }
        if let Some(f) = &sc.faults {
            events += f.events.len();
            chaos += f.pdu_chaos.len();
            loss += f.loss.len();
        }
        if sc.engine.as_deref() == Some("merge") {
            merge += 1;
        }
        // The delay-stretch pass multiplies by >= 4, so any link at 4x
        // the family's base ranges or beyond marks a stretched case.
        if sc.links.iter().any(|l| l.delay_us >= 4000) {
            stretched += 1;
        }
    }
    assert!(ldp >= 5, "too few ldp cases: {ldp}");
    assert!(central >= 5, "too few centralized cases: {central}");
    assert!(events >= 10, "too few scheduled faults: {events}");
    assert!(chaos >= 2, "too few pdu-chaos windows: {chaos}");
    assert!(loss >= 2, "too few loss entries: {loss}");
    assert!(merge >= 8, "too few merge-engine cases: {merge}");
    assert!(merge <= 32, "too few barrier-engine cases: {}", 40 - merge);
    assert!(
        stretched >= 4,
        "too few heterogeneous-delay cases: {stretched}"
    );
    assert!(closed_loop >= 5, "too few closed-loop flows: {closed_loop}");
    assert!(subs >= 2, "too few subscriber populations: {subs}");
}

/// A slice of the corpus with every oracle green — the same invariant
/// gate CI's `chaos --quick` job runs over 40 cases in release mode.
/// (Meaningless under `bug-demo`, which plants a conservation bug on
/// purpose; the gate lives in `bug_demo.rs` there.)
#[cfg(not(feature = "bug-demo"))]
#[test]
fn corpus_slice_passes_all_oracles() {
    for idx in 0..12 {
        let case = generate(SEED, idx);
        if let Err(v) = check(&case.scenario) {
            panic!("case {idx} violated an invariant: {v}");
        }
    }
}
