//! Proof that the harness catches and minimizes a real bug.
//!
//! With `--features bug-demo`, mpls-net deliberately drops the fault-loss
//! flow-stat increment on odd-numbered links (`chaos-bug`). The corpus
//! must detect the broken conservation, shrink the scenario to a handful
//! of faults, and emit a repro that still fails when replayed from disk.
#![cfg(feature = "bug-demo")]

use mpls_chaos::{check, fault_count, generate, minimize, write_repro, Failure};
use mpls_cli::Scenario;

const SEED: u64 = 0xC4A0_5EED;

#[test]
fn planted_bug_is_detected_shrunk_and_replayable() {
    // Scan the quick corpus for the first case the planted bug breaks.
    let (idx, scenario, first) = (0..40)
        .find_map(|idx| {
            let case = generate(SEED, idx);
            check(&case.scenario).err().map(|v| (idx, case.scenario, v))
        })
        .expect("the planted conservation bug must surface within 40 cases");
    assert_eq!(
        first.oracle, "conservation",
        "expected the conservation oracle to fire, got {first}"
    );

    // Shrinking keeps the violation while stripping the incidental
    // structure; the acceptance bar is a repro of at most 5 faults.
    let (minimized, witness) = minimize(&scenario);
    assert_eq!(witness.oracle, "conservation");
    let left = fault_count(&minimized);
    assert!(left >= 1, "a conservation break needs at least one fault");
    assert!(left <= 5, "repro still carries {left} faults");
    assert!(
        fault_count(&minimized) <= fault_count(&scenario),
        "shrinking must never grow the scenario"
    );

    // The emitted repro is a standalone scenario file that still fails
    // when loaded back the way `mpls-sim run` would load it.
    let dir = std::env::temp_dir().join(format!("chaos-bug-demo-{idx}"));
    let failure = Failure {
        case: idx,
        violation: witness,
        minimized,
        faults_left: left,
    };
    let path = write_repro(&dir, &failure).expect("repro written");
    let replayed = Scenario::load(&path).expect("repro parses");
    let again = check(&replayed).expect_err("replayed repro must still fail");
    assert_eq!(again.oracle, "conservation");
    std::fs::remove_dir_all(&dir).ok();
}
