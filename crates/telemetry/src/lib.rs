//! Zero-cost-when-disabled telemetry for the embedded MPLS reproduction.
//!
//! The paper validates its label stack modifier through signal traces and
//! cycle counts; the simulator layers above it need the software analogue —
//! per-stage counters, queue-depth time series, latency histograms — in the
//! spirit of the per-stage counters programmable switch pipelines expose.
//!
//! The crate provides:
//!
//! * typed instruments ([`instrument`]): monotonic [`Counter`]s, [`Gauge`]s,
//!   fixed-bucket [`Histogram`]s and ring-buffer [`TimeSeries`] with a
//!   configurable sampling interval that degrades gracefully (downsampling)
//!   instead of growing without bound;
//! * a [`Registry`] that owns instruments and hands out copyable integer
//!   handles, so the hot path records by index with no string hashing;
//! * a lightweight span/event [`Tracer`] keyed by *simulation* time in
//!   nanoseconds, never wall clock;
//! * JSON and CSV exporters ([`export`]) over a serializable
//!   [`TelemetryReport`] snapshot.
//!
//! Everything funnels through the [`TelemetrySink`] trait. Instrumented code
//! is generic over a sink; the default [`NoopSink`] is a zero-sized type
//! whose methods are empty `#[inline]` bodies guarded by the associated
//! constant [`TelemetrySink::ENABLED`], so a build that never opts into
//! telemetry compiles the instrumentation away entirely (the bench guard in
//! `mpls-bench` pins this overhead contract).

pub mod export;
pub mod instrument;
pub mod registry;
pub mod report;
pub mod sink;
pub mod tracer;

pub use export::{to_csv as telemetry_to_csv, to_json as telemetry_to_json};
pub use instrument::{Counter, Gauge, Histogram, TimeSeries};
pub use registry::{CounterId, GaugeId, HistId, Registry, SeriesId, TelemetryConfig};
pub use report::{
    EventExport, HistogramExport, SeriesExport, SpanExport, TelemetryReport, ValueExport,
};
pub use sink::{NoopSink, TelemetrySink};
pub use tracer::{Event, Span, SpanId, Tracer};
