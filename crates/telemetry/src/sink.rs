//! The sink trait instrumented code is generic over.
//!
//! The overhead contract: code generic over `S: TelemetrySink` pays nothing
//! when `S = NoopSink`. Every `NoopSink` method is an empty `#[inline]`
//! body, the handles it returns are zero-valued `Copy` newtypes, and the
//! associated constant [`TelemetrySink::ENABLED`] lets callers guard whole
//! blocks (`if S::ENABLED { ... }`) so even argument construction folds away
//! at compile time. `mpls-bench`'s guard test pins this in practice.

use crate::registry::{CounterId, GaugeId, HistId, Registry, SeriesId};
use crate::report::TelemetryReport;
use crate::tracer::SpanId;
use crate::Histogram;

/// Destination for instrument registrations and recordings.
pub trait TelemetrySink {
    /// `false` only for sinks whose recordings are compiled away; lets hot
    /// paths skip sample *construction*, not just delivery.
    const ENABLED: bool;

    /// Registers a monotonic counter.
    fn counter(&mut self, name: &str) -> CounterId;
    /// Registers a gauge.
    fn gauge(&mut self, name: &str) -> GaugeId;
    /// Registers a fixed-bucket histogram (inclusive upper bounds).
    fn histogram(&mut self, name: &str, bounds: Vec<u64>) -> HistId;
    /// Registers a time series.
    fn series(&mut self, name: &str) -> SeriesId;

    /// Adds to a counter.
    fn counter_add(&mut self, id: CounterId, delta: u64);
    /// Sets a gauge.
    fn gauge_set(&mut self, id: GaugeId, value: f64);
    /// Records a histogram sample.
    fn hist_record(&mut self, id: HistId, value: u64);
    /// Merges an externally accumulated histogram into a registered one
    /// (same bucket layout). Lets parallel shards buffer samples locally
    /// and fold them in deterministically at a barrier.
    fn hist_merge(&mut self, id: HistId, other: &Histogram);
    /// Offers a time-series point at simulation time `t_ns`.
    fn series_push(&mut self, id: SeriesId, t_ns: u64, value: f64);

    /// Records a point event at simulation time `t_ns`.
    fn event(&mut self, t_ns: u64, name: &str, detail: String);
    /// Opens a span at simulation time `t_ns`.
    fn span_begin(&mut self, t_ns: u64, name: &str) -> SpanId;
    /// Closes a span.
    fn span_end(&mut self, t_ns: u64, id: SpanId);

    /// Imports an externally accumulated histogram (scraped hardware-style
    /// counters).
    fn import_histogram(&mut self, name: &str, hist: &Histogram);

    /// Consumes the sink into a report; `None` for no-op sinks.
    fn into_report(self) -> Option<TelemetryReport>
    where
        Self: Sized;
}

/// The default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn counter(&mut self, _name: &str) -> CounterId {
        CounterId(0)
    }
    #[inline(always)]
    fn gauge(&mut self, _name: &str) -> GaugeId {
        GaugeId(0)
    }
    #[inline(always)]
    fn histogram(&mut self, _name: &str, _bounds: Vec<u64>) -> HistId {
        HistId(0)
    }
    #[inline(always)]
    fn series(&mut self, _name: &str) -> SeriesId {
        SeriesId(0)
    }

    #[inline(always)]
    fn counter_add(&mut self, _id: CounterId, _delta: u64) {}
    #[inline(always)]
    fn gauge_set(&mut self, _id: GaugeId, _value: f64) {}
    #[inline(always)]
    fn hist_record(&mut self, _id: HistId, _value: u64) {}
    #[inline(always)]
    fn hist_merge(&mut self, _id: HistId, _other: &Histogram) {}
    #[inline(always)]
    fn series_push(&mut self, _id: SeriesId, _t_ns: u64, _value: f64) {}

    #[inline(always)]
    fn event(&mut self, _t_ns: u64, _name: &str, _detail: String) {}
    #[inline(always)]
    fn span_begin(&mut self, _t_ns: u64, _name: &str) -> SpanId {
        SpanId(0)
    }
    #[inline(always)]
    fn span_end(&mut self, _t_ns: u64, _id: SpanId) {}

    #[inline(always)]
    fn import_histogram(&mut self, _name: &str, _hist: &Histogram) {}

    fn into_report(self) -> Option<TelemetryReport> {
        None
    }
}

impl TelemetrySink for Registry {
    const ENABLED: bool = true;

    fn counter(&mut self, name: &str) -> CounterId {
        Registry::counter(self, name)
    }
    fn gauge(&mut self, name: &str) -> GaugeId {
        Registry::gauge(self, name)
    }
    fn histogram(&mut self, name: &str, bounds: Vec<u64>) -> HistId {
        Registry::histogram(self, name, bounds)
    }
    fn series(&mut self, name: &str) -> SeriesId {
        Registry::series(self, name)
    }

    #[inline]
    fn counter_add(&mut self, id: CounterId, delta: u64) {
        Registry::counter_add(self, id, delta)
    }
    #[inline]
    fn gauge_set(&mut self, id: GaugeId, value: f64) {
        Registry::gauge_set(self, id, value)
    }
    #[inline]
    fn hist_record(&mut self, id: HistId, value: u64) {
        Registry::hist_record(self, id, value)
    }
    #[inline]
    fn hist_merge(&mut self, id: HistId, other: &Histogram) {
        Registry::hist_merge(self, id, other)
    }
    #[inline]
    fn series_push(&mut self, id: SeriesId, t_ns: u64, value: f64) {
        Registry::series_push(self, id, t_ns, value)
    }

    fn event(&mut self, t_ns: u64, name: &str, detail: String) {
        self.tracer().event(t_ns, name, detail)
    }
    fn span_begin(&mut self, t_ns: u64, name: &str) -> SpanId {
        self.tracer().span_begin(t_ns, name)
    }
    fn span_end(&mut self, t_ns: u64, id: SpanId) {
        self.tracer().span_end(t_ns, id)
    }

    fn import_histogram(&mut self, name: &str, hist: &Histogram) {
        Registry::import_histogram(self, name, hist)
    }

    fn into_report(self) -> Option<TelemetryReport> {
        Some(self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exercise both sinks through one generic function, the way the
    // simulator uses them.
    fn drive<S: TelemetrySink>(sink: &mut S) {
        let c = sink.counter("c");
        let s = sink.series("s");
        sink.counter_add(c, 4);
        sink.series_push(s, 100, 1.0);
        if S::ENABLED {
            sink.event(100, "only-when-enabled", String::new());
        }
    }

    #[test]
    fn noop_sink_reports_nothing() {
        let mut n = NoopSink;
        drive(&mut n);
        const { assert!(!NoopSink::ENABLED) }
        assert_eq!(n.into_report(), None);
    }

    #[test]
    fn registry_sink_reports_recordings() {
        let mut r = Registry::default();
        drive(&mut r);
        let rep = r.into_report().expect("registry produces a report");
        assert_eq!(rep.counters[0].value, 4.0);
        assert_eq!(rep.series[0].points, vec![(100, 1.0)]);
        assert_eq!(rep.events[0].name, "only-when-enabled");
    }
}
