//! Span/event tracer keyed by simulation time.
//!
//! Timestamps are simulation nanoseconds ([`mpls-net`]'s `SimTime`), never
//! wall clock, so traces are deterministic and comparable across machines.
//! Events live in a bounded buffer: once full, further events are counted
//! as dropped rather than growing the run's memory footprint.

use serde::Serialize;

/// Handle to an open span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u32);

/// A point-in-time annotation.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Event {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Short machine-friendly name, e.g. `link_down`.
    pub name: String,
    /// Free-form detail, e.g. `link=3`.
    pub detail: String,
}

/// An interval with a start and (once closed) an end.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Span {
    /// Short machine-friendly name, e.g. `outage`.
    pub name: String,
    /// Simulation time the span opened.
    pub start_ns: u64,
    /// Simulation time the span closed; `None` while still open (e.g. an
    /// outage that outlives the run).
    pub end_ns: Option<u64>,
}

/// Bounded recorder of [`Event`]s and [`Span`]s.
#[derive(Debug, Clone)]
pub struct Tracer {
    events: Vec<Event>,
    event_capacity: usize,
    dropped_events: u64,
    spans: Vec<Span>,
}

impl Tracer {
    /// A tracer holding at most `event_capacity` events.
    pub fn new(event_capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            event_capacity: event_capacity.max(1),
            dropped_events: 0,
            spans: Vec::new(),
        }
    }

    /// Records an event, or counts it as dropped when the buffer is full.
    pub fn event(&mut self, t_ns: u64, name: &str, detail: String) {
        if self.events.len() >= self.event_capacity {
            self.dropped_events += 1;
            return;
        }
        self.events.push(Event {
            t_ns,
            name: name.to_string(),
            detail,
        });
    }

    /// Opens a span. Spans are few (faults, reroutes), so they are unbounded.
    pub fn span_begin(&mut self, t_ns: u64, name: &str) -> SpanId {
        self.spans.push(Span {
            name: name.to_string(),
            start_ns: t_ns,
            end_ns: None,
        });
        SpanId((self.spans.len() - 1) as u32)
    }

    /// Closes a span; closing twice keeps the first end time.
    pub fn span_end(&mut self, t_ns: u64, id: SpanId) {
        if let Some(span) = self.spans.get_mut(id.0 as usize) {
            if span.end_ns.is_none() {
                span.end_ns = Some(t_ns);
            }
        }
    }

    /// Recorded events, in insertion order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Recorded spans, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Events rejected because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_bounded_and_count_drops() {
        let mut t = Tracer::new(2);
        t.event(10, "a", String::new());
        t.event(20, "b", "x=1".into());
        t.event(30, "c", String::new());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped_events(), 1);
        assert_eq!(t.events()[1].detail, "x=1");
    }

    #[test]
    fn spans_open_and_close_once() {
        let mut t = Tracer::new(8);
        let a = t.span_begin(100, "outage");
        let b = t.span_begin(150, "reroute");
        t.span_end(200, a);
        t.span_end(999, a); // second close ignored
        assert_eq!(t.spans()[0].end_ns, Some(200));
        assert_eq!(t.spans()[1].end_ns, None);
        t.span_end(300, b);
        assert_eq!(t.spans()[1].end_ns, Some(300));
    }
}
