//! Serializable snapshot of a registry: what `--metrics-out` writes.

use serde::Serialize;

/// A named scalar (counter or gauge) in a report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ValueExport {
    /// Instrument name, dot-separated (`link.0->1.queue_drops`).
    pub name: String,
    /// Final value (counters as whole numbers).
    pub value: f64,
}

/// A histogram in a report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct HistogramExport {
    /// Instrument name.
    pub name: String,
    /// Inclusive upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total samples.
    pub total: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample, if any.
    pub min: Option<u64>,
    /// Largest sample, if any.
    pub max: Option<u64>,
    /// Median bucket upper bound.
    pub p50: Option<u64>,
    /// 99th-percentile bucket upper bound.
    pub p99: Option<u64>,
}

/// A time series in a report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SeriesExport {
    /// Instrument name.
    pub name: String,
    /// Final sampling interval (grows by doubling under downsampling).
    pub interval_ns: u64,
    /// `(t_ns, value)` points in time order.
    pub points: Vec<(u64, f64)>,
}

/// A point event in a report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct EventExport {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Event name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

/// A span in a report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct SpanExport {
    /// Span name.
    pub name: String,
    /// Open time.
    pub start_ns: u64,
    /// Close time; `None` if the span outlived the run.
    pub end_ns: Option<u64>,
}

/// Everything one telemetry-enabled run recorded.
#[derive(Debug, Clone, Default, Serialize, PartialEq)]
pub struct TelemetryReport {
    /// Monotonic counters.
    pub counters: Vec<ValueExport>,
    /// Gauges.
    pub gauges: Vec<ValueExport>,
    /// Histograms.
    pub histograms: Vec<HistogramExport>,
    /// Time series.
    pub series: Vec<SeriesExport>,
    /// Point events.
    pub events: Vec<EventExport>,
    /// Spans.
    pub spans: Vec<SpanExport>,
    /// Events the tracer rejected because its buffer was full.
    pub dropped_events: u64,
}

impl TelemetryReport {
    /// Looks a counter up by exact name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.value)
    }

    /// Looks a gauge up by exact name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|v| v.name == name).map(|v| v.value)
    }

    /// Looks a histogram up by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramExport> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks a time series up by exact name.
    pub fn series(&self, name: &str) -> Option<&SeriesExport> {
        self.series.iter().find(|s| s.name == name)
    }
}
