//! The instrument registry.
//!
//! Instruments are registered once on the cold path (scenario setup) and
//! return small `Copy` handles; the hot path records through those handles
//! with a bounds-checked vector index — no string lookups, no hashing.

use crate::instrument::{Counter, Gauge, Histogram, TimeSeries};
use crate::report::{
    EventExport, HistogramExport, SeriesExport, SpanExport, TelemetryReport, ValueExport,
};
use crate::tracer::Tracer;
use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

/// Handle to a registered time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(pub(crate) u32);

/// Knobs for a telemetry-enabled run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct TelemetryConfig {
    /// Minimum spacing between periodic samples (queue depth, utilization).
    pub sample_interval_ns: u64,
    /// Point capacity per time series before downsampling kicks in.
    pub series_capacity: usize,
    /// Event capacity of the tracer.
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_interval_ns: 100_000, // 100 µs: ~100 points per 10 ms run
            series_capacity: 4096,
            event_capacity: 1024,
        }
    }
}

/// Owns every instrument of one simulation run.
#[derive(Debug, Clone)]
pub struct Registry {
    config: TelemetryConfig,
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    hists: Vec<(String, Histogram)>,
    series: Vec<(String, TimeSeries)>,
    tracer: Tracer,
}

impl Registry {
    /// An empty registry with the given configuration.
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            config,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            series: Vec::new(),
            tracer: Tracer::new(config.event_capacity),
        }
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Registers a monotonic counter.
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push((name.into(), Counter::default()));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: impl Into<String>) -> GaugeId {
        self.gauges.push((name.into(), Gauge::default()));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Registers a fixed-bucket histogram with the given inclusive upper
    /// bounds.
    pub fn histogram(&mut self, name: impl Into<String>, bounds: Vec<u64>) -> HistId {
        self.hists.push((name.into(), Histogram::new(bounds)));
        HistId((self.hists.len() - 1) as u32)
    }

    /// Registers a time series using the registry's configured interval and
    /// capacity.
    pub fn series(&mut self, name: impl Into<String>) -> SeriesId {
        self.series.push((
            name.into(),
            TimeSeries::new(self.config.sample_interval_ns, self.config.series_capacity),
        ));
        SeriesId((self.series.len() - 1) as u32)
    }

    /// Adds to a counter.
    #[inline]
    pub fn counter_add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0 as usize].1.add(delta);
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0 as usize].1.set(value);
    }

    /// Records one histogram sample.
    #[inline]
    pub fn hist_record(&mut self, id: HistId, value: u64) {
        self.hists[id.0 as usize].1.record(value);
    }

    /// Merges an externally accumulated histogram into a registered one
    /// (bucket layouts must match). This is how shard-local recordings
    /// reach the registry: parallel engine shards buffer samples in their
    /// own [`Histogram`]s and the coordinator folds them in afterwards.
    pub fn hist_merge(&mut self, id: HistId, other: &Histogram) {
        self.hists[id.0 as usize].1.merge(other);
    }

    /// Offers one time-series point (subject to the sampling interval).
    #[inline]
    pub fn series_push(&mut self, id: SeriesId, t_ns: u64, value: f64) {
        self.series[id.0 as usize].1.push(t_ns, value);
    }

    /// Imports an externally accumulated histogram under `name` (used to
    /// scrape hardware-style counters kept outside the registry, e.g. the
    /// modifier's search-depth histogram).
    pub fn import_histogram(&mut self, name: impl Into<String>, hist: &Histogram) {
        self.hists.push((name.into(), hist.clone()));
    }

    /// Reads a counter back (tests, report rendering).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1.get()
    }

    /// Reads a gauge back.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].1.get()
    }

    /// Reads a histogram back.
    pub fn hist(&self, id: HistId) -> &Histogram {
        &self.hists[id.0 as usize].1
    }

    /// Reads a time series back.
    pub fn series_data(&self, id: SeriesId) -> &TimeSeries {
        &self.series[id.0 as usize].1
    }

    /// The span/event tracer.
    pub fn tracer(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Snapshots every instrument into a serializable report.
    pub fn snapshot(&self) -> TelemetryReport {
        TelemetryReport {
            counters: self
                .counters
                .iter()
                .map(|(n, c)| ValueExport {
                    name: n.clone(),
                    value: c.get() as f64,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, g)| ValueExport {
                    name: n.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(n, h)| HistogramExport {
                    name: n.clone(),
                    bounds: h.bounds().to_vec(),
                    counts: h.counts().to_vec(),
                    total: h.total(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    p50: h.quantile(0.50),
                    p99: h.quantile(0.99),
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(n, s)| SeriesExport {
                    name: n.clone(),
                    interval_ns: s.interval_ns(),
                    points: s.points().to_vec(),
                })
                .collect(),
            events: self
                .tracer
                .events()
                .iter()
                .map(|e| EventExport {
                    t_ns: e.t_ns,
                    name: e.name.clone(),
                    detail: e.detail.clone(),
                })
                .collect(),
            spans: self
                .tracer
                .spans()
                .iter()
                .map(|s| SpanExport {
                    name: s.name.clone(),
                    start_ns: s.start_ns,
                    end_ns: s.end_ns,
                })
                .collect(),
            dropped_events: self.tracer.dropped_events(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new(TelemetryConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_record_by_index() {
        let mut r = Registry::default();
        let c = r.counter("pkts");
        let g = r.gauge("depth");
        let h = r.histogram("lat", vec![10, 100, 1000]);
        let s = r.series("util");
        r.counter_add(c, 2);
        r.counter_add(c, 3);
        r.gauge_set(g, 7.5);
        r.hist_record(h, 42);
        r.series_push(s, 0, 0.25);
        assert_eq!(r.counter_value(c), 5);
        assert_eq!(r.gauge_value(g), 7.5);
        assert_eq!(r.hist(h).total(), 1);
        assert_eq!(r.series_data(s).len(), 1);
    }

    #[test]
    fn snapshot_carries_everything() {
        let mut r = Registry::default();
        let c = r.counter("pkts");
        r.counter_add(c, 9);
        let h = r.histogram("lat", vec![10, 100]);
        r.hist_record(h, 50);
        r.tracer().event(5, "boot", String::new());
        let id = r.tracer().span_begin(1, "run");
        r.tracer().span_end(9, id);
        let rep = r.snapshot();
        assert_eq!(rep.counters[0].value, 9.0);
        assert_eq!(rep.histograms[0].counts, vec![0, 1, 0]);
        assert_eq!(rep.histograms[0].p50, Some(100));
        assert_eq!(rep.events[0].name, "boot");
        assert_eq!(rep.spans[0].end_ns, Some(9));
    }

    #[test]
    fn hist_merge_folds_external_samples_in() {
        let mut r = Registry::default();
        let h = r.histogram("lat", vec![10, 100]);
        r.hist_record(h, 5);
        let mut local = Histogram::new(vec![10, 100]);
        local.record(50);
        local.record(500);
        r.hist_merge(h, &local);
        assert_eq!(r.hist(h).total(), 3);
        assert_eq!(r.hist(h).counts(), &[1, 1, 1]);
        assert_eq!(r.hist(h).max(), Some(500));
    }

    #[test]
    fn import_histogram_clones_external_state() {
        let mut h = Histogram::new(vec![1, 2, 4]);
        h.record(2);
        h.record(3);
        let mut r = Registry::default();
        r.import_histogram("core.search_depth", &h);
        let rep = r.snapshot();
        assert_eq!(rep.histograms[0].name, "core.search_depth");
        assert_eq!(rep.histograms[0].total, 2);
    }
}
