//! The four instrument kinds: counter, gauge, histogram, time series.
//!
//! Instruments are plain data — no interior mutability, no atomics. The
//! simulator is single-threaded per run (ensembles parallelise across whole
//! runs), so a `&mut` registry is always available on the recording path.

use serde::Serialize;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&mut self, delta: u64) {
        self.value += delta;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-value-wins measurement (queue depth, utilization, ...).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are ascending bucket *boundaries* with half-open `[lo, hi)`
/// semantics: bucket `i` counts samples `v` with `bounds[i-1] <= v <
/// bounds[i]` (bucket 0 takes `v < bounds[0]`), and one extra overflow
/// bucket catches `v >= bounds[last]`. A sample exactly equal to a
/// boundary therefore lands in the bucket *above* it, deterministically —
/// every boundary belongs to exactly one bucket, which is what keeps
/// merged shard deltas and golden snapshots stable. Bounds are fixed at
/// registration, so recording is a binary search plus an increment — no
/// reallocation on the hot path.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with explicit ascending `[lo, hi)` bucket boundaries.
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exponential bounds `start, start·factor, start·factor², ...`.
    pub fn exponential(start: u64, factor: u64, count: usize) -> Self {
        assert!(start > 0 && factor > 1 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut b = start;
        for _ in 0..count {
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        bounds.dedup(); // saturation can repeat u64::MAX
        Self::new(bounds)
    }

    /// Linear bounds `start, start+step, start+2·step, ...`.
    pub fn linear(start: u64, step: u64, count: usize) -> Self {
        assert!(step > 0 && count > 0);
        Self::new((0..count as u64).map(|i| start + i * step).collect())
    }

    /// Records one sample into its half-open `[lo, hi)` bucket.
    #[inline]
    pub fn record(&mut self, value: u64) {
        // Index of the first bound strictly above `value`: a sample equal
        // to a bound belongs to the bucket that *starts* at it.
        let idx = self.bounds.partition_point(|&b| value >= b);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// The bucket boundaries (each is the inclusive lower edge of the
    /// bucket above it and the exclusive upper edge of the one below).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exclusive upper edge of the bucket containing the `q`-quantile
    /// (0 ≤ q ≤ 1) — a conservative "the quantile is below this" bound.
    /// The overflow bucket reports the observed maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self`; bucket layouts must match.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge: bucket mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bounded time series of `(t_ns, value)` points.
///
/// Two mechanisms keep memory fixed regardless of run length:
///
/// * points closer than `interval_ns` to the previous accepted point are
///   dropped at the door (sampling interval);
/// * when `capacity` is reached the series *downsamples*: every other point
///   is discarded and the interval doubles, so the series always spans the
///   whole run at progressively coarser resolution instead of truncating
///   its tail.
#[derive(Debug, Clone, Serialize)]
pub struct TimeSeries {
    interval_ns: u64,
    capacity: usize,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// A series accepting at most one point per `interval_ns`, holding at
    /// most `capacity` points (minimum 2).
    pub fn new(interval_ns: u64, capacity: usize) -> Self {
        Self {
            interval_ns: interval_ns.max(1),
            capacity: capacity.max(2),
            points: Vec::new(),
        }
    }

    /// Offers a point; it may be dropped by the sampling interval.
    #[inline]
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if let Some(&(last_t, _)) = self.points.last() {
            if t_ns < last_t.saturating_add(self.interval_ns) {
                return;
            }
        }
        if self.points.len() >= self.capacity {
            self.downsample();
        }
        self.points.push((t_ns, value));
    }

    /// Halves the resolution: keeps even-indexed points, doubles the interval.
    fn downsample(&mut self) {
        let mut keep = 0;
        self.points.retain(|_| {
            let k = keep % 2 == 0;
            keep += 1;
            k
        });
        self.interval_ns = self.interval_ns.saturating_mul(2);
    }

    /// The recorded points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Current minimum spacing between accepted points.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.add(3);
        c.add(0);
        c.add(4);
        assert_eq!(c.get(), 7);
        let mut g = Gauge::default();
        g.set(1.5);
        g.set(-2.0);
        assert_eq!(g.get(), -2.0);
    }

    #[test]
    fn histogram_buckets_are_half_open() {
        let mut h = Histogram::new(vec![10, 20, 40]);
        // Exactly on a boundary lands in the bucket that *starts* there.
        h.record(10);
        h.record(20);
        h.record(40); // overflow: 40 >= last bound
                      // One below a boundary stays in the bucket it closes.
        h.record(9);
        h.record(19);
        h.record(39);
        h.record(0); // bottom bucket
                     // [0,10) = {9,0} / [10,20) = {10,19} / [20,40) = {20,39} / [40,∞) = {40}
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(40));
    }

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let mut h = Histogram::new(vec![1, 2, 4, 8]);
        for v in [1, 1, 2, 2, 2, 3, 5, 100] {
            h.record(v);
        }
        // Buckets: [1,2) = {1,1}, [2,4) = {2,2,2,3}, [4,8) = {5},
        // overflow = {100}; the quantile reports the containing bucket's
        // exclusive upper edge.
        assert_eq!(h.quantile(0.0), Some(2));
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(0.75), Some(4));
        // Overflow bucket reports the observed max, not a bound.
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(Histogram::new(vec![1]).quantile(0.5), None);
    }

    #[test]
    fn histogram_constructors() {
        assert_eq!(Histogram::exponential(1, 2, 5).bounds(), &[1, 2, 4, 8, 16]);
        assert_eq!(Histogram::linear(10, 10, 3).bounds(), &[10, 20, 30]);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(vec![10, 20]);
        let mut b = Histogram::new(vec![10, 20]);
        a.record(5);
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.total(), 3);
        assert_eq!(a.max(), Some(25));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    fn series_respects_sampling_interval() {
        let mut s = TimeSeries::new(100, 64);
        s.push(0, 1.0);
        s.push(50, 2.0); // dropped: within interval
        s.push(100, 3.0);
        s.push(199, 4.0); // dropped
        s.push(200, 5.0);
        assert_eq!(s.points(), &[(0, 1.0), (100, 3.0), (200, 5.0)]);
    }

    #[test]
    fn series_downsamples_instead_of_truncating() {
        let cap = 8;
        let mut s = TimeSeries::new(10, cap);
        for i in 0..100u64 {
            s.push(i * 10, i as f64);
        }
        // Never exceeds capacity, interval coarsened by doubling...
        assert!(s.len() <= cap);
        assert!(s.interval_ns() > 10);
        assert_eq!(
            (s.interval_ns() / 10).count_ones(),
            1,
            "interval doubles: 10·2^k"
        );
        // ...and still spans the whole run: first point kept, last point recent.
        assert_eq!(s.points()[0].0, 0);
        assert!(s.points().last().unwrap().0 >= 900);
        // Points remain strictly ordered in time.
        assert!(s.points().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn series_max_value() {
        let mut s = TimeSeries::new(1, 16);
        assert_eq!(s.max_value(), None);
        s.push(0, 1.0);
        s.push(10, 9.0);
        s.push(20, 4.0);
        assert_eq!(s.max_value(), Some(9.0));
    }
}
