//! JSON and CSV renderings of a [`TelemetryReport`].
//!
//! JSON is the lossless form (`--metrics-out metrics.json`); CSV flattens
//! the scalar instruments and series points into spreadsheet-friendly rows
//! (`--metrics-out metrics.csv`).

use crate::report::TelemetryReport;

/// Pretty-printed JSON of the full report.
pub fn to_json(report: &TelemetryReport) -> String {
    serde_json::to_string_pretty(report).expect("telemetry report serializes")
}

/// Quotes a CSV field when it contains a comma, quote, or newline
/// (RFC 4180: embedded quotes double).
pub fn escape_csv(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// CSV of every instrument, one row per scalar / bucket / point / event:
/// `kind,name,t_ns,key,value`.
pub fn to_csv(report: &TelemetryReport) -> String {
    let mut out = String::from("kind,name,t_ns,key,value\n");
    let mut row = |kind: &str, name: &str, t_ns: &str, key: &str, value: String| {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            kind,
            escape_csv(name),
            t_ns,
            escape_csv(key),
            escape_csv(&value)
        ));
    };
    for c in &report.counters {
        row("counter", &c.name, "", "", format!("{}", c.value));
    }
    for g in &report.gauges {
        row("gauge", &g.name, "", "", format!("{}", g.value));
    }
    for h in &report.histograms {
        for (i, count) in h.counts.iter().enumerate() {
            let key = match h.bounds.get(i) {
                Some(b) => format!("le={b}"),
                None => "overflow".to_string(),
            };
            row("histogram", &h.name, "", &key, count.to_string());
        }
        row("histogram", &h.name, "", "total", h.total.to_string());
    }
    for s in &report.series {
        for &(t, v) in &s.points {
            row("series", &s.name, &t.to_string(), "", format!("{v}"));
        }
    }
    for e in &report.events {
        row(
            "event",
            &e.name,
            &e.t_ns.to_string(),
            &e.detail,
            String::new(),
        );
    }
    for s in &report.spans {
        let end = s.end_ns.map(|e| e.to_string()).unwrap_or_default();
        row("span", &s.name, &s.start_ns.to_string(), "end_ns", end);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::sink::TelemetrySink;

    fn demo_report() -> TelemetryReport {
        let mut r = Registry::default();
        let c = r.counter("pkts");
        r.counter_add(c, 3);
        let h = r.histogram("lat", vec![10, 100]);
        r.hist_record(h, 7);
        r.hist_record(h, 500);
        let s = r.series("depth");
        r.series_push(s, 0, 1.0);
        r.series_push(s, 200_000, 2.0);
        r.tracer().event(5, "note", "a \"quoted\", detail".into());
        r.into_report().unwrap()
    }

    #[test]
    fn escape_csv_quotes_specials() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_csv("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(escape_csv(""), "");
    }

    #[test]
    fn csv_rows_cover_every_instrument_kind() {
        let csv = to_csv(&demo_report());
        assert!(csv.starts_with("kind,name,t_ns,key,value\n"));
        assert!(csv.contains("counter,pkts,,,3"));
        assert!(csv.contains("histogram,lat,,le=10,1"));
        assert!(csv.contains("histogram,lat,,overflow,1"));
        assert!(csv.contains("histogram,lat,,total,2"));
        assert!(csv.contains("series,depth,0,,1"));
        assert!(csv.contains("series,depth,200000,,2"));
        // The event detail contains a comma and quotes: must arrive escaped.
        assert!(csv.contains("event,note,5,\"a \"\"quoted\"\", detail\","));
    }

    #[test]
    fn json_is_parseable_structure() {
        let json = to_json(&demo_report());
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"pkts\""));
        assert!(json.contains("\"series\""));
        // Round-trips through the vendored parser as a sanity check.
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        match v {
            serde::Value::Map(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "histograms"));
            }
            other => panic!("expected a JSON object, got {other:?}"),
        }
    }
}
