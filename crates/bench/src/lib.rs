//! Shared scenario setup and reporting helpers for the benchmark harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (or one extension experiment from DESIGN.md); the Criterion benches in
//! `benches/` measure host-side performance of the models themselves.

pub mod figure_print;
pub mod report;
pub mod scenarios;
pub mod suite;

pub use report::MarkdownTable;
