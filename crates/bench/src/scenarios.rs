//! Canonical experiment scenarios shared by the figure binaries, the
//! Criterion benches and EXPERIMENTS.md.

use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::modifier::Outcome;
use mpls_core::{IbOperation, LabelStackModifier, Level, RouterType};
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

/// A control plane over the Fig. 1 topology with one best-effort LSP from
/// LER 0 to LER 1 covering 192.168.1.0/24.
pub fn figure1_with_lsp() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("figure-1 LSP establishes");
    cp
}

/// A modifier with `n` swap pairs loaded at `level`, keyed `1..=n`, and a
/// single-entry stack whose top label is `hit_at` (1-based position of the
/// matching pair; use `n + 1` for a guaranteed miss).
pub fn loaded_modifier(n: u64, hit_at: u64) -> LabelStackModifier {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..n {
        let r = m.write_pair(
            Level::L2,
            i + 1,
            Label::new(500 + (i as u32 % 1000)).unwrap(),
            IbOperation::Swap,
        );
        assert_eq!(r.outcome, Outcome::Done);
    }
    let r = m.user_push(LabelStackEntry::new(
        Label::new(hit_at as u32).unwrap(),
        CosBits::BEST_EFFORT,
        false,
        64,
    ));
    assert_eq!(r.outcome, Outcome::Done);
    m
}

/// The QoS/TE workload of the EXT-3 experiment: one VoIP flow and one
/// bulk flow sharing the ingress LER, destinations chosen so both ride
/// LSPs to LER 1.
pub fn voip_flow(start_ns: u64, stop_ns: u64) -> FlowSpec {
    FlowSpec {
        name: "voip".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.10").unwrap(),
        dst_addr: parse_addr("192.168.1.10").unwrap(),
        payload_bytes: 146, // 200 B on the wire, G.711-like
        precedence: 5,
        pattern: TrafficPattern::Cbr {
            interval_ns: 20_000_000,
        },
        start_ns,
        stop_ns,
        police: None,
    }
}

/// Bulk background traffic: near-line-rate 1500-byte bursts.
pub fn bulk_flow(name: &str, dst: &str, interval_ns: u64, stop_ns: u64) -> FlowSpec {
    FlowSpec {
        name: name.into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.20").unwrap(),
        dst_addr: parse_addr(dst).unwrap(),
        payload_bytes: 1446, // 1500 B on the wire
        precedence: 0,
        pattern: TrafficPattern::Cbr { interval_ns },
        start_ns: 0,
        stop_ns,
        police: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_modifier_hits_where_asked() {
        let mut m = loaded_modifier(10, 4);
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r.cycles, mpls_core::table6::search_hit_at(4) + 6);
    }

    #[test]
    fn loaded_modifier_misses_past_n() {
        let mut m = loaded_modifier(10, 11);
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(r.cycles, mpls_core::table6::update_miss(10));
    }

    #[test]
    fn scenario_setup_is_sane() {
        let cp = figure1_with_lsp();
        assert_eq!(cp.lsp_ids().len(), 1);
    }
}
