//! Shared rendering for the Fig. 14–16 regeneration binaries.

use mpls_core::figures::FigureRun;
use std::path::PathBuf;

/// Prints a replayed figure: the outcome summary, the ASCII waveform and
/// the transition log; writes a VCD alongside and returns its path.
pub fn print_figure_run(figure: &str, description: &str, run: &FigureRun) -> PathBuf {
    println!("=== {figure}: {description} ===");
    println!();
    println!(
        "write phase: 10 label pairs stored in {} cycles ({} per write)",
        run.write_cycles,
        run.write_cycles / 10
    );
    println!(
        "lookup: {:?} in {} cycles",
        run.lookup.outcome, run.lookup.cycles
    );
    println!();
    println!("--- waveform (ASCII; █ = high, ▁ = low, · = unchanged bus) ---");
    let cycles = run.trace.cycles();
    // The write phase is long; show the interesting window around the
    // lookup (the last ~45 cycles) plus the first few writes.
    println!("{}", run.trace.render_ascii(0..cycles.min(14)));
    if cycles > 14 {
        println!(
            "... ({} cycles elided) ...\n",
            cycles.saturating_sub(14 + 45)
        );
        println!(
            "{}",
            run.trace.render_ascii(cycles.saturating_sub(45)..cycles)
        );
    }
    println!("--- signal transitions ---");
    println!("{}", run.trace.render_transitions());

    let vcd = mpls_rtl::vcd::to_vcd(&run.trace, "label_stack_modifier", 20);
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    let path = dir.join(format!("{figure}.vcd"));
    std::fs::write(&path, vcd).expect("write VCD");
    println!("VCD written to {}", path.display());
    path
}
