//! Minimal Markdown table rendering for experiment reports.

/// A Markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = MarkdownTable::new(&["op", "cycles"]);
        t.row_strs(&["reset", "3"]);
        t.row_strs(&["search", "3n + 5"]);
        let s = t.render();
        assert!(s.contains("| op     | cycles |"));
        assert!(s.contains("| search | 3n + 5 |"));
        assert!(s.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        MarkdownTable::new(&["a"]).row_strs(&["x", "y"]);
    }
}
