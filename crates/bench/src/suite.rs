//! The standard benchmark suite behind both the per-experiment binaries
//! and the `mpls-bench` all-in-one entry point.
//!
//! Each `ext*` function runs one experiment's full measurement loop —
//! including its invariant asserts (byte-identity, conservation,
//! detection bounds) — and returns a [`Section`]: a rendered table for
//! humans plus machine-readable rows for the `BENCH_<n>.json`
//! trajectory files the CI regression gate compares.

use crate::MarkdownTable;
use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};
use mpls_net::{
    EngineKind, FaultPlan, LdpConfig, QueueDiscipline, RestorationPolicy, RouterKind, ScaleFamily,
    ScaleSpec, SimReport, Simulation, TelemetryConfig,
};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use mpls_sr::SrConfig;
use serde::Value;
use std::time::Instant;

/// One experiment's results: human table + trajectory rows.
pub struct Section {
    /// Stable bench identifier (`ext10-scaling`, ...).
    pub bench: &'static str,
    /// Configuration knobs the rows were measured under. The gate only
    /// compares rows whose section config matches, so points taken at
    /// different depths or horizons never get compared.
    pub config: Vec<(String, Value)>,
    /// One object per measured configuration. Rows with an
    /// `events_per_sec` field participate in the regression gate.
    pub rows: Vec<Value>,
    /// Rendered markdown table.
    pub table: String,
    /// Free-form observations printed under the table.
    pub notes: Vec<String>,
}

impl Section {
    /// The section as one JSON object: `bench`, the flattened config,
    /// then `rows` — the same shape the standalone `--json` files use.
    pub fn to_json(&self) -> Value {
        let mut entries = vec![("bench".to_string(), Value::Str(self.bench.into()))];
        entries.extend(self.config.iter().cloned());
        entries.push(("rows".to_string(), Value::Seq(self.rows.clone())));
        Value::Map(entries)
    }
}

/// A JSON object literal from `(key, value)` pairs.
fn obj(entries: &[(&str, Value)]) -> Value {
    Value::Map(
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Best-of-N wall-clock measurement: the simulation is deterministic,
/// so every repetition returns the identical report and the minimum
/// wall time is the least-noise estimate of the code's actual cost —
/// single-shot numbers on shared hosts swing 10%+, which would drown
/// the regression gate's threshold.
const TIMING_REPS: usize = 3;

fn best_of<R>(mut run: impl FnMut() -> (R, f64)) -> (R, f64) {
    let (report, mut secs) = run();
    for _ in 1..TIMING_REPS {
        let (_, s) = run();
        secs = secs.min(s);
    }
    (report, secs)
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`). `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

const SIDE: u32 = 8;
const CORNERS: [u32; 4] = [0, SIDE - 1, (SIDE - 1) * SIDE, SIDE * SIDE - 1];

// -----------------------------------------------------------------
// EXT-10: shard scaling on a heterogeneous-delay grid
// -----------------------------------------------------------------

/// 8×8 grid with *heterogeneous* link delays: per-link salted jitter
/// plus an 8x stretch on the row-2/3 and row-5/6 boundaries. The
/// min-cut partitioner steers its cuts through the slow links, so the
/// merge engine's per-channel bounds get real lookahead to exploit —
/// uniform delays would make every channel bound identical and the
/// comparison vacuous.
fn scaling_grid() -> ControlPlane {
    let mut topo = Topology::new();
    for id in 0..SIDE * SIDE {
        let role = if CORNERS.contains(&id) {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("grid-{id}"));
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            let id = r * SIDE + c;
            for (neighbor, vertical) in [
                (c + 1 < SIDE).then(|| (id + 1, false)),
                (r + 1 < SIDE).then(|| (id + SIDE, true)),
            ]
            .into_iter()
            .flatten()
            {
                let mut delay_us = 5 + (id as u64 * 31 + neighbor as u64 * 7) % 20;
                if vertical && (r == 2 || r == 5) {
                    delay_us *= 8;
                }
                topo.add_link(LinkSpec {
                    a: id,
                    b: neighbor,
                    cost: 1,
                    bandwidth_bps: 1_000_000_000,
                    delay_ns: delay_us * 1_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    let corner_prefix =
        |i: usize| Prefix::new(parse_addr(&format!("192.168.{}.0", i + 1)).unwrap(), 24);
    for (i, &corner) in CORNERS.iter().enumerate() {
        cp.attach_prefix(corner, corner_prefix(i));
    }
    for (i, &corner) in CORNERS.iter().enumerate() {
        let peer = 3 - i;
        cp.establish_lsp(LspRequest::best_effort(
            corner,
            CORNERS[peer],
            corner_prefix(peer),
        ))
        .expect("grid LSP signals");
    }
    cp
}

fn scaling_flows(run_ns: u64) -> Vec<FlowSpec> {
    CORNERS
        .iter()
        .enumerate()
        .map(|(i, &corner)| {
            let peer = 3 - i;
            FlowSpec {
                name: format!("corner-{i}"),
                ingress: corner,
                src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
                dst_addr: parse_addr(&format!("192.168.{}.10", peer + 1)).unwrap(),
                payload_bytes: 500,
                precedence: 0,
                // Poisson keeps per-flow RNG streams busy so determinism
                // is exercised, not just asserted.
                pattern: TrafficPattern::Poisson {
                    mean_interval_ns: 8_000,
                },
                start_ns: 0,
                stop_ns: run_ns,
                police: None,
            }
        })
        .collect()
}

/// EXT-10: the same heterogeneous-delay scenario at 1/2/4/8 shards
/// under both engines. Byte-identity against the sequential report is
/// asserted for every cell; the table reads off events/s and speedup.
pub fn ext10_scaling(quick: bool) -> Section {
    let run_ns: u64 = if quick { 10_000_000 } else { 50_000_000 };
    let horizon_ns = run_ns + 20_000_000;
    let shard_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cp = scaling_grid();

    let run_at = |shards: usize, engine: EngineKind| {
        let mut sim = Simulation::build(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            QueueDiscipline::Fifo { capacity: 64 },
            7,
        );
        sim.set_shards(shards);
        sim.set_engine(engine);
        for f in scaling_flows(run_ns) {
            sim.add_flow(f);
        }
        let start = Instant::now();
        let report = sim.run(horizon_ns);
        (report, start.elapsed().as_secs_f64())
    };

    let mut t = MarkdownTable::new(&[
        "engine",
        "shards",
        "effective",
        "lookahead µs",
        "rounds",
        "events",
        "wall ms",
        "events/s",
        "speedup",
    ]);
    let mut rows = Vec::new();
    let mut baseline_json = String::new();
    let mut baseline_secs = 0.0;
    let mut merge4_eps = 0.0;
    let mut merge1_eps = 0.0;
    for engine in [EngineKind::Barrier, EngineKind::Merge] {
        for &shards in shard_counts {
            let (report, secs) = best_of(|| run_at(shards, engine));
            let json = serde_json::to_string(&report).expect("report serializes");
            if baseline_json.is_empty() {
                baseline_json = json.clone();
                baseline_secs = secs;
            }
            assert_eq!(
                baseline_json,
                json,
                "report diverged from sequential under {} at {shards} shards",
                engine.name()
            );
            let e = &report.engine;
            let events = e.total_events();
            let eps = events as f64 / secs;
            if engine == EngineKind::Merge && shards == 1 {
                merge1_eps = eps;
            }
            if engine == EngineKind::Merge && shards == 4 {
                merge4_eps = eps;
            }
            t.row(&[
                engine.name().to_string(),
                shards.to_string(),
                e.shards.to_string(),
                e.lookahead_ns
                    .map_or("-".into(), |ns| format!("{:.0}", ns as f64 / 1e3)),
                e.epochs.to_string(),
                events.to_string(),
                format!("{:.1}", secs * 1e3),
                format!("{:.0}", eps),
                format!("{:.2}x", baseline_secs / secs),
            ]);
            rows.push(obj(&[
                ("engine", Value::Str(engine.name().into())),
                ("shards", Value::U64(shards as u64)),
                ("rounds", Value::U64(e.epochs)),
                ("events", Value::U64(events)),
                ("wall_ms", Value::F64(secs * 1e3)),
                ("events_per_sec", Value::F64(eps)),
            ]));
        }
    }
    let mut notes = vec![
        "all engine x shard cells byte-identical to the sequential report -- OK".into(),
        format!(
            "merge engine, 4 shards vs 1 shard: {:.2}x events/s on {} host core(s)",
            merge4_eps / merge1_eps,
            cores
        ),
    ];
    if cores < 2 {
        notes.push(
            "note: single-core host — shard speedup cannot exceed 1x here; the \
             rounds column shows the coordination-overhead win (fewer, larger \
             rounds under merge), which is what translates to speedup on \
             multi-core hosts"
                .into(),
        );
    }
    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("run_ns".to_string(), Value::U64(run_ns)),
        ("delays".to_string(), Value::Str("heterogeneous".into())),
    ];
    Section {
        bench: "ext10-scaling",
        config,
        rows,
        table: t.render(),
        notes,
    }
}

// -----------------------------------------------------------------
// EXT-12: fast-path throughput
// -----------------------------------------------------------------

/// Pair `i`, LSP `k` → `10.(100 + 16i + k/256).(k%256).0/24`.
fn ext12_prefix(pair: usize, k: u32) -> Prefix {
    Prefix::new(
        parse_addr(&format!(
            "10.{}.{}.0",
            100 + pair * 16 + (k / 256) as usize,
            k % 256
        ))
        .unwrap(),
        24,
    )
}

/// The 8×8 grid with `lsps_per_pair` parallel LSPs per corner pair —
/// the knob that sets the linear info-base's depth.
fn throughput_grid(lsps_per_pair: u32) -> ControlPlane {
    let mut topo = Topology::new();
    for id in 0..SIDE * SIDE {
        let role = if CORNERS.contains(&id) {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("grid-{id}"));
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            let id = r * SIDE + c;
            for neighbor in [
                (c + 1 < SIDE).then(|| id + 1),
                (r + 1 < SIDE).then(|| id + SIDE),
            ]
            .into_iter()
            .flatten()
            {
                topo.add_link(LinkSpec {
                    a: id,
                    b: neighbor,
                    cost: 1,
                    bandwidth_bps: 1_000_000_000,
                    delay_ns: 10_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    for (i, &corner) in CORNERS.iter().enumerate() {
        let dst = CORNERS[3 - i];
        for k in 0..lsps_per_pair {
            cp.attach_prefix(dst, ext12_prefix(i, k));
            cp.establish_lsp(LspRequest::best_effort(corner, dst, ext12_prefix(i, k)))
                .expect("grid LSP signals");
        }
    }
    cp
}

/// One flow per corner pair, aimed at the pair's *last* signaled LSP —
/// the worst case for a linear scan.
fn throughput_flows(lsps_per_pair: u32, run_ns: u64) -> Vec<FlowSpec> {
    CORNERS
        .iter()
        .enumerate()
        .map(|(i, &corner)| FlowSpec {
            name: format!("corner-{i}"),
            ingress: corner,
            src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
            dst_addr: parse_addr(&format!(
                "10.{}.{}.5",
                100 + i * 16 + ((lsps_per_pair - 1) / 256) as usize,
                (lsps_per_pair - 1) % 256
            ))
            .unwrap(),
            payload_bytes: 500,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 10_000,
            },
            start_ns: 0,
            stop_ns: run_ns,
            police: None,
        })
        .collect()
}

/// EXT-12: hash FIB + flow cache vs the linear info-base, with the
/// fast path additionally measured under the merge engine. Reports
/// must stay byte-identical across lookup strategy, cache setting,
/// shard count AND engine.
pub fn ext12_throughput(quick: bool) -> Section {
    let lsps_per_pair: u32 = if quick { 32 } else { 4096 };
    let run_ns: u64 = if quick { 5_000_000 } else { 30_000_000 };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let timing = SwTimingModel::default();
    let cp = throughput_grid(lsps_per_pair);

    let run_at = |kind: RouterKind, shards: usize, engine: EngineKind| {
        let mut sim = Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 7);
        sim.set_shards(shards);
        sim.set_engine(engine);
        for f in throughput_flows(lsps_per_pair, run_ns) {
            sim.add_flow(f);
        }
        let sim = sim.with_telemetry(TelemetryConfig {
            sample_interval_ns: 1_000_000,
            ..TelemetryConfig::default()
        });
        let start = Instant::now();
        let report = sim.run(run_ns + 20_000_000);
        (report, start.elapsed().as_secs_f64())
    };

    let mut t = MarkdownTable::new(&[
        "lookup",
        "cache",
        "engine",
        "shards",
        "events",
        "wall ms",
        "events/s",
        "vs linear",
    ]);
    let mut baseline_json = String::new();
    let mut linear_eps = 0.0;
    let mut fast_eps_1shard = 0.0;
    let mut rows = Vec::new();
    let variants: Vec<(&str, &str, RouterKind)> = vec![
        ("linear", "-", RouterKind::SoftwareLinear { timing }),
        (
            "hash",
            "off",
            RouterKind::SoftwareFast {
                timing,
                cache: false,
            },
        ),
        (
            "hash",
            "on",
            RouterKind::SoftwareFast {
                timing,
                cache: true,
            },
        ),
    ];
    for (lookup, cache, kind) in variants {
        // The linear baseline only runs sequentially (it is the slow
        // side being measured, not the one under test for sharding);
        // the merge engine is measured on the full fast path only.
        let counts: &[usize] = if lookup == "linear" {
            &shard_counts[..1]
        } else {
            shard_counts
        };
        let engines: &[EngineKind] = if lookup == "hash" && cache == "on" {
            &[EngineKind::Barrier, EngineKind::Merge]
        } else {
            &[EngineKind::Barrier]
        };
        for &engine in engines {
            for &shards in counts {
                let (report, secs) = best_of(|| run_at(kind, shards, engine));
                let json = serde_json::to_string(&report).expect("report serializes");
                if baseline_json.is_empty() {
                    baseline_json = json.clone();
                }
                assert_eq!(
                    baseline_json,
                    json,
                    "{lookup} (cache {cache}, {}, {shards} shard(s)) diverged from the \
                     linear baseline",
                    engine.name()
                );
                let events = report.engine.total_events();
                let eps = events as f64 / secs;
                if lookup == "linear" {
                    linear_eps = eps;
                }
                if lookup == "hash" && cache == "on" && shards == 1 && engine == EngineKind::Barrier
                {
                    fast_eps_1shard = eps;
                }
                t.row(&[
                    lookup.to_string(),
                    cache.to_string(),
                    engine.name().to_string(),
                    shards.to_string(),
                    events.to_string(),
                    format!("{:.1}", secs * 1e3),
                    format!("{:.0}", eps),
                    format!("{:.2}x", eps / linear_eps),
                ]);
                // Barrier rows keep the BENCH_6 row shape (no `engine`
                // key) so the regression gate can compare across the
                // schema change; merge rows tag themselves.
                let mut row = vec![
                    ("lookup".to_string(), Value::Str(lookup.into())),
                    ("cache".to_string(), Value::Str(cache.into())),
                ];
                if engine == EngineKind::Merge {
                    row.push(("engine".to_string(), Value::Str("merge".into())));
                }
                row.push(("shards".to_string(), Value::U64(shards as u64)));
                row.push(("events".to_string(), Value::U64(events)));
                row.push(("wall_ms".to_string(), Value::F64(secs * 1e3)));
                row.push(("events_per_sec".to_string(), Value::F64(eps)));
                rows.push(Value::Map(row));
            }
        }
    }
    let ratio = fast_eps_1shard / linear_eps;
    let mut notes = vec![
        "reports byte-identical across lookup strategy, cache setting, engine and \
         shard count -- OK"
            .into(),
        format!("fast path (cache on, 1 shard) vs linear: {ratio:.2}x events/s"),
    ];
    if !quick && ratio < 3.0 {
        notes.push("warning: expected >= 3x on a deep table; host noise or shallow tables?".into());
    }
    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        (
            "lsps_per_pair".to_string(),
            Value::U64(lsps_per_pair as u64),
        ),
        ("run_ns".to_string(), Value::U64(run_ns)),
    ];
    Section {
        bench: "ext12-throughput",
        config,
        rows,
        table: t.render(),
        notes,
    }
}

// -----------------------------------------------------------------
// EXT-11: LDP convergence
// -----------------------------------------------------------------

const EXT11_DOWN_NS: u64 = 20_000_000;
const EXT11_INTERVAL_NS: u64 = 100_000; // 10k pkt/s CBR probe
const EXT11_HORIZON_NS: u64 = 90_000_000;

fn convergence_grid(rows: u32, cols: u32) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            for next in [
                (c + 1 < cols).then(|| id + 1),
                (r + 1 < rows).then(|| id + cols),
            ]
            .into_iter()
            .flatten()
            {
                topo.add_link(LinkSpec {
                    a: id,
                    b: next,
                    cost: 1 + ((id as u64 * 13 + next as u64 * 5) % 3) as u32,
                    bandwidth_bps: 200_000_000,
                    delay_ns: 20_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .unwrap();
    cp
}

fn convergence_sim(cp: &ControlPlane, hold_ns: u64) -> Simulation {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        42,
    );
    sim.enable_ldp(LdpConfig {
        hello_interval_ns: hold_ns / 3,
        hold_ns,
        ..LdpConfig::default()
    });
    sim
}

/// Cold bring-up with no traffic: the report's convergence span is the
/// whole story.
fn run_bringup(cp: &ControlPlane, hold_ns: u64) -> SimReport {
    convergence_sim(cp, hold_ns).run(30_000_000)
}

/// Permanent cut of link 0-1 at `EXT11_DOWN_NS` under a CBR probe.
fn run_fault(cp: &ControlPlane, hold_ns: u64) -> SimReport {
    let mut sim = convergence_sim(cp, hold_ns);
    let cut = cp.topology().link_between(0, 1).unwrap();
    let mut plan = FaultPlan::default();
    plan.link_down(EXT11_DOWN_NS, cut);
    sim.set_fault_plan(plan);
    sim.add_flow(FlowSpec {
        name: "probe".into(),
        ingress: 0,
        src_addr: parse_addr("10.1.0.5").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 400,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: EXT11_INTERVAL_NS,
        },
        start_ns: 10_000_000,
        stop_ns: 60_000_000,
        police: None,
    });
    sim.run(EXT11_HORIZON_NS)
}

/// EXT-11: LDP bring-up and reconvergence across grid size x hold
/// time, with the timer-bound and monotonicity asserts inline.
pub fn ext11_convergence(quick: bool) -> Section {
    let grids: &[(u32, u32)] = if quick {
        &[(2, 2)]
    } else {
        &[(2, 2), (3, 3), (3, 4)]
    };
    let holds: &[u64] = if quick {
        &[3_500_000]
    } else {
        &[2_000_000, 3_500_000, 7_000_000]
    };

    let mut t = MarkdownTable::new(&[
        "grid",
        "hold (ms)",
        "bring-up (ms)",
        "detection (ms)",
        "reconverge (ms)",
        "pkts lost",
        "PDUs sent",
    ]);
    let mut rows = Vec::new();
    let mut detections: Vec<((u32, u32), u64, u64)> = Vec::new();
    for &(grows, gcols) in grids {
        let cp = convergence_grid(grows, gcols);
        for &hold in holds {
            let up = run_bringup(&cp, hold);
            assert_eq!(up.control.mode, "ldp");
            let bringup = up
                .control
                .convergence_ns
                .expect("fault-free bring-up settles");
            assert_eq!(up.control.session_downs, 0, "sessions flapped at bring-up");
            assert_eq!(
                up.control.pdus_lost, 0,
                "control PDUs lost on healthy links"
            );

            let report = run_fault(&cp, hold);
            let s = report.flow("probe").unwrap();
            assert_eq!(
                s.sent,
                s.delivered + s.link_dropped + s.router_dropped + s.queue_dropped + s.loss_dropped,
                "conservation violated at {grows}x{gcols}/hold {hold}"
            );
            let rec = &report.faults[0];
            let det = rec.detected_ns.expect("hold expiry detects the cut") - rec.down_ns;
            let reconverge = rec.restored_ns.expect("withdraw wave settles") - rec.down_ns;
            assert!(
                det <= 2 * hold,
                "detection {det} ns exceeds two hold times ({hold} ns)"
            );
            assert!(reconverge >= det, "cannot reroute before detecting");
            t.row(&[
                format!("{grows}x{gcols}"),
                format!("{:.1}", hold as f64 / 1e6),
                format!("{:.2}", bringup as f64 / 1e6),
                format!("{:.2}", det as f64 / 1e6),
                format!("{:.2}", reconverge as f64 / 1e6),
                format!("{}", rec.packets_lost),
                format!("{}", report.control.pdus_sent),
            ]);
            rows.push(obj(&[
                ("grid", Value::Str(format!("{grows}x{gcols}"))),
                ("hold_ms", Value::F64(hold as f64 / 1e6)),
                ("bringup_ms", Value::F64(bringup as f64 / 1e6)),
                ("detection_ms", Value::F64(det as f64 / 1e6)),
                ("reconverge_ms", Value::F64(reconverge as f64 / 1e6)),
                ("pkts_lost", Value::U64(rec.packets_lost)),
                ("pdus_sent", Value::U64(report.control.pdus_sent)),
            ]));
            detections.push(((grows, gcols), hold, det));
        }
    }

    // Detection is a timer property, not a topology property: for every
    // grid it sits inside [hold - hello, hold + hello] — one hold time
    // after the last hello that arrived before the cut.
    for &(grid, hold, det) in &detections {
        let hello = hold / 3;
        assert!(
            det >= hold - hello && det <= hold + hello,
            "detection {det} ns outside [{}, {}] ns at {grid:?}",
            hold - hello,
            hold + hello
        );
    }
    for &(grows, gcols) in grids {
        let mut per_grid: Vec<u64> = detections
            .iter()
            .filter(|(g, _, _)| *g == (grows, gcols))
            .map(|&(_, _, d)| d)
            .collect();
        let sorted = {
            let mut s = per_grid.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(
            per_grid, sorted,
            "detection not monotone in hold at {grows}x{gcols}"
        );
        per_grid.dedup();
        assert_eq!(per_grid.len(), holds.len(), "hold sweep collapsed");
    }

    let notes = vec![
        "observations:".into(),
        "  - bring-up is wave-propagation bound: a few hello intervals to".into(),
        "    form sessions, then one ordered-distribution sweep per FEC;".into(),
        "  - detection tracks the hold timer (one hold after the last".into(),
        "    pre-cut hello), independent of grid size;".into(),
        "  - reconvergence adds the withdraw/remap wave on top of".into(),
        "    detection, so probe loss is dominated by the timer choice.".into(),
        "".into(),
        "convergence claims hold -- OK".into(),
    ];
    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("down_ns".to_string(), Value::U64(EXT11_DOWN_NS)),
        ("horizon_ns".to_string(), Value::U64(EXT11_HORIZON_NS)),
    ];
    Section {
        bench: "ext11-convergence",
        config,
        rows,
        table: t.render(),
        notes,
    }
}

// -----------------------------------------------------------------
// EXT-15: production-scale streaming workloads
// -----------------------------------------------------------------

/// One EXT-15 case: a family at a width, an LSP volume, and the CBR
/// probe window. Everything else is held constant so quick and full
/// points differ only in scale.
fn ext15_spec(family: ScaleFamily, lsps_total: usize, flows: usize, run_ns: u64) -> ScaleSpec {
    ScaleSpec {
        family,
        lsps_total,
        tunnel_strides: 4,
        flows,
        payload_bytes: 256,
        flow_interval_ns: 100_000,
        flow_start_ns: 0,
        flow_stop_ns: run_ns,
        bandwidth_bps: 10_000_000_000,
        delay_ns: 10_000,
        seed: 15,
    }
}

/// EXT-15: streaming bring-up of production-scale workloads, then the
/// probed data plane under the shard × engine matrix.
///
/// Quick keeps CI at ~256-node widths and tens of thousands of LSPs;
/// full is the paper-scale point — a 1088-node fat tree carrying one
/// million hierarchically tunneled LSPs and a 1056-node ring of rings
/// at 200k. Each family certifies:
///
/// * **bring-up** — the control plane signals every tunnel and LSP from
///   the pure `(spec, i)` endpoint function, one request alive at a
///   time; the row records the sustained signaling rate.
/// * **conservation + quiesce** — every probe flow's packets are fully
///   accounted for at the horizon: delivered or attributed to a drop
///   class, nothing in flight.
/// * **identity** — the serialized report is byte-identical across
///   shards {1, 4} under both the barrier and merge engines.
pub fn ext15_scale(quick: bool) -> Section {
    let run_ns: u64 = if quick { 5_000_000 } else { 10_000_000 };
    let cases: Vec<(&'static str, ScaleSpec)> = if quick {
        vec![
            (
                "fat-tree",
                ext15_spec(
                    ScaleFamily::FatTree {
                        k: 8,
                        lers_per_edge: 6,
                    },
                    64_000,
                    16,
                    run_ns,
                ),
            ),
            (
                "ring-of-rings",
                ext15_spec(
                    ScaleFamily::RingOfRings {
                        rings: 16,
                        ring_size: 15,
                    },
                    16_000,
                    16,
                    run_ns,
                ),
            ),
        ]
    } else {
        vec![
            (
                "fat-tree",
                ext15_spec(
                    ScaleFamily::FatTree {
                        k: 16,
                        lers_per_edge: 6,
                    },
                    1_000_000,
                    32,
                    run_ns,
                ),
            ),
            // Access-ring hops cost a label each (only the fat tree's
            // LER-adjacent anchors hit the one-label-per-LSP floor), so
            // the ring point stays at 100k LSPs / short local rings to
            // fit the shared 2^20 label space. Measured: ~5.0 labels
            // per LSP here (502,308 / 100k at ring_size 10); the quick
            // ring_size-15 point pays ~7.6 — the per-LSP cost tracks
            // ring_size, it is not a constant.
            (
                "ring-of-rings",
                ext15_spec(
                    ScaleFamily::RingOfRings {
                        rings: 96,
                        ring_size: 10,
                    },
                    100_000,
                    32,
                    run_ns,
                ),
            ),
        ]
    };
    let timing = SwTimingModel::default();

    let mut t = MarkdownTable::new(&[
        "family",
        "nodes",
        "lsps",
        "labels",
        "bring-up s",
        "sig/s",
        "engine",
        "shards",
        "events",
        "wall ms",
        "events/s",
    ]);
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for (label, spec) in &cases {
        let t0 = Instant::now();
        let w = spec.build().expect("scale workload signals");
        let build_secs = t0.elapsed().as_secs_f64();
        let labels = w.cp.labels_allocated();
        let nodes = w.cp.topology().nodes().len();
        let signaled = (w.tunnels + w.lsps) as u64;
        let sig_rate = signaled as f64 / build_secs;
        rows.push(obj(&[
            ("family", Value::Str((*label).into())),
            ("phase", Value::Str("bringup".into())),
            ("nodes", Value::U64(nodes as u64)),
            ("lsps", Value::U64(w.lsps as u64)),
            ("tunnels", Value::U64(w.tunnels as u64)),
            ("labels", Value::U64(labels as u64)),
            ("events", Value::U64(signaled)),
            ("wall_ms", Value::F64(build_secs * 1e3)),
            ("events_per_sec", Value::F64(sig_rate)),
        ]));

        let run_cell = |shards: usize, engine: EngineKind| {
            let mut sim = Simulation::build(
                &w.cp,
                RouterKind::SoftwareFast {
                    timing,
                    cache: true,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                15,
            );
            sim.set_shards(shards);
            sim.set_engine(engine);
            for f in w.flows.clone() {
                sim.add_flow(f);
            }
            let start = Instant::now();
            let report = sim.run(run_ns + 20_000_000);
            (report, start.elapsed().as_secs_f64())
        };

        let mut baseline_json = String::new();
        for engine in [EngineKind::Barrier, EngineKind::Merge] {
            for shards in [1usize, 4] {
                // Single-shot timing: at the full widths one cell is a
                // whole-machine run, and the identity assert is the
                // point — events/s here is informational.
                let (report, secs) = run_cell(shards, engine);
                let json = serde_json::to_string(&report).expect("report serializes");
                if baseline_json.is_empty() {
                    baseline_json = json.clone();
                }
                assert_eq!(
                    baseline_json,
                    json,
                    "{label}: report diverged under {} at {shards} shards",
                    engine.name()
                );
                let mut delivered = 0u64;
                for (spec, s) in &report.flows {
                    let accounted = s.delivered
                        + s.router_dropped
                        + s.queue_dropped
                        + s.policer_dropped
                        + s.link_dropped
                        + s.loss_dropped;
                    assert_eq!(
                        s.sent, accounted,
                        "{label}: conservation violated on {:?}",
                        spec.name
                    );
                    assert!(
                        s.delivered > 0,
                        "{label}: {:?} delivered nothing",
                        spec.name
                    );
                    delivered += s.delivered;
                }
                assert!(delivered > 0, "{label}: no probe traffic delivered");
                let events = report.engine.total_events();
                let eps = events as f64 / secs;
                t.row(&[
                    (*label).to_string(),
                    nodes.to_string(),
                    w.lsps.to_string(),
                    labels.to_string(),
                    format!("{build_secs:.1}"),
                    format!("{sig_rate:.0}"),
                    engine.name().to_string(),
                    shards.to_string(),
                    events.to_string(),
                    format!("{:.1}", secs * 1e3),
                    format!("{eps:.0}"),
                ]);
                rows.push(obj(&[
                    ("family", Value::Str((*label).into())),
                    ("engine", Value::Str(engine.name().into())),
                    ("shards", Value::U64(shards as u64)),
                    ("events", Value::U64(events)),
                    ("wall_ms", Value::F64(secs * 1e3)),
                    ("events_per_sec", Value::F64(eps)),
                ]));
            }
        }
        notes.push(format!(
            "{label}: {nodes} nodes, {} tunnels + {} LSPs signaled in {build_secs:.1}s \
             ({sig_rate:.0} ops/s), {labels} labels allocated; reports byte-identical \
             across shards {{1,4}} x {{barrier,merge}} -- OK",
            w.tunnels, w.lsps
        ));
    }
    notes.push(
        "single-shot wall times on a shared host; the identity and conservation \
         asserts are the certified claims, events/s is informational"
            .into(),
    );
    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("run_ns".to_string(), Value::U64(run_ns)),
        ("seed".to_string(), Value::U64(15)),
    ];
    Section {
        bench: "ext15-scale",
        config,
        rows,
        table: t.render(),
        notes,
    }
}

// -----------------------------------------------------------------
// EXT-16: segment routing vs LDP on the same fat tree
// -----------------------------------------------------------------

/// The 36-node 4-ary fat tree (2 LERs per edge switch) with four
/// cross-pod LSPs between pods 0 and 3 — every route crosses the
/// full edge/agg/core/agg/edge diameter, so the ECMP fan-out and the
/// stack-depth sweep both have room to act. The same plane feeds the
/// LDP leg and every SR leg, so state-footprint and convergence
/// numbers compare like for like.
fn ext16_plane() -> ControlPlane {
    let topo = Topology::fat_tree(4, 2, 1_000_000_000, 10_000);
    let mut cp = ControlPlane::new(topo);
    // LERs are 20..35 edge-major: pod 0 owns 20..23, pod 3 owns 32..35.
    let pairs: [(u32, u32); 4] = [(20, 34), (21, 35), (22, 32), (23, 33)];
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let fec = Prefix::new(parse_addr(&format!("192.168.{}.0", i + 1)).unwrap(), 24);
        cp.attach_prefix(b, fec);
        cp.attach_prefix(
            a,
            Prefix::new(parse_addr(&format!("10.{}.0.0", i + 1)).unwrap(), 16),
        );
        cp.establish_lsp(LspRequest::best_effort(a, b, fec))
            .expect("cross-pod LSP signals");
    }
    cp
}

fn ext16_flows(stop_ns: u64) -> Vec<FlowSpec> {
    (0..4u32)
        .map(|i| FlowSpec {
            name: format!("x{i}"),
            ingress: [20u32, 21, 22, 23][i as usize],
            src_addr: parse_addr(&format!("10.{}.0.{}", i + 1, 7 + i)).unwrap(),
            dst_addr: parse_addr(&format!("192.168.{}.{}", i + 1, 9 + i)).unwrap(),
            payload_bytes: 256,
            precedence: 0,
            pattern: TrafficPattern::Cbr {
                interval_ns: 200_000,
            },
            start_ns: 0,
            stop_ns,
            police: None,
        })
        .collect()
}

/// Total programmed state across a config set, with the same counting
/// rule [`mpls_sr::SrFabric::state`] uses: every binding, next-hop,
/// FEC, IP route, SR policy and ECMP set is one FIB entry. Labels are
/// the level-2 bindings — one per label the owning node allocated.
fn ext16_footprint(
    configs: &std::collections::BTreeMap<mpls_control::NodeId, mpls_control::NodeConfig>,
) -> (u64, u64) {
    let mut labels = 0u64;
    let mut entries = 0u64;
    for c in configs.values() {
        labels += c.bindings.iter().filter(|b| b.level == 2).count() as u64;
        entries += (c.bindings.len()
            + c.next_hops.len()
            + c.fecs.len()
            + c.ip_routes.len()
            + c.sr_policies.len()
            + c.ecmp.len()) as u64;
    }
    (labels, entries)
}

/// EXT-16: source-routed SR against signaled LDP on the same fat tree.
///
/// One LDP leg, then SR legs over max push depth {3, 6, 12} × RLD
/// {2, 6} — the depth sweep moves routes from strict per-hop stacks
/// (no ECMP choice left) through loose-hop compression (entropy-hashed
/// fan-out across the Clos), and the RLD sweep toggles whether transit
/// nodes can read the entropy pair at all. Each leg reports:
///
/// * **state footprint** — labels allocated plus programmed FIB
///   entries network-wide: LDP pays per-FEC per-hop, SR pays one node
///   SID per node plus ingress policies;
/// * **bring-up / reconvergence** — LDP's hello+distribution wave vs
///   SR's pre-programmed t=0 start, and the service gap around a
///   mid-run link cut (LDP: withdraw wave; SR: coordinator recompile);
/// * **events/s** — data-plane throughput as a function of stack depth
///   and RLD, with per-flow conservation asserted;
/// * **identity** — every SR config's serialized report is
///   byte-identical across shards {1, 4} × engines {barrier, merge}.
pub fn ext16_sr_vs_ldp(quick: bool) -> Section {
    let stop_ns: u64 = if quick { 10_000_000 } else { 30_000_000 };
    let down_ns: u64 = if quick { 3_000_000 } else { 8_000_000 };
    let up_ns: u64 = if quick { 8_000_000 } else { 20_000_000 };
    let horizon_ns = stop_ns + 100_000_000;
    let cp = ext16_plane();
    // The pod-0 edge switch under LERs 20/21 and its first aggregation
    // switch: on the compiled route of flows x0/x1, with an equal-cost
    // sibling for recovery to use.
    let cut = cp.topology().link_between(12, 4).expect("edge-agg link");
    let timing = SwTimingModel::default();

    let mut t = MarkdownTable::new(&[
        "control",
        "depth",
        "rld",
        "labels",
        "fib entries",
        "bring-up (ms)",
        "reconverge (ms)",
        "peak stack",
        "ecmp",
        "rld viol",
        "events/s",
    ]);
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    let check_flows = |label: &str, report: &SimReport| {
        for (spec, s) in &report.flows {
            let accounted = s.delivered
                + s.router_dropped
                + s.queue_dropped
                + s.policer_dropped
                + s.link_dropped
                + s.loss_dropped;
            assert_eq!(
                s.sent, accounted,
                "{label}: conservation violated on {:?}",
                spec.name
            );
            assert!(
                s.delivered > 0,
                "{label}: {:?} delivered nothing",
                spec.name
            );
        }
    };

    // ---- LDP leg ----------------------------------------------------
    let run_ldp = || {
        let mut sim = Simulation::build(
            &cp,
            RouterKind::SoftwareHash { timing },
            QueueDiscipline::Fifo { capacity: 64 },
            16,
        );
        sim.enable_ldp(LdpConfig::default());
        let mut plan = FaultPlan::new(RestorationPolicy::default());
        plan.outage(cut, down_ns, up_ns);
        sim.set_fault_plan(plan);
        for f in ext16_flows(stop_ns) {
            sim.add_flow(f);
        }
        let start = Instant::now();
        let report = sim.run(horizon_ns);
        (report, start.elapsed().as_secs_f64())
    };
    let (ldp_report, ldp_secs) = best_of(run_ldp);
    assert_eq!(ldp_report.control.mode, "ldp");
    check_flows("ldp", &ldp_report);
    let ldp_bringup = ldp_report
        .control
        .convergence_ns
        .expect("LDP bring-up settles") as f64
        / 1e6;
    let ldp_rec = &ldp_report.faults[0];
    let ldp_reconverge =
        (ldp_rec.restored_ns.expect("withdraw wave reroutes") - ldp_rec.down_ns) as f64 / 1e6;
    let (ldp_labels, ldp_entries) =
        ext16_footprint(ldp_report.fibs.as_ref().expect("ldp exposes FIBs"));
    let ldp_events = ldp_report.engine.total_events();
    let ldp_eps = ldp_events as f64 / ldp_secs;
    t.row(&[
        "ldp".into(),
        "-".into(),
        "-".into(),
        ldp_labels.to_string(),
        ldp_entries.to_string(),
        format!("{ldp_bringup:.2}"),
        format!("{ldp_reconverge:.2}"),
        "1".into(),
        "-".into(),
        "-".into(),
        format!("{ldp_eps:.0}"),
    ]);
    rows.push(obj(&[
        ("control", Value::Str("ldp".into())),
        ("labels", Value::U64(ldp_labels)),
        ("fib_entries", Value::U64(ldp_entries)),
        ("bringup_ms", Value::F64(ldp_bringup)),
        ("reconverge_ms", Value::F64(ldp_reconverge)),
        ("events", Value::U64(ldp_events)),
        ("events_per_sec", Value::F64(ldp_eps)),
    ]));

    // ---- SR legs: depth x RLD sweep ---------------------------------
    let depths: [u8; 3] = [3, 6, 12];
    let rlds: [u8; 2] = [2, 6];
    for &depth in &depths {
        for &rld in &rlds {
            let cfg = SrConfig {
                max_push_depth: depth,
                rld,
                ..SrConfig::default()
            };
            let build = |shards: usize, engine: EngineKind| {
                let mut sim = Simulation::build(
                    &cp,
                    RouterKind::SoftwareHash { timing },
                    QueueDiscipline::Fifo { capacity: 64 },
                    16,
                );
                sim.set_shards(shards);
                sim.set_engine(engine);
                sim.enable_sr(cfg);
                let mut plan = FaultPlan::new(RestorationPolicy::default());
                plan.outage(cut, down_ns, up_ns);
                sim.set_fault_plan(plan);
                for f in ext16_flows(stop_ns) {
                    sim.add_flow(f);
                }
                sim
            };
            let state = {
                let sim = build(1, EngineKind::Barrier);
                sim.sr_fabric().expect("sr enabled").state()
            };

            // Identity across the shard x engine matrix; time the
            // 1-shard barrier cell (best-of like every other leg).
            let run_cell = |shards: usize, engine: EngineKind| {
                let sim = build(shards, engine);
                let start = Instant::now();
                let report = sim.run(horizon_ns);
                (report, start.elapsed().as_secs_f64())
            };
            let (report, secs) = best_of(|| run_cell(1, EngineKind::Barrier));
            let baseline = serde_json::to_string(&report).expect("report serializes");
            for engine in [EngineKind::Barrier, EngineKind::Merge] {
                for shards in [1usize, 4] {
                    let (twin, _) = run_cell(shards, engine);
                    assert_eq!(
                        baseline,
                        serde_json::to_string(&twin).expect("report serializes"),
                        "sr depth {depth} rld {rld}: report diverged under {} at {shards} shards",
                        engine.name()
                    );
                }
            }

            assert_eq!(report.control.mode, "sr");
            check_flows(&format!("sr d{depth} r{rld}"), &report);
            let rec = &report.faults[0];
            let reconverge =
                (rec.restored_ns.expect("recompile restores") - rec.down_ns) as f64 / 1e6;
            let peak_stack = report
                .routers
                .values()
                .map(|r| r.peak_stack_depth)
                .max()
                .unwrap_or(0);
            let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
            let viol: u64 = report.routers.values().map(|r| r.rld_violations).sum();
            // The sweep's whole point. Depth 3 leaves one loose
            // 6-hop segment, so transit nodes face equal-cost choices:
            // ECMP engages when the RLD exposes the entropy pair, and
            // every hidden-pair lookup is counted instead. Depth 6's
            // budget (4 SIDs after the pair) cuts the route into <=2
            // hop segments — each has a unique shortest path in a fat
            // tree, so like the strict depth-12 stack there is no
            // choice left to hash over.
            if depth == 3 && rld > 2 {
                assert!(ecmp > 0, "depth {depth}/rld {rld}: loose segment must ECMP");
                assert_eq!(
                    viol, 0,
                    "depth {depth}/rld {rld}: readable pair, no violations"
                );
            }
            if depth == 3 && rld == 2 {
                assert!(
                    viol > 0,
                    "depth {depth}/rld 2: hidden pair must count violations"
                );
                assert_eq!(
                    ecmp, 0,
                    "depth {depth}/rld 2: unreadable pair must not hash"
                );
            }
            if depth >= 6 {
                assert_eq!(
                    ecmp, 0,
                    "depth {depth}: short segments leave no ECMP choice"
                );
                assert_eq!(viol, 0, "depth {depth}: no entropy lookups, no violations");
            }
            assert!(
                peak_stack as usize <= depth as usize || depth as usize >= 12,
                "depth {depth}: ingress exceeded its push budget ({peak_stack})"
            );
            let events = report.engine.total_events();
            let eps = events as f64 / secs;
            t.row(&[
                "sr".into(),
                depth.to_string(),
                rld.to_string(),
                (state.labels as u64).to_string(),
                (state.fib_entries as u64).to_string(),
                "0.00".into(),
                format!("{reconverge:.2}"),
                peak_stack.to_string(),
                ecmp.to_string(),
                viol.to_string(),
                format!("{eps:.0}"),
            ]);
            rows.push(obj(&[
                ("control", Value::Str("sr".into())),
                ("depth", Value::U64(depth as u64)),
                ("rld", Value::U64(rld as u64)),
                ("labels", Value::U64(state.labels as u64)),
                ("fib_entries", Value::U64(state.fib_entries as u64)),
                ("policies", Value::U64(state.policies as u64)),
                ("bringup_ms", Value::F64(0.0)),
                ("reconverge_ms", Value::F64(reconverge)),
                ("peak_stack", Value::U64(peak_stack)),
                ("ecmp_decisions", Value::U64(ecmp)),
                ("rld_violations", Value::U64(viol)),
                ("events", Value::U64(events)),
                ("events_per_sec", Value::F64(eps)),
            ]));
        }
    }

    notes.push("observations:".into());
    notes.push("  - state: SR allocates one node SID per node where LDP allocates a".into());
    notes.push("    label per (node, FEC) hop -- but SR pre-programs every node's".into());
    notes.push("    full SID table, so its FIB-entry floor is O(nodes^2) and larger".into());
    notes.push("    at this LSP count; LDP's grows with LSPs and crosses over at".into());
    notes.push("    scale (ext15 signals 64k LSPs on the same family);".into());
    notes.push("  - bring-up: SR routes are compiled and downloaded before t=0".into());
    notes.push("    (0 ms by construction); LDP spends its hello+distribution wave;".into());
    notes.push("  - recovery: the SR coordinator recompiles at detection, so the".into());
    notes.push("    gap is the detection delay alone; LDP adds the withdraw wave;".into());
    notes.push("  - depth sweep: depth 12 fits the strict per-hop stack and depth 6".into());
    notes.push("    still cuts the route into uniquely-routed <=2-hop segments, so".into());
    notes.push("    neither leaves an ECMP choice; depth 3 compresses to one loose".into());
    notes.push("    segment that hashes across the Clos when the RLD exposes the".into());
    notes.push("    entropy pair, and falls back to first-next-hop (counted) when not.".into());
    notes.push("".into());
    notes.push(
        "sr reports byte-identical across shards {1,4} x {barrier,merge} at \
         every depth/RLD point -- OK"
            .into(),
    );
    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("stop_ns".to_string(), Value::U64(stop_ns)),
        ("down_ns".to_string(), Value::U64(down_ns)),
        ("up_ns".to_string(), Value::U64(up_ns)),
        ("seed".to_string(), Value::U64(16)),
    ];
    Section {
        bench: "ext16-sr-vs-ldp",
        config,
        rows,
        table: t.render(),
        notes,
    }
}

/// Figure-1 plane (fast north path, slow southern detour) with one
/// best-effort LSP 0 -> 1; the EXT-17 flows all ride it.
fn ext17_plane() -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .expect("LSP signals");
    cp
}

/// EXT-17: open- vs closed-loop traffic through a fault/restoration
/// window.
///
/// Four parallel sources from LER 0 to LER 1, run once open-loop
/// (Poisson, rate-matched to the closed-loop offered load) and once
/// closed-loop (AIMD congestion windows, ack-clocked by reverse-path
/// delivery, bounded-Pareto transfer sizes, ECN-style marks at the
/// queue threshold), each with and without a mid-run cut of the
/// northern link. The closed-loop legs must show the window visibly
/// reacting — RTO-driven collapse and retransmissions only in the
/// faulted leg, recovery (deliveries and completions) after
/// restoration — while the open-loop source just keeps spraying into
/// the outage. Every leg asserts per-flow conservation (with
/// retransmissions accounted) and serialized-report byte-identity
/// across shards {1, 4} x engines {barrier, merge}.
pub fn ext17_closed_loop(quick: bool) -> Section {
    let stop_ns: u64 = if quick { 25_000_000 } else { 60_000_000 };
    let (down_ns, up_ns): (u64, u64) = if quick {
        (6_000_000, 14_000_000)
    } else {
        (12_000_000, 30_000_000)
    };
    let horizon_ns = stop_ns + 60_000_000;
    let cp = ext17_plane();
    let cut = cp.topology().link_between(2, 3).expect("northern link");
    let payload_bytes = 500usize;

    // Closed-loop knobs sized to the figure-1 RTT (~3 ms north): the
    // RTO clears the clean-path RTT with slack but trips on the slow
    // southern detour, so the faulted leg shows real timeouts.
    let cl = ClosedLoopSpec {
        mean_arrival_ns: 300_000,
        size_min_pkts: 4,
        size_max_pkts: 32,
        max_cwnd: 16,
        rto_ns: 6_000_000,
        ecn_threshold: 5,
        sla_fct_ns: 15_000_000,
        ..ClosedLoopSpec::default()
    };
    // The open-loop twin offers roughly the same load: mean transfer
    // near 9 packets every 300 us per source ~= one packet per 33 us.
    let open = TrafficPattern::Poisson {
        mean_interval_ns: 33_000,
    };

    let flows = |pattern: &TrafficPattern| -> Vec<FlowSpec> {
        (0..4u32)
            .map(|i| FlowSpec {
                name: format!("app{i}"),
                ingress: 0,
                src_addr: parse_addr(&format!("10.0.0.{}", i + 1)).unwrap(),
                dst_addr: parse_addr(&format!("192.168.1.{}", i + 1)).unwrap(),
                payload_bytes,
                precedence: 0,
                pattern: *pattern,
                start_ns: 0,
                stop_ns,
                police: None,
            })
            .collect()
    };

    let mut t = MarkdownTable::new(&[
        "traffic",
        "faults",
        "sent",
        "delivered",
        "goodput (Mb/s)",
        "xfers",
        "mean FCT (ms)",
        "retx",
        "ecn",
        "cwnd cuts",
        "peak cwnd",
        "sla viol",
        "events/s",
    ]);
    let mut rows = Vec::new();
    let mut notes = Vec::new();

    for (kind, pattern) in [("open", open), ("closed", TrafficPattern::ClosedLoop(cl))] {
        for with_fault in [false, true] {
            let leg = format!("{kind}/{}", if with_fault { "fault" } else { "clean" });
            let specs = flows(&pattern);
            let build = |shards: usize, engine: EngineKind| {
                let mut sim = Simulation::build(
                    &cp,
                    RouterKind::Embedded {
                        clock: ClockSpec::STRATIX_50MHZ,
                    },
                    QueueDiscipline::Fifo { capacity: 64 },
                    17,
                );
                sim.set_shards(shards);
                sim.set_engine(engine);
                if with_fault {
                    let mut plan = FaultPlan::new(RestorationPolicy::default());
                    plan.outage(cut, down_ns, up_ns);
                    sim.set_fault_plan(plan);
                }
                for f in &specs {
                    sim.add_flow(f.clone());
                }
                sim
            };
            let run_cell = |shards: usize, engine: EngineKind| {
                let sim = build(shards, engine);
                let start = Instant::now();
                let report = sim.run(horizon_ns);
                (report, start.elapsed().as_secs_f64())
            };
            let (report, secs) = best_of(|| run_cell(1, EngineKind::Barrier));

            // Identity across the shard x engine matrix.
            let baseline = serde_json::to_string(&report).expect("report serializes");
            for engine in [EngineKind::Barrier, EngineKind::Merge] {
                for shards in [1usize, 4] {
                    let (twin, _) = run_cell(shards, engine);
                    assert_eq!(
                        baseline,
                        serde_json::to_string(&twin).expect("report serializes"),
                        "{leg}: report diverged under {} at {shards} shards",
                        engine.name()
                    );
                }
            }

            // Conservation with retransmissions accounted, per flow.
            let mut sent = 0u64;
            let mut delivered = 0u64;
            let mut retx = 0u64;
            let mut ecn = 0u64;
            let mut cuts = 0u64;
            let mut peak = 0u64;
            let mut started = 0u64;
            let mut completed = 0u64;
            let mut fct_sum = 0u64;
            let mut sla = 0u64;
            let mut link_drops = 0u64;
            let mut last_delivery = 0u64;
            for (spec, s) in &report.flows {
                let drops = s.router_dropped
                    + s.queue_dropped
                    + s.policer_dropped
                    + s.link_dropped
                    + s.loss_dropped;
                assert_eq!(
                    s.sent,
                    s.delivered + drops,
                    "{leg}: conservation violated on {:?}",
                    spec.name
                );
                assert!(s.retransmits <= s.sent);
                sent += s.sent;
                delivered += s.delivered;
                retx += s.retransmits;
                ecn += s.ecn_marks;
                cuts += s.cwnd_cuts;
                peak = peak.max(s.cwnd_peak);
                started += s.transfers_started;
                completed += s.transfers_completed;
                fct_sum += s.fct_sum_ns;
                sla += s.sla_violations;
                link_drops += s.link_dropped;
                last_delivery = last_delivery.max(s.last_delivery_ns);
            }

            if kind == "closed" {
                assert!(started > 0 && completed > 0, "{leg}: no transfers moved");
                assert!(peak > 1, "{leg}: the window never opened past 1");
                if with_fault {
                    // Decrease on loss: the outage strands in-flight
                    // packets; the RTO collapses the window and re-sends.
                    assert!(link_drops > 0, "{leg}: outage claimed no packet");
                    assert!(retx > 0, "{leg}: outage provoked no retransmission");
                    assert!(cuts > 0, "{leg}: loss never cut a window");
                    // Recovery after restoration.
                    assert!(
                        last_delivery > up_ns,
                        "{leg}: no deliveries after restoration ({last_delivery})"
                    );
                } else {
                    assert_eq!(retx, 0, "{leg}: clean path must never time out");
                }
            } else if with_fault {
                assert!(link_drops > 0, "{leg}: outage claimed no packet");
            }

            let goodput_mbps =
                (delivered as f64 * payload_bytes as f64 * 8.0) / (stop_ns as f64 / 1e9) / 1e6;
            let mean_fct_ms = if completed > 0 {
                fct_sum as f64 / completed as f64 / 1e6
            } else {
                0.0
            };
            let events = report.engine.total_events();
            let eps = events as f64 / secs;
            t.row(&[
                kind.into(),
                if with_fault { "outage" } else { "none" }.into(),
                sent.to_string(),
                delivered.to_string(),
                format!("{goodput_mbps:.2}"),
                if kind == "closed" {
                    format!("{completed}/{started}")
                } else {
                    "-".into()
                },
                if kind == "closed" {
                    format!("{mean_fct_ms:.2}")
                } else {
                    "-".into()
                },
                retx.to_string(),
                ecn.to_string(),
                cuts.to_string(),
                peak.to_string(),
                sla.to_string(),
                format!("{eps:.0}"),
            ]);
            rows.push(obj(&[
                ("traffic", Value::Str(kind.into())),
                ("fault", Value::Bool(with_fault)),
                ("sent", Value::U64(sent)),
                ("delivered", Value::U64(delivered)),
                ("goodput_mbps", Value::F64(goodput_mbps)),
                ("transfers_started", Value::U64(started)),
                ("transfers_completed", Value::U64(completed)),
                ("mean_fct_ms", Value::F64(mean_fct_ms)),
                ("retransmits", Value::U64(retx)),
                ("ecn_marks", Value::U64(ecn)),
                ("cwnd_cuts", Value::U64(cuts)),
                ("cwnd_peak", Value::U64(peak)),
                ("sla_violations", Value::U64(sla)),
                ("events", Value::U64(events)),
                ("events_per_sec", Value::F64(eps)),
            ]));
        }
    }

    notes.push("observations:".into());
    notes.push("  - the open-loop source sprays at its configured rate regardless of".into());
    notes.push("    the outage: deliveries stop but emissions (and drops) continue;".into());
    notes.push("  - the closed-loop source reacts: stranded in-flight packets hit the".into());
    notes.push("    RTO, the window collapses to 1 and re-sends, so the same outage".into());
    notes.push("    converts into retransmissions + window cuts instead of raw loss;".into());
    notes.push("  - after restoration the closed-loop flows resume completing".into());
    notes.push("    transfers (deliveries past the link-up timestamp), the visible".into());
    notes.push("    recovery half of the AIMD story;".into());
    notes.push("  - ECN marks at the queue threshold halve windows at most once per".into());
    notes.push("    window even on the clean path, keeping clean-path retransmits at 0.".into());
    notes.push("".into());
    notes.push("all four legs byte-identical across shards {1,4} x {barrier,merge} -- OK".into());

    let config = vec![
        ("quick".to_string(), Value::Bool(quick)),
        ("stop_ns".to_string(), Value::U64(stop_ns)),
        ("down_ns".to_string(), Value::U64(down_ns)),
        ("up_ns".to_string(), Value::U64(up_ns)),
        ("seed".to_string(), Value::U64(17)),
    ];
    Section {
        bench: "ext17-closed-loop",
        config,
        rows,
        table: t.render(),
        notes,
    }
}
