//! Load–latency characterization: the classic hockey-stick curve.
//!
//! Sweeps Poisson offered load from 10% to 120% of the bottleneck
//! capacity and reports delay percentiles and loss at each point, with
//! the whole sweep parallelized over rayon. The knee near 100% is the
//! quantitative version of the paper's opening claim that "increasing
//! bandwidth provides temporary relief" — once utilization approaches
//! capacity, delay is governed by queueing, which MPLS TE manages by
//! moving load, not by adding it.
//!
//! Run: `cargo run --release -p mpls-bench --bin load_latency`

use mpls_bench::scenarios::figure1_with_lsp;
use mpls_bench::MarkdownTable;
use mpls_core::ClockSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use rayon::prelude::*;

const RUN_NS: u64 = 300_000_000; // 300 ms
const WIRE_BYTES: usize = 1500;
const BOTTLENECK_BPS: f64 = 1e9;

fn flow_at_load(load: f64) -> FlowSpec {
    // Mean gap so that offered bits/s = load * bottleneck.
    let pkt_bits = (WIRE_BYTES * 8) as f64;
    let mean_interval_ns = (pkt_bits / (load * BOTTLENECK_BPS) * 1e9) as u64;
    FlowSpec {
        name: "load".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: WIRE_BYTES - 54,
        precedence: 0,
        pattern: TrafficPattern::Poisson { mean_interval_ns },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn main() {
    let cp = figure1_with_lsp();
    let loads: Vec<f64> = vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0, 1.1, 1.2];

    let rows: Vec<(f64, f64, f64, f64, f64)> = loads
        .par_iter()
        .map(|&load| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 256 },
                99,
            );
            sim.add_flow(flow_at_load(load));
            let report = sim.run(RUN_NS + 500_000_000);
            let s = report.flow("load").unwrap();
            let (p50, _, p99) = s.delay_hist.percentiles();
            // Queueing component: subtract the fixed 1.5 ms propagation +
            // serialization floor measured at the lightest load.
            (
                load,
                p50 / 1000.0,
                p99 / 1000.0,
                s.loss_rate() * 100.0,
                s.throughput_bps() / 1e6,
            )
        })
        .collect();

    println!("=== Load vs latency on the 1 Gb/s northern path (Poisson, FIFO 256) ===\n");
    let mut t = MarkdownTable::new(&[
        "offered load",
        "delay p50 (µs)",
        "delay p99 (µs)",
        "loss %",
        "goodput (Mb/s)",
    ]);
    for &(load, p50, p99, loss, goodput) in &rows {
        t.row(&[
            format!("{:.0}%", load * 100.0),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
            format!("{loss:.2}"),
            format!("{goodput:.0}"),
        ]);
    }
    println!("{}", t.render());

    // The hockey stick: p99 at 95% load must exceed p99 at 50% load, and
    // overload must show loss while goodput saturates at capacity.
    let p99_at = |l: f64| rows.iter().find(|r| (r.0 - l).abs() < 1e-9).unwrap().2;
    let loss_at = |l: f64| rows.iter().find(|r| (r.0 - l).abs() < 1e-9).unwrap().3;
    assert!(
        p99_at(0.95) > p99_at(0.5),
        "queueing must grow near capacity"
    );
    assert!(loss_at(0.5) == 0.0, "no loss at half load");
    assert!(loss_at(1.2) > 5.0, "overload must lose packets");
    println!("knee confirmed: p99 grows {:.1}x from 50% to 95% load; overload saturates at capacity with loss.",
        p99_at(0.95) / p99_at(0.5));
}
