//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! 1. **Flow-cache ablation** (embedded ingress): first-packet slow path
//!    (install + search) vs steady state, and the effect of flow-table
//!    position — the linear search makes entry *order* a performance
//!    knob, so placing hot flows early is a real optimization.
//! 2. **Clock scaling**: the same cycle counts at different FPGA clocks,
//!    mapping the architecture's throughput ceiling per occupancy.
//! 3. **PHP ablation**: egress cycles with and without penultimate-hop
//!    popping.
//!
//! Run: `cargo run --release -p mpls-bench --bin ablation`

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LspRequest, RouterRole, Topology};
use mpls_core::{table6, ClockSpec};
use mpls_dataplane::ftn::Prefix;
use mpls_packet::ipv4::parse_addr;
use mpls_packet::{CosBits, EtherType, EthernetFrame, Ipv4Header, LabelStack, MacAddr, MplsPacket};
use mpls_router::{Action, EmbeddedRouter, MplsForwarder};

fn packet_to(addr: u32) -> MplsPacket {
    MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(0, 0),
            src: MacAddr::from_node(9, 0),
            ethertype: EtherType::Ipv4,
        },
        Ipv4Header::new(0x0a000001, addr, Ipv4Header::PROTO_UDP, 64, 64),
        bytes::Bytes::from_static(&[0u8; 64]),
    )
}

fn plane(php: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let mut req =
        LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    req.php = php;
    cp.establish_lsp(req).unwrap();
    cp
}

fn flow_cache_ablation() {
    println!("--- ablation 1: ingress flow cache ---\n");
    let cp = plane(false);
    let mut r = EmbeddedRouter::new(
        0,
        RouterRole::Ler,
        &cp.config_for(0),
        ClockSpec::STRATIX_50MHZ,
    );

    let mut t = MarkdownTable::new(&["event", "cycles", "explanation"]);
    let base = parse_addr("192.168.1.0").unwrap();

    // First packets of 8 distinct flows: install + search at increasing
    // positions.
    let mut first_costs = Vec::new();
    for i in 1..=8u32 {
        let before = r.stats().total_cycles;
        let out = r.handle(packet_to(base + i));
        assert!(matches!(out.action, Action::Forward { .. }));
        first_costs.push(r.stats().total_cycles - before);
    }
    t.row(&[
        "first packet, flow #1".into(),
        first_costs[0].to_string(),
        "install(3) + search hit at slot 1 (8) + push(6) + unload(3)".into(),
    ]);
    t.row(&[
        "first packet, flow #8".into(),
        first_costs[7].to_string(),
        "install(3) + search hit at slot 8 (29) + push(6) + unload(3)".into(),
    ]);

    // Steady state: the same flows hit the cache at their slot position.
    let before = r.stats().total_cycles;
    let out = r.handle(packet_to(base + 1));
    assert!(matches!(out.action, Action::Forward { .. }));
    t.row(&[
        "steady state, flow #1 (hot slot)".into(),
        (r.stats().total_cycles - before).to_string(),
        "search hit at slot 1 + push + unload".into(),
    ]);
    let before = r.stats().total_cycles;
    r.handle(packet_to(base + 8));
    t.row(&[
        "steady state, flow #8 (cold slot)".into(),
        (r.stats().total_cycles - before).to_string(),
        "search hit at slot 8 + push + unload".into(),
    ]);
    println!("{}", t.render());
    println!(
        "insight: with a linear search, slot position is a latency knob — \
         3 extra cycles per slot. Hot flows belong early in the level.\n"
    );
}

fn clock_scaling() {
    println!("--- ablation 2: clock scaling ---\n");
    let mut t = MarkdownTable::new(&[
        "clock",
        "swap, n=16 (µs)",
        "swap, n=256 (µs)",
        "swap, n=1024 (µs)",
        "max packets/s @ n=16",
    ]);
    for (name, mhz) in [
        ("25 MHz", 25.0),
        ("50 MHz (paper)", 50.0),
        ("100 MHz", 100.0),
        ("200 MHz", 200.0),
    ] {
        let clock = ClockSpec {
            freq_hz: mhz * 1e6,
            device: "scaled",
        };
        let cost = |n: u64| {
            table6::USER_PUSH + table6::search_hit_at(n) + table6::SWAP_FROM_IB + table6::USER_POP
        };
        let us16 = clock.cycles_to_us(cost(16));
        t.row(&[
            name.into(),
            format!("{us16:.2}"),
            format!("{:.2}", clock.cycles_to_us(cost(256))),
            format!("{:.2}", clock.cycles_to_us(cost(1024))),
            format!("{:.0}", 1e6 / us16),
        ]);
    }
    println!("{}", t.render());
    println!(
        "insight: the architecture is memory-bound, not logic-bound — \
         every doubling of the clock halves latency uniformly because all \
         costs are cycle-counted.\n"
    );
}

fn php_ablation() {
    println!("--- ablation 3: penultimate-hop popping ---\n");
    let mut t = MarkdownTable::new(&[
        "variant",
        "egress cycles/packet",
        "penultimate cycles/packet",
    ]);

    for (label, php) in [("no PHP", false), ("PHP", true)] {
        let cp = plane(php);
        let lsp = cp.lsp(1).unwrap().clone();
        let mut penult = EmbeddedRouter::new(
            3,
            RouterRole::Lsr,
            &cp.config_for(3),
            ClockSpec::STRATIX_50MHZ,
        );
        let mut egress = EmbeddedRouter::new(
            1,
            RouterRole::Ler,
            &cp.config_for(1),
            ClockSpec::STRATIX_50MHZ,
        );
        // A labeled packet as it arrives at the penultimate hop.
        let mut p = packet_to(parse_addr("192.168.1.5").unwrap());
        let mut s = LabelStack::new();
        s.push_parts(lsp.hop_labels[1], CosBits::BEST_EFFORT, 62)
            .unwrap();
        p.splice_stack(s);
        let out = penult.handle(p);
        let Action::Forward { packet, .. } = out.action else {
            panic!("penultimate forwards");
        };
        let _ = egress.handle(packet);
        t.row(&[
            label.into(),
            egress.stats().total_cycles.to_string(),
            penult.stats().total_cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "insight: PHP moves the pop into the penultimate LSR and takes the \
         egress LER's modifier out of the forwarding path entirely (0 cycles)."
    );
}

fn main() {
    println!("=== Ablation studies ===\n");
    flow_cache_ablation();
    clock_scaling();
    php_ablation();
}
