//! EXT-15: production-scale streaming workloads.
//!
//! Synthesizes a fat tree and a ring of rings from compact parametric
//! specs, streams the full tunnel mesh + LSP bring-up through the
//! control plane (one request alive at a time — nothing is enumerated
//! ahead of signaling), then drives CBR probes over a sampled subset of
//! the LSPs under the shard × engine matrix.
//!
//! Certified per family:
//!
//! * **bring-up** — every tunnel and LSP signals; the hierarchical
//!   tunnel + PHP design costs exactly one fresh label per LSP, so a
//!   million LSPs fit one 2^20 label space.
//! * **conservation + quiesce** — every probe packet is delivered or
//!   attributed to a drop class by the horizon; nothing stays in
//!   flight.
//! * **identity** — the serialized report is byte-identical across
//!   shards {1, 4} under both the barrier and merge engines.
//!
//! Run: `cargo run --release -p mpls-bench --bin scale-stream`
//! (`--quick` for the CI smoke subset: ~256-node widths, 64k LSPs;
//! the default full config is the paper-scale point — a 1088-node fat
//! tree at one million LSPs. `--json <path>` writes the section as a
//! machine-readable trajectory point.)

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    println!(
        "=== EXT-15: streaming scale — fat tree + ring of rings, {} config ===\n",
        if quick { "quick" } else { "full (million-LSP)" }
    );
    let section = suite::ext15_scale(quick);
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(kb) = suite::peak_rss_kb() {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
