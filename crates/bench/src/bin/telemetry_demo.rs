//! EXT: telemetry walk-through — a congested Fig. 1 run with the metrics
//! registry on, printing what the instruments saw.
//!
//! A VoIP flow shares the ingress LER with near-line-rate bulk traffic;
//! the queue-depth series catches the congestion building, the per-LSP
//! histograms separate the victims, and the FSM cycle counters attribute
//! the forwarding work inside the embedded modifier.
//!
//! Run: `cargo run --release -p mpls-bench --bin telemetry_demo`

use mpls_bench::scenarios::{bulk_flow, figure1_with_lsp, voip_flow};
use mpls_bench::MarkdownTable;
use mpls_core::ClockSpec;
use mpls_net::{QueueDiscipline, RouterKind, Simulation, TelemetryConfig};

const RUN_NS: u64 = 50_000_000; // 50 ms

fn main() {
    let cp = figure1_with_lsp();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        42,
    );
    sim.add_flow(voip_flow(0, RUN_NS));
    // 1500 B on the wire every 11 µs ≈ 1.09 Gb/s offered onto a 1 Gb/s
    // link: the first-hop queue must build and tail-drop.
    sim.add_flow(bulk_flow("bulk", "192.168.1.20", 11_000, RUN_NS));
    let report = sim
        .with_telemetry(TelemetryConfig {
            sample_interval_ns: 50_000, // 20 kHz sampling
            ..TelemetryConfig::default()
        })
        .run(RUN_NS + 500_000_000);
    let tel = report.telemetry.as_ref().expect("telemetry enabled");

    println!("=== Telemetry walk-through: congested Fig. 1, 50 ms ===\n");

    println!("-- queue depth (packets), per sampled channel --\n");
    let mut t = MarkdownTable::new(&["channel", "samples", "mean", "peak"]);
    for s in &tel.series {
        let Some(chan) = s.name.strip_suffix(".queue_depth") else {
            continue;
        };
        if s.points.is_empty() {
            continue;
        }
        let mean = s.points.iter().map(|&(_, v)| v).sum::<f64>() / s.points.len() as f64;
        let peak = s.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        if peak == 0.0 {
            continue;
        }
        t.row(&[
            chan.to_string(),
            s.points.len().to_string(),
            format!("{mean:.2}"),
            format!("{peak:.0}"),
        ]);
    }
    println!("{}", t.render());

    println!("-- per-LSP latency (µs) --\n");
    let mut t = MarkdownTable::new(&["lsp", "deliveries", "p50 ≤", "p99 ≤", "max"]);
    for h in &tel.histograms {
        let Some(lsp) = h.name.strip_suffix(".delay_ns") else {
            continue;
        };
        t.row(&[
            lsp.to_string(),
            h.total.to_string(),
            format!("{:.0}", h.p50.unwrap_or(0) as f64 / 1e3),
            format!("{:.0}", h.p99.unwrap_or(0) as f64 / 1e3),
            format!("{:.0}", h.max.unwrap_or(0) as f64 / 1e3),
        ]);
    }
    println!("{}", t.render());

    println!("-- ingress LER (node 0) modifier FSM, cycles by state --\n");
    let mut fsm: Vec<(&str, f64)> = tel
        .counters
        .iter()
        .filter_map(|c| {
            c.name
                .strip_prefix("node0.fsm.")
                .map(|state| (state, c.value))
        })
        .filter(|&(_, v)| v > 0.0)
        .collect();
    fsm.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total: f64 = tel.counter("node0.router.total_cycles").unwrap_or(0.0);
    let mut t = MarkdownTable::new(&["state", "cycles", "share"]);
    for (state, cycles) in fsm.iter().take(10) {
        // Only the main FSM partitions the total; sub-FSM states overlap it.
        let share = if total > 0.0 { cycles / total } else { 0.0 };
        t.row(&[
            state.to_string(),
            format!("{cycles:.0}"),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    println!("{}", t.render());

    let depth = tel
        .histogram("node0.ib.search_depth")
        .expect("ingress search depths recorded");
    println!(
        "info-base searches at node 0: {} ({} hits, {} misses), depth p50 ≤ {}, max {}",
        depth.total,
        tel.counter("node0.ib.search_hits").unwrap_or(0.0),
        tel.counter("node0.ib.search_misses").unwrap_or(0.0),
        depth.p50.unwrap_or(0),
        depth.max.unwrap_or(0),
    );

    // The demo doubles as a smoke test of the scrape: congestion must be
    // visible in the series and the counters must reconcile.
    let voip = report.flow("voip").unwrap();
    assert_eq!(
        tel.counter("flow.voip.delivered"),
        Some(voip.delivered as f64)
    );
    assert!(
        tel.series
            .iter()
            .any(|s| s.name.ends_with(".queue_depth") && s.points.iter().any(|&(_, v)| v >= 2.0)),
        "bulk load should build visible queues"
    );
    println!("\ncounters reconcile with flow stats; queue buildup captured.");
}
