//! Regenerates paper Table 6 ("Processing times for different tasks") by
//! measuring every operation on the cycle-accurate model, and reproduces
//! the §4 worst-case composite (6167 cycles ≈ 0.123 ms at 50 MHz).
//!
//! Run: `cargo run -p mpls-bench --bin table6`

use mpls_bench::MarkdownTable;
use mpls_core::modifier::Outcome;
use mpls_core::{table6, ClockSpec, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

fn entry(label: u32, ttl: u8) -> LabelStackEntry {
    LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, ttl)
}

fn main() {
    let clock = ClockSpec::STRATIX_50MHZ;
    let mut t = MarkdownTable::new(&[
        "operation",
        "paper (worst-case cycles)",
        "measured",
        "match",
        "time @ 50 MHz",
    ]);
    let mut all_ok = true;
    let mut push_row = |name: &str, paper: u64, measured: u64| {
        let ok = paper == measured;
        all_ok &= ok;
        t.row(&[
            name.to_string(),
            paper.to_string(),
            measured.to_string(),
            if ok { "yes" } else { "NO" }.to_string(),
            format!("{:.2} µs", clock.cycles_to_us(measured)),
        ]);
    };

    // Reset.
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    push_row("reset", table6::RESET, m.reset().cycles);

    // User push / pop.
    push_row(
        "push from the user",
        table6::USER_PUSH,
        m.user_push(entry(7, 64)).cycles,
    );
    push_row("pop from the user", table6::USER_POP, m.user_pop().cycles);

    // Write label pair.
    push_row(
        "write label pair",
        table6::WRITE_PAIR,
        m.write_pair(Level::L2, 1, Label::new(500).unwrap(), IbOperation::Swap)
            .cycles,
    );

    // Search over a full level (n = 1024, worst case).
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..1024u64 {
        m.write_pair(
            Level::L2,
            i + 1,
            Label::new(i as u32).unwrap(),
            IbOperation::Swap,
        );
    }
    let miss = m.lookup(Level::L2, 0xF_FFFF);
    assert_eq!(miss.outcome, Outcome::LookupMiss);
    push_row(
        "search information base (n = 1024)",
        table6::search(1024),
        miss.cycles,
    );

    // Swap from the information base, isolated from the search.
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 42, Label::new(900).unwrap(), IbOperation::Swap);
    m.user_push(entry(42, 64));
    let upd = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        upd.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    push_row(
        "swap from the information base",
        table6::SWAP_FROM_IB,
        upd.cycles - table6::search_hit_at(1),
    );

    println!("=== Table 6: processing times for different tasks ===\n");
    println!("{}", t.render());

    // Worst-case composite of §4.
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let mut total = m.reset().cycles;
    for l in [1u32, 2, 1024] {
        total += m.user_push(entry(l, 64)).cycles;
    }
    for i in 0..1024u64 {
        total += m
            .write_pair(
                Level::L3,
                i + 1,
                Label::new(i as u32).unwrap(),
                IbOperation::Swap,
            )
            .cycles;
    }
    let swap = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        swap.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    total += swap.cycles;

    println!("worst case (reset + 3 pushes + 1024 writes + swap over full level):");
    println!("  measured : {total} cycles");
    println!("  paper    : 6167 cycles");
    println!(
        "  time     : {:.2} µs on {} (paper: ~0.123 ms)",
        clock.cycles_to_us(total),
        clock.device
    );
    assert_eq!(total, 6167);
    assert!(all_ok, "a Table 6 row diverged from the paper");
    println!("\nall rows match the paper -- OK");
}
