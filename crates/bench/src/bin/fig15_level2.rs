//! Regenerates paper Fig. 15: level-2 label pair writes (old labels 1–10
//! → new labels 500–509) followed by a lookup of label 5.
//!
//! Run: `cargo run -p mpls-bench --bin fig15_level2`

use mpls_bench::figure_print::print_figure_run;
use mpls_core::figures::figure15_level2;
use mpls_core::modifier::Outcome;
use mpls_core::IbOperation;
use mpls_packet::Label;

fn main() {
    let run = figure15_level2();
    print_figure_run("fig15", "simulation for level 2 label pair entries", &run);

    assert_eq!(
        run.lookup.outcome,
        Outcome::LookupHit {
            label: Label::new(504).unwrap(),
            op: IbOperation::Swap
        },
        "label 5 (slot 4) must yield label 504"
    );
    println!();
    println!("paper check: w_index/r_index iterate, lookup_done pulses, no discard -- OK");
}
