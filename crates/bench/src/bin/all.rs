//! `mpls-bench` — the whole standard benchmark suite in one command.
//!
//! Runs every trajectory experiment (EXT-10 shard scaling, EXT-11 LDP
//! convergence, EXT-12 fast-path throughput, EXT-15 streaming scale,
//! EXT-16 SR vs LDP, EXT-17 open- vs closed-loop traffic) at the
//! standard quick configs, prints each table, and — with
//! `--json <path>` — writes one combined `BENCH_<n>.json` trajectory
//! point including the process's peak resident set size:
//!
//! ```text
//! cargo run --release -p mpls-bench --bin mpls-bench -- --all --json BENCH_7.json
//! ```
//!
//! `--full` switches every section to its full (non-quick) config; the
//! committed trajectory files always use the quick configs so points
//! stay comparable PR over PR. The `bench-gate` binary consumes these
//! files and fails CI on a >10% events/s regression between the two
//! most recent points.

use mpls_bench::suite::{self, Section};
use serde::Value;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--all` is the documented spelling; it is also the only mode, so
    // its absence just means the caller typed less.
    let quick = !args.iter().any(|a| a == "--full");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "=== mpls-bench: full suite ({} configs, {} host core(s)) ===\n",
        if quick { "quick" } else { "full" },
        cores
    );

    let sections: Vec<Section> = vec![
        suite::ext10_scaling(quick),
        suite::ext11_convergence(quick),
        suite::ext12_throughput(quick),
        suite::ext15_scale(quick),
        suite::ext16_sr_vs_ldp(quick),
        suite::ext17_closed_loop(quick),
    ];
    for s in &sections {
        println!("--- {} ---\n", s.bench);
        println!("{}", s.table);
        for note in &s.notes {
            println!("{note}");
        }
        println!();
    }

    let peak_rss_kb = suite::peak_rss_kb();
    if let Some(kb) = peak_rss_kb {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    if let Some(path) = json_path {
        let doc = Value::Map(vec![
            ("bench".into(), Value::Str("all".into())),
            ("quick".into(), Value::Bool(quick)),
            (
                "peak_rss_kb".into(),
                peak_rss_kb.map_or(Value::Null, Value::U64),
            ),
            (
                "sections".into(),
                Value::Seq(sections.iter().map(Section::to_json).collect()),
            ),
        ]);
        let body = serde_json::to_string_pretty(&doc).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
