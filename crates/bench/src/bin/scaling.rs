//! Shard-scaling benchmark for the sharded discrete-event engine.
//!
//! A fixed 8×8 grid of 64 routers carries four corner-to-corner flows
//! while the same scenario runs at 1, 2, 4 and 8 shards. For every shard
//! count the report must serialize byte-identically to the sequential
//! baseline — sharding buys wall-clock time, never a different answer —
//! and the table records events/second and speedup so the scaling curve
//! can be read off directly.
//!
//! Run: `cargo run --release -p mpls-bench --bin scaling`

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use std::time::Instant;

const SIDE: u32 = 8;
const RUN_NS: u64 = 50_000_000;
const HORIZON_NS: u64 = RUN_NS + 20_000_000;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The four grid corners act as LERs; everything else switches labels.
const CORNERS: [u32; 4] = [0, SIDE - 1, (SIDE - 1) * SIDE, SIDE * SIDE - 1];

fn corner_prefix(i: usize) -> Prefix {
    Prefix::new(parse_addr(&format!("192.168.{}.0", i + 1)).unwrap(), 24)
}

/// 8×8 grid: node `r*SIDE + c`, links between horizontal and vertical
/// neighbors. The 10 µs link delay doubles as the engine's conservative
/// lookahead when the grid is cut into shards.
fn grid_control_plane() -> ControlPlane {
    let mut topo = Topology::new();
    for id in 0..SIDE * SIDE {
        let role = if CORNERS.contains(&id) {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("grid-{id}"));
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            let id = r * SIDE + c;
            for neighbor in [
                (c + 1 < SIDE).then(|| id + 1),
                (r + 1 < SIDE).then(|| id + SIDE),
            ]
            .into_iter()
            .flatten()
            {
                topo.add_link(LinkSpec {
                    a: id,
                    b: neighbor,
                    cost: 1,
                    bandwidth_bps: 1_000_000_000,
                    delay_ns: 10_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    for (i, &corner) in CORNERS.iter().enumerate() {
        cp.attach_prefix(corner, corner_prefix(i));
    }
    // Each corner sends to the diagonally opposite one, crossing the
    // whole grid (and every shard boundary the partitioner can draw).
    for (i, &corner) in CORNERS.iter().enumerate() {
        let peer = 3 - i;
        cp.establish_lsp(LspRequest::best_effort(
            corner,
            CORNERS[peer],
            corner_prefix(peer),
        ))
        .expect("grid LSP signals");
    }
    cp
}

fn flows() -> Vec<FlowSpec> {
    CORNERS
        .iter()
        .enumerate()
        .map(|(i, &corner)| {
            let peer = 3 - i;
            FlowSpec {
                name: format!("corner-{i}"),
                ingress: corner,
                src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
                dst_addr: parse_addr(&format!("192.168.{}.10", peer + 1)).unwrap(),
                payload_bytes: 500,
                precedence: 0,
                // Poisson keeps per-flow RNG streams busy so determinism
                // is exercised, not just asserted.
                pattern: TrafficPattern::Poisson {
                    mean_interval_ns: 8_000,
                },
                start_ns: 0,
                stop_ns: RUN_NS,
                police: None,
            }
        })
        .collect()
}

fn run_at(cp: &ControlPlane, shards: usize) -> (mpls_net::SimReport, f64) {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        7,
    );
    sim.set_shards(shards);
    for f in flows() {
        sim.add_flow(f);
    }
    let start = Instant::now();
    let report = sim.run(HORIZON_NS);
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "=== Engine shard scaling: 64-router grid, {} host core(s) ===\n",
        cores
    );

    let cp = grid_control_plane();
    let mut t = MarkdownTable::new(&[
        "shards",
        "effective",
        "lookahead µs",
        "epochs",
        "events",
        "wall ms",
        "events/s",
        "speedup",
    ]);

    let mut baseline_json = String::new();
    let mut baseline_secs = 0.0;
    for &shards in &SHARD_COUNTS {
        let (report, secs) = run_at(&cp, shards);
        let json = serde_json::to_string(&report).expect("report serializes");
        if shards == 1 {
            baseline_json = json.clone();
            baseline_secs = secs;
        }
        assert_eq!(
            baseline_json, json,
            "report at {shards} shards diverged from sequential"
        );
        let e = &report.engine;
        let events = e.total_events();
        t.row(&[
            shards.to_string(),
            e.shards.to_string(),
            e.lookahead_ns
                .map_or("-".into(), |ns| format!("{:.0}", ns as f64 / 1e3)),
            e.epochs.to_string(),
            events.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.0}", events as f64 / secs),
            format!("{:.2}x", baseline_secs / secs),
        ]);
    }
    println!("{}", t.render());
    println!(
        "all shard counts byte-identical to the sequential report -- OK\n\
         note: speedup tracks available host parallelism ({} core(s) here); \
         the determinism guarantee is what the table certifies on any host",
        cores
    );
}
