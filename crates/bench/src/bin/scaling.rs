//! Shard-scaling benchmark for the sharded discrete-event engine
//! (EXT-10).
//!
//! A fixed 8×8 grid of 64 routers with heterogeneous link delays
//! carries four corner-to-corner flows while the same scenario runs at
//! every shard count under both the barrier and the channel-merge
//! engine. For every cell the report must serialize byte-identically
//! to the sequential baseline — sharding buys wall-clock time, never a
//! different answer — and the table records events/second and speedup
//! so the scaling curve can be read off directly.
//!
//! Run: `cargo run --release -p mpls-bench --bin scaling`
//! (`--quick` for the CI smoke subset; `--json <path>` writes the
//! measurements as a trajectory section).

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "=== EXT-10: engine shard scaling, heterogeneous-delay 64-router grid, \
         {} host core(s) ===\n",
        cores
    );
    let section = suite::ext10_scaling(quick);
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
