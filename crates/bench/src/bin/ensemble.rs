//! Ensemble version of the EXT-3 QoS experiment: the VoIP-under-congestion
//! comparison repeated across random seeds in parallel (rayon), reported
//! as mean ± sample standard deviation. Confirms the single-seed numbers
//! in `qos_te` are not flukes.
//!
//! Run: `cargo run --release -p mpls-bench --bin ensemble`

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::sim::{ensemble_stat, run_ensemble};
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::CosBits;

const RUN_NS: u64 = 100_000_000;
const SEEDS: [u64; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

fn control_plane(te_voip: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    let mut req =
        LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.10").unwrap(), 32));
    req.cos = CosBits::EXPEDITED;
    if te_voip {
        req.explicit_route = Some(vec![0, 4, 5, 1]);
    }
    cp.establish_lsp(req).unwrap();
    cp
}

fn flows() -> Vec<FlowSpec> {
    vec![
        FlowSpec {
            name: "voip".into(),
            ingress: 0,
            src_addr: parse_addr("10.0.0.10").unwrap(),
            dst_addr: parse_addr("192.168.1.10").unwrap(),
            payload_bytes: 146,
            precedence: 5,
            // Poisson so seeds actually vary the arrival process.
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 2_000_000,
            },
            start_ns: 0,
            stop_ns: RUN_NS,
            police: None,
        },
        FlowSpec {
            name: "bulk".into(),
            ingress: 0,
            src_addr: parse_addr("10.0.0.20").unwrap(),
            dst_addr: parse_addr("192.168.1.20").unwrap(),
            payload_bytes: 1446,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 11_000,
            },
            start_ns: 0,
            stop_ns: RUN_NS,
            police: None,
        },
    ]
}

fn main() {
    println!(
        "=== Ensemble EXT-3: {} seeds in parallel per variant ===\n",
        SEEDS.len()
    );
    let mut t = MarkdownTable::new(&[
        "variant",
        "voip delay µs (mean ± sd)",
        "voip loss % (mean ± sd)",
    ]);

    let variants: [(&str, bool, QueueDiscipline); 3] = [
        ("shared+fifo", false, QueueDiscipline::Fifo { capacity: 64 }),
        (
            "shared+cos",
            false,
            QueueDiscipline::CosPriority { per_class: 64 },
        ),
        ("te-path+fifo", true, QueueDiscipline::Fifo { capacity: 64 }),
    ];

    let mut summaries = Vec::new();
    for (name, te, discipline) in variants {
        let cp = control_plane(te);
        let reports = run_ensemble(
            &cp,
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
            discipline,
            &flows(),
            RUN_NS + 50_000_000,
            &SEEDS,
        );
        let (d_mean, d_sd) = ensemble_stat(&reports, |r| {
            r.flow("voip").unwrap().mean_delay_ns() / 1000.0
        });
        let (l_mean, l_sd) =
            ensemble_stat(&reports, |r| r.flow("voip").unwrap().loss_rate() * 100.0);
        t.row(&[
            name.into(),
            format!("{d_mean:.1} ± {d_sd:.1}"),
            format!("{l_mean:.1} ± {l_sd:.1}"),
        ]);
        summaries.push((name, d_mean, l_mean));
    }
    println!("{}", t.render());

    let fifo = summaries[0];
    let cos = summaries[1];
    let te = summaries[2];
    assert!(cos.2 < fifo.2, "CoS must reduce VoIP loss on average");
    assert!(te.2 < fifo.2, "TE must reduce VoIP loss on average");
    assert!(cos.1 < fifo.1, "CoS must reduce VoIP delay on average");
    println!("conclusion: the single-seed EXT-3 ordering holds across the ensemble -- OK");
}
