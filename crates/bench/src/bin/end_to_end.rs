//! EXT-2: the Fig. 2 packet exchange, end to end — an ingress LER labels
//! layer-2 traffic, LSRs swap, the egress LER pops and delivers — with a
//! per-hop latency budget from the cycle-accurate routers.
//!
//! Run: `cargo run -p mpls-bench --bin end_to_end`

use mpls_bench::scenarios::figure1_with_lsp;
use mpls_bench::MarkdownTable;
use mpls_core::ClockSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;

fn main() {
    let cp = figure1_with_lsp();
    let lsp = cp.lsp(1).expect("scenario LSP").clone();
    println!("=== EXT-2: Fig. 2 packet exchange over the embedded routers ===\n");
    println!("LSP path : {:?}", lsp.path);
    println!(
        "labels   : {:?}",
        lsp.hop_labels.iter().map(|l| l.value()).collect::<Vec<_>>()
    );

    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        11,
    );
    sim.add_flow(FlowSpec {
        name: "app".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 512,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 1_000_000,
        },
        start_ns: 0,
        stop_ns: 100_000_000, // 100 ms -> 100 packets
        police: None,
    });
    let report = sim.run(1_000_000_000);
    let s = report.flow("app").unwrap();

    println!();
    let mut t = MarkdownTable::new(&["metric", "value"]);
    t.row(&["packets sent".into(), s.sent.to_string()]);
    t.row(&["packets delivered".into(), s.delivered.to_string()]);
    t.row(&["loss rate".into(), format!("{:.4}", s.loss_rate())]);
    t.row(&[
        "mean end-to-end delay".into(),
        format!("{:.1} µs", s.mean_delay_ns() / 1000.0),
    ]);
    t.row(&[
        "mean jitter".into(),
        format!("{:.1} ns", s.mean_jitter_ns()),
    ]);
    t.row(&[
        "throughput".into(),
        format!("{:.1} kb/s", s.throughput_bps() / 1000.0),
    ]);
    println!("{}", t.render());

    println!("per-hop data-plane budget (cycle-accurate):");
    let mut t = MarkdownTable::new(&[
        "node",
        "role",
        "packets",
        "total cycles",
        "mean ns/packet",
        "flow installs",
    ]);
    for node in [0u32, 2, 3, 1] {
        let rs = &report.routers[&node];
        let role = cp.topology().node(node).unwrap();
        t.row(&[
            role.name.clone(),
            format!("{:?}", role.role),
            rs.packets_in.to_string(),
            rs.total_cycles.to_string(),
            format!("{:.1}", rs.mean_latency_ns()),
            rs.flow_installs.to_string(),
        ]);
    }
    println!("{}", t.render());

    assert_eq!(s.delivered, s.sent, "lossless at this load");
    println!(
        "Fig. 2 exchange reproduced: label pushed, swapped, popped; all packets delivered -- OK"
    );
}
