//! Verifies the paper's §4 complexity claim: "information can be
//! retrieved from the [information base] in linear time and other
//! operations are done in constant time."
//!
//! Sweeps the level occupancy, measures search cycles on the model, fits
//! a line, and checks slope 3 / intercept 5; also shows the constant-time
//! operations staying flat.
//!
//! Run: `cargo run -p mpls-bench --bin search_scaling`

use mpls_bench::scenarios::loaded_modifier;
use mpls_bench::MarkdownTable;
use mpls_core::{table6, ClockSpec, Level};
use mpls_packet::CosBits;
use rayon::prelude::*;

fn main() {
    let clock = ClockSpec::STRATIX_50MHZ;
    let sizes: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

    // The sweep is embarrassingly parallel: one modifier per occupancy.
    let results: Vec<(u64, u64, u64)> = sizes
        .par_iter()
        .map(|&n| {
            let mut m = loaded_modifier(n, n + 1); // miss
            let miss = m.lookup(Level::L2, 0xF_FFFE).cycles;
            let mut m = loaded_modifier(n, n); // hit at the last slot
            let hit = m.update_stack(0, CosBits::BEST_EFFORT, 0).cycles - table6::SWAP_FROM_IB;
            (n, miss, hit)
        })
        .collect();

    let mut t = MarkdownTable::new(&[
        "n (pairs stored)",
        "miss cycles",
        "hit-at-n cycles",
        "3n + 5",
        "miss time @ 50 MHz",
    ]);
    for &(n, miss, hit) in &results {
        t.row(&[
            n.to_string(),
            miss.to_string(),
            hit.to_string(),
            table6::search(n).to_string(),
            format!("{:.2} µs", clock.cycles_to_us(miss)),
        ]);
    }
    println!("=== Search scaling: cycles vs information-base occupancy ===\n");
    println!("{}", t.render());

    // Least-squares fit over the miss costs.
    let n = results.len() as f64;
    let sx: f64 = results.iter().map(|r| r.0 as f64).sum();
    let sy: f64 = results.iter().map(|r| r.1 as f64).sum();
    let sxx: f64 = results.iter().map(|r| (r.0 * r.0) as f64).sum();
    let sxy: f64 = results.iter().map(|r| (r.0 * r.1) as f64).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    println!("least-squares fit: cycles = {slope:.4} * n + {intercept:.4}");
    assert!((slope - 3.0).abs() < 1e-9, "slope must be exactly 3");
    assert!(
        (intercept - 5.0).abs() < 1e-9,
        "intercept must be exactly 5"
    );

    // Constant-time operations stay flat regardless of occupancy.
    let mut t = MarkdownTable::new(&["n", "user push", "user pop", "write pair"]);
    for &n in &[1u64, 64, 1024] {
        let mut m = loaded_modifier(n, 1);
        let pop = m.user_pop().cycles; // drain the preloaded entry
        let push = m
            .user_push(mpls_packet::label::LabelStackEntry::from_bits(0x00001140))
            .cycles;
        let write = m
            .write_pair(
                Level::L3,
                9,
                mpls_packet::Label::new(9).unwrap(),
                mpls_core::IbOperation::Swap,
            )
            .cycles;
        t.row(&[
            n.to_string(),
            push.to_string(),
            pop.to_string(),
            write.to_string(),
        ]);
    }
    println!("\n=== Constant-time operations vs occupancy ===\n");
    println!("{}", t.render());
    println!("claim verified: search is linear (3n + 5), other operations constant -- OK");
}
