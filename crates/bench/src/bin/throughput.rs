//! EXT-12: fast-path throughput — hash FIB + flow cache vs the linear
//! info-base.
//!
//! A 64-router grid is loaded with hundreds of LSPs per corner pair so
//! every transit node's level-2 table is deep, then the traffic is aimed
//! at the *last* LSP signaled — the binding a linear scan finds at the
//! highest rank. The same scenario runs with the linear-scan software
//! router and with the fast path (open-addressed hash FIB reporting
//! canonical linear-equivalent probe counts, plus a per-ingress flow
//! cache), with telemetry enabled.
//!
//! Two things are certified:
//!
//! * **Identity** — the serialized `SimReport` (telemetry export
//!   included) is byte-identical between the linear and fast paths,
//!   with the cache on or off, at 1, 2 and 4 shards. The fast path buys
//!   host wall-clock only; the simulated answer cannot move.
//! * **Throughput** — the table records host events/second for each
//!   configuration; the fast path's advantage grows with table depth.
//!
//! Run: `cargo run --release -p mpls-bench --bin throughput`
//! (`--quick` for the CI smoke subset: shallower tables, shorter run;
//! `--json <path>` additionally writes the measurements as a
//! machine-readable trajectory point, e.g. the committed `BENCH_6.json`).

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, SimReport, Simulation, TelemetryConfig};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use serde::Serialize;
use std::time::Instant;

/// One measured configuration, as written to the `--json` trajectory
/// file (`BENCH_<n>.json`). Wall-clock figures are host-dependent; the
/// events count is deterministic and doubles as a sanity anchor when
/// comparing points across machines.
#[derive(Serialize)]
struct JsonRow {
    lookup: String,
    cache: String,
    shards: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

/// The whole trajectory point: enough metadata that a later CI gate can
/// refuse to compare measurements taken under different configs.
#[derive(Serialize)]
struct JsonReport {
    bench: &'static str,
    quick: bool,
    lsps_per_pair: u32,
    run_ns: u64,
    rows: Vec<JsonRow>,
}

const SIDE: u32 = 8;
const CORNERS: [u32; 4] = [0, SIDE - 1, (SIDE - 1) * SIDE, SIDE * SIDE - 1];

/// Pair `i`, LSP `k` → `10.(100 + 16i + k/256).(k%256).0/24`: each pair
/// owns sixteen second-octet blocks, so up to 4096 LSPs per pair fit
/// without collisions.
fn prefix(pair: usize, k: u32) -> mpls_dataplane::ftn::Prefix {
    mpls_dataplane::ftn::Prefix::new(
        parse_addr(&format!(
            "10.{}.{}.0",
            100 + pair * 16 + (k / 256) as usize,
            k % 256
        ))
        .unwrap(),
        24,
    )
}

/// The 8×8 grid with `lsps_per_pair` parallel LSPs signaled for each
/// diagonal corner pair. Every LSP carries a distinct /24, so each adds
/// one binding to every node on its path — the knob that sets the
/// linear info-base's depth.
fn grid_control_plane(lsps_per_pair: u32) -> ControlPlane {
    let mut topo = Topology::new();
    for id in 0..SIDE * SIDE {
        let role = if CORNERS.contains(&id) {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("grid-{id}"));
    }
    for r in 0..SIDE {
        for c in 0..SIDE {
            let id = r * SIDE + c;
            for neighbor in [
                (c + 1 < SIDE).then(|| id + 1),
                (r + 1 < SIDE).then(|| id + SIDE),
            ]
            .into_iter()
            .flatten()
            {
                topo.add_link(LinkSpec {
                    a: id,
                    b: neighbor,
                    cost: 1,
                    bandwidth_bps: 1_000_000_000,
                    delay_ns: 10_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    for (i, &corner) in CORNERS.iter().enumerate() {
        let dst = CORNERS[3 - i];
        for k in 0..lsps_per_pair {
            cp.attach_prefix(dst, prefix(i, k));
            cp.establish_lsp(LspRequest::best_effort(corner, dst, prefix(i, k)))
                .expect("grid LSP signals");
        }
    }
    cp
}

/// One flow per corner pair, aimed at the pair's *last* signaled LSP —
/// the worst case for a linear scan, the same case as any other for the
/// hash FIB.
fn flows(lsps_per_pair: u32, run_ns: u64) -> Vec<FlowSpec> {
    CORNERS
        .iter()
        .enumerate()
        .map(|(i, &corner)| FlowSpec {
            name: format!("corner-{i}"),
            ingress: corner,
            src_addr: parse_addr(&format!("10.0.{i}.1")).unwrap(),
            dst_addr: parse_addr(&format!(
                "10.{}.{}.5",
                100 + i * 16 + ((lsps_per_pair - 1) / 256) as usize,
                (lsps_per_pair - 1) % 256
            ))
            .unwrap(),
            payload_bytes: 500,
            precedence: 0,
            pattern: TrafficPattern::Poisson {
                mean_interval_ns: 10_000,
            },
            start_ns: 0,
            stop_ns: run_ns,
            police: None,
        })
        .collect()
}

fn run_at(
    cp: &ControlPlane,
    kind: RouterKind,
    shards: usize,
    lsps_per_pair: u32,
    run_ns: u64,
) -> (SimReport, f64) {
    let mut sim = Simulation::build(cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 7);
    sim.set_shards(shards);
    for f in flows(lsps_per_pair, run_ns) {
        sim.add_flow(f);
    }
    let sim = sim.with_telemetry(TelemetryConfig {
        sample_interval_ns: 1_000_000,
        ..TelemetryConfig::default()
    });
    let start = Instant::now();
    let report = sim.run(run_ns + 20_000_000);
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let lsps_per_pair: u32 = if quick { 32 } else { 4096 };
    let run_ns: u64 = if quick { 5_000_000 } else { 30_000_000 };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let timing = SwTimingModel::default();
    println!(
        "=== EXT-12: hash-FIB fast path vs linear info-base, 64-router grid, \
         {} LSPs/pair ===\n",
        lsps_per_pair
    );

    let cp = grid_control_plane(lsps_per_pair);
    let mut t = MarkdownTable::new(&[
        "lookup",
        "cache",
        "shards",
        "events",
        "wall ms",
        "events/s",
        "vs linear",
    ]);

    let mut baseline_json = String::new();
    let mut linear_eps = 0.0;
    let mut fast_eps_1shard = 0.0;
    let mut json_rows = Vec::new();
    let variants: Vec<(&str, &str, RouterKind)> = vec![
        ("linear", "-", RouterKind::SoftwareLinear { timing }),
        (
            "hash",
            "off",
            RouterKind::SoftwareFast {
                timing,
                cache: false,
            },
        ),
        (
            "hash",
            "on",
            RouterKind::SoftwareFast {
                timing,
                cache: true,
            },
        ),
    ];
    for (lookup, cache, kind) in variants {
        // The linear baseline only runs sequentially (it is the slow
        // side being measured, not the one under test for sharding).
        let counts: &[usize] = if lookup == "linear" {
            &shard_counts[..1]
        } else {
            shard_counts
        };
        for &shards in counts {
            let (report, secs) = run_at(&cp, kind, shards, lsps_per_pair, run_ns);
            let json = serde_json::to_string(&report).expect("report serializes");
            if baseline_json.is_empty() {
                baseline_json = json.clone();
            }
            assert_eq!(
                baseline_json, json,
                "{lookup} (cache {cache}, {shards} shard(s)) diverged from the linear baseline"
            );
            let events = report.engine.total_events();
            let eps = events as f64 / secs;
            if lookup == "linear" {
                linear_eps = eps;
            }
            if lookup == "hash" && cache == "on" && shards == 1 {
                fast_eps_1shard = eps;
            }
            t.row(&[
                lookup.to_string(),
                cache.to_string(),
                shards.to_string(),
                events.to_string(),
                format!("{:.1}", secs * 1e3),
                format!("{:.0}", eps),
                format!("{:.2}x", eps / linear_eps),
            ]);
            json_rows.push(JsonRow {
                lookup: lookup.to_string(),
                cache: cache.to_string(),
                shards,
                events,
                wall_ms: secs * 1e3,
                events_per_sec: eps,
            });
        }
    }
    println!("{}", t.render());
    let ratio = fast_eps_1shard / linear_eps;
    println!(
        "reports byte-identical across lookup strategy, cache setting and shard count -- OK\n\
         fast path (cache on, 1 shard) vs linear: {ratio:.2}x events/s"
    );
    if !quick && ratio < 3.0 {
        println!("warning: expected >= 3x on a deep table; host noise or shallow tables?");
    }
    if let Some(path) = json_path {
        let report = JsonReport {
            bench: "ext12-throughput",
            quick,
            lsps_per_pair,
            run_ns,
            rows: json_rows,
        };
        let body = serde_json::to_string_pretty(&report).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
