//! EXT-12: fast-path throughput — hash FIB + flow cache vs the linear
//! info-base.
//!
//! A 64-router grid is loaded with hundreds of LSPs per corner pair so
//! every transit node's level-2 table is deep, then the traffic is aimed
//! at the *last* LSP signaled — the binding a linear scan finds at the
//! highest rank. The same scenario runs with the linear-scan software
//! router and with the fast path (open-addressed hash FIB reporting
//! canonical linear-equivalent probe counts, plus a per-ingress flow
//! cache), with telemetry enabled; the fast path is additionally
//! measured under the channel-merge engine.
//!
//! Two things are certified:
//!
//! * **Identity** — the serialized `SimReport` (telemetry export
//!   included) is byte-identical between the linear and fast paths,
//!   with the cache on or off, under both engines, at every shard
//!   count. The fast path buys host wall-clock only; the simulated
//!   answer cannot move.
//! * **Throughput** — the table records host events/second for each
//!   configuration; the fast path's advantage grows with table depth.
//!
//! Run: `cargo run --release -p mpls-bench --bin throughput`
//! (`--quick` for the CI smoke subset: shallower tables, shorter run;
//! `--json <path>` additionally writes the measurements as a
//! machine-readable trajectory point, e.g. the committed `BENCH_6.json`).

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let section = suite::ext12_throughput(quick);
    let lsps = section
        .config
        .iter()
        .find_map(|(k, v)| match v {
            serde::Value::U64(n) if k == "lsps_per_pair" => Some(*n),
            _ => None,
        })
        .unwrap_or(0);
    println!(
        "=== EXT-12: hash-FIB fast path vs linear info-base, 64-router grid, \
         {lsps} LSPs/pair ===\n"
    );
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
