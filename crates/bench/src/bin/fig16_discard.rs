//! Regenerates paper Fig. 16: a lookup of label 27 among stored labels
//! 1–10 — the search exhausts the level and raises `lookup_done` together
//! with `packetdiscard`, leaving the outputs unchanged.
//!
//! Run: `cargo run -p mpls-bench --bin fig16_discard`

use mpls_bench::figure_print::print_figure_run;
use mpls_core::figures::figure16_discard;
use mpls_core::modifier::Outcome;

fn main() {
    let run = figure16_discard();
    print_figure_run("fig16", "simulation for packet discard", &run);

    assert_eq!(run.lookup.outcome, Outcome::LookupMiss);
    assert_eq!(run.lookup.cycles, 35, "miss over 10 pairs: 3*10 + 5");
    let done = run.trace.find("lookup_done").unwrap();
    let discard = run.trace.find("packetdiscard").unwrap();
    assert_eq!(
        run.trace.first_cycle_where(done, 1),
        run.trace.first_cycle_where(discard, 1),
        "lookup_done and packetdiscard must rise together"
    );
    println!();
    println!(
        "paper check: r_index sweeps all pairs; done + discard raised; outputs unchanged -- OK"
    );
}
