//! EXT-9: failover economics — how fast must failure detection be, and
//! what does 1:1 path protection buy over head-end restoration?
//!
//! One CBR flow rides the figure-1 fast northern path (0-2-3-1). The
//! core link 2-3 fails mid-run and is repaired later. The sweep crosses
//! detection delay {100 µs, 1 ms, 5 ms, 20 ms} with the recovery mode:
//!
//! * `protection`  — a link-disjoint backup LSP is pre-signaled at
//!   setup; on detection the head end switches to it immediately;
//! * `restoration` — the head end re-signals a replacement LSP after
//!   detection (one extra signaling round trip of loss).
//!
//! Run: `cargo run -p mpls-bench --bin failover`

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, SimReport, Simulation,
};
use mpls_packet::ipv4::parse_addr;

const RUN_NS: u64 = 200_000_000; // 200 ms
const DOWN_NS: u64 = 50_000_000;
const UP_NS: u64 = 120_000_000;
const INTERVAL_NS: u64 = 100_000; // 10k pkt/s CBR probe

fn flow() -> FlowSpec {
    FlowSpec {
        name: "probe".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.10").unwrap(),
        dst_addr: parse_addr("192.168.1.10").unwrap(),
        payload_bytes: 500,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: INTERVAL_NS,
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn run(mode: RecoveryMode, detection_delay_ns: u64) -> SimReport {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    let lsp = cp
        .establish_lsp(LspRequest::best_effort(
            0,
            1,
            Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
        ))
        .unwrap();
    if mode == RecoveryMode::Protection {
        cp.protect_lsp(lsp).expect("disjoint backup exists");
    }
    let core = cp.topology().link_between(2, 3).unwrap();

    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        42,
    );
    let mut plan = FaultPlan::new(RestorationPolicy {
        detection_delay_ns,
        resignal_delay_ns: 1_000_000,
        mode,
        ..RestorationPolicy::default()
    });
    plan.outage(core, DOWN_NS, UP_NS);
    sim.set_fault_plan(plan);
    sim.add_flow(flow());
    sim.run(RUN_NS + 50_000_000)
}

fn main() {
    println!("=== EXT-9: detection delay x protection vs restoration ===\n");
    println!(
        "figure-1 topology, CBR probe at {} pkt/s, link 2-3 down {}-{} ms\n",
        1_000_000_000 / INTERVAL_NS,
        DOWN_NS / 1_000_000,
        UP_NS / 1_000_000
    );

    let detections: [u64; 4] = [100_000, 1_000_000, 5_000_000, 20_000_000];
    let mut t = MarkdownTable::new(&[
        "mode",
        "detection",
        "pkts lost",
        "time to restore (ms)",
        "loss %",
    ]);
    let mut losses: Vec<(RecoveryMode, u64, u64)> = Vec::new();
    for mode in [RecoveryMode::Protection, RecoveryMode::Restoration] {
        for &d in &detections {
            let report = run(mode, d);
            let s = report.flow("probe").unwrap();
            assert_eq!(
                s.sent,
                s.delivered + s.router_dropped + s.queue_dropped + s.link_dropped,
                "conservation violated at {mode:?}/{d}"
            );
            let rec = &report.faults[0];
            let ttr = rec
                .time_to_restore_ns()
                .expect("fast path comes back before horizon");
            t.row(&[
                format!("{mode:?}").to_lowercase(),
                format!("{} µs", d / 1000),
                format!("{}", rec.packets_lost),
                format!("{:.2}", ttr as f64 / 1e6),
                format!("{:.2}", s.loss_rate() * 100.0),
            ]);
            losses.push((mode, d, rec.packets_lost));
        }
    }
    println!("{}", t.render());

    for &d in &detections {
        let p = losses
            .iter()
            .find(|(m, dd, _)| *m == RecoveryMode::Protection && *dd == d)
            .unwrap()
            .2;
        let r = losses
            .iter()
            .find(|(m, dd, _)| *m == RecoveryMode::Restoration && *dd == d)
            .unwrap()
            .2;
        assert!(
            p < r,
            "protection ({p} lost) must beat restoration ({r} lost) at detection {d} ns"
        );
    }
    println!("observations:");
    println!("  - loss scales with detection delay: packets keep draining into");
    println!("    the dead link until the control plane notices;");
    println!("  - protection always beats restoration by one signaling round");
    println!("    trip of traffic (the re-signal latency);");
    println!("  - after repair + hold-down the flow is loss-free again.");
    println!("\nfailover claims hold -- OK");
}
