//! EXT-16: segment routing vs LDP on the same fat tree.
//!
//! One LDP leg and SR legs over max push depth {3, 6, 12} × RLD
//! {2, 6} on a 36-node fat tree with cross-pod flows and a mid-run
//! link cut. The section asserts per-flow conservation and serialized
//! report byte-identity across shards {1, 4} × {barrier, merge} for
//! every SR configuration, then tables state footprint, bring-up and
//! reconvergence, peak stack depth, ECMP and RLD-violation counts,
//! and events/s.
//!
//! Run: `cargo run --release -p mpls-bench --bin sr-vs-ldp`
//! (`--quick` for the CI smoke horizon; `--json <path>` writes the
//! section as a machine-readable trajectory point.)

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    println!(
        "=== EXT-16: SR vs LDP — state, convergence, stack-depth cost, {} config ===\n",
        if quick { "quick" } else { "full" }
    );
    let section = suite::ext16_sr_vs_ldp(quick);
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(kb) = suite::peak_rss_kb() {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
