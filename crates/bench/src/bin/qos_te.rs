//! EXT-3: the paper's §1 motivation, quantified — "resource intensive
//! Internet applications like voice over Internet Protocol (VoIP) ...
//! perform poorly when the core network of the Internet is relatively
//! congested", and MPLS answers with CoS scheduling and traffic-
//! engineered explicit paths.
//!
//! Three variants of the same workload (a VoIP flow sharing an ingress
//! with a bulk flow that saturates the fast core path):
//!
//! * `shared+fifo`    — both flows on the shortest path, FIFO queues
//!   (plain best-effort IP behaviour);
//! * `shared+cos`     — same paths, CoS strict-priority queues (the label
//!   CoS bits doing their job);
//! * `te-path+fifo`   — the VoIP LSP pinned to the uncongested southern
//!   route by an explicit CR-LDP-style route (traffic engineering).
//!
//! Run: `cargo run -p mpls-bench --bin qos_te`

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LspRequest, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, SimReport, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::CosBits;

const RUN_NS: u64 = 200_000_000; // 200 ms

fn control_plane(te_voip: bool) -> ControlPlane {
    let mut cp = ControlPlane::new(Topology::figure1_example());
    // Bulk FEC rides the shortest (northern) path.
    cp.establish_lsp(LspRequest::best_effort(
        0,
        1,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    // VoIP host FEC: expedited CoS; optionally pinned to the south.
    let mut req =
        LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.10").unwrap(), 32));
    req.cos = CosBits::EXPEDITED;
    if te_voip {
        req.explicit_route = Some(vec![0, 4, 5, 1]);
    }
    cp.establish_lsp(req).unwrap();
    cp
}

fn voip() -> FlowSpec {
    FlowSpec {
        name: "voip".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.10").unwrap(),
        dst_addr: parse_addr("192.168.1.10").unwrap(),
        payload_bytes: 146,
        precedence: 5,
        pattern: TrafficPattern::Cbr {
            interval_ns: 2_000_000, // a 100-call trunk: 200 B every 2 ms
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn bulk() -> FlowSpec {
    FlowSpec {
        name: "bulk".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.20").unwrap(),
        dst_addr: parse_addr("192.168.1.20").unwrap(),
        payload_bytes: 1446,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 11_000, // ~1.1 Gb/s offered onto 1 Gb/s links
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn run(te_voip: bool, discipline: QueueDiscipline) -> SimReport {
    let cp = control_plane(te_voip);
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        discipline,
        1234,
    );
    sim.add_flow(voip());
    sim.add_flow(bulk());
    sim.run(RUN_NS + 50_000_000)
}

fn main() {
    println!("=== EXT-3: VoIP under congestion — FIFO vs CoS vs TE ===\n");
    let variants: Vec<(&str, SimReport)> = vec![
        (
            "shared+fifo",
            run(false, QueueDiscipline::Fifo { capacity: 64 }),
        ),
        (
            "shared+cos",
            run(false, QueueDiscipline::CosPriority { per_class: 64 }),
        ),
        (
            "te-path+fifo",
            run(true, QueueDiscipline::Fifo { capacity: 64 }),
        ),
    ];

    let mut t = MarkdownTable::new(&[
        "variant",
        "voip delay (µs)",
        "voip jitter (µs)",
        "voip loss",
        "bulk goodput (Mb/s)",
        "bulk loss",
    ]);
    for (name, report) in &variants {
        let v = report.flow("voip").unwrap();
        let b = report.flow("bulk").unwrap();
        t.row(&[
            name.to_string(),
            format!("{:.1}", v.mean_delay_ns() / 1000.0),
            format!("{:.2}", v.mean_jitter_ns() / 1000.0),
            format!("{:.3}", v.loss_rate()),
            format!("{:.1}", b.throughput_bps() / 1e6),
            format!("{:.3}", b.loss_rate()),
        ]);
    }
    println!("{}", t.render());

    let fifo_voip = variants[0].1.flow("voip").unwrap();
    let cos_voip = variants[1].1.flow("voip").unwrap();
    let te_voip = variants[2].1.flow("voip").unwrap();

    println!("observations:");
    println!(
        "  - FIFO under congestion: VoIP delay {:.1} µs, loss {:.1}%",
        fifo_voip.mean_delay_ns() / 1000.0,
        fifo_voip.loss_rate() * 100.0
    );
    println!(
        "  - CoS priority protects VoIP delay ({:.1}x better than FIFO)",
        fifo_voip.mean_delay_ns() / cos_voip.mean_delay_ns().max(1.0)
    );
    println!(
        "  - TE path trades propagation delay for zero queueing (loss {:.1}%)",
        te_voip.loss_rate() * 100.0
    );

    assert!(
        cos_voip.mean_delay_ns() < fifo_voip.mean_delay_ns(),
        "CoS priority must beat FIFO for VoIP under congestion"
    );
    assert!(
        cos_voip.loss_rate() <= fifo_voip.loss_rate(),
        "CoS priority must not lose more VoIP than FIFO"
    );
    assert_eq!(te_voip.loss_rate(), 0.0, "uncongested TE path is lossless");
    println!("\nQoS/TE claims hold -- OK");
}
