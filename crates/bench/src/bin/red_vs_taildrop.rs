//! EXT-4 (queueing): congestion avoidance — Random Early Detection vs
//! tail drop under sustained overload, the "congestion avoidance" QoS
//! function of the paper's §1.
//!
//! With a tail-drop FIFO, the queue sits full: every delivered packet
//! carries the maximum queueing delay and drops arrive in bursts. RED
//! sheds load early, trading a slightly higher drop count for a much
//! shorter standing queue (lower delay at equal goodput).
//!
//! Run: `cargo run --release -p mpls-bench --bin red_vs_taildrop`

use mpls_bench::scenarios::figure1_with_lsp;
use mpls_bench::MarkdownTable;
use mpls_core::ClockSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, SimReport, Simulation};
use mpls_packet::ipv4::parse_addr;

const RUN_NS: u64 = 200_000_000;

fn overload_flow() -> FlowSpec {
    FlowSpec {
        name: "load".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 1446,
        precedence: 0,
        // ~1.2 Gb/s Poisson onto 1 Gb/s links.
        pattern: TrafficPattern::Poisson {
            mean_interval_ns: 10_000,
        },
        start_ns: 0,
        stop_ns: RUN_NS,
        police: None,
    }
}

fn run(discipline: QueueDiscipline) -> SimReport {
    let cp = figure1_with_lsp();
    let mut sim = Simulation::build(
        &cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        discipline,
        42,
    );
    sim.add_flow(overload_flow());
    sim.run(RUN_NS + 200_000_000)
}

fn main() {
    println!("=== Congestion avoidance: RED vs tail drop under 1.2x overload ===\n");

    let variants: Vec<(&str, QueueDiscipline)> = vec![
        ("tail-drop (64)", QueueDiscipline::Fifo { capacity: 64 }),
        (
            "RED 16/48 @ 20%",
            QueueDiscipline::Red {
                capacity: 64,
                min_th: 16,
                max_th: 48,
                max_p_percent: 20,
            },
        ),
        (
            "RED 8/32 @ 50%",
            QueueDiscipline::Red {
                capacity: 64,
                min_th: 8,
                max_th: 32,
                max_p_percent: 50,
            },
        ),
    ];

    let mut t = MarkdownTable::new(&[
        "queue",
        "goodput (Mb/s)",
        "loss %",
        "delay p50 (µs)",
        "delay p99 (µs)",
        "jitter (µs)",
    ]);
    let mut rows = Vec::new();
    for (name, d) in variants {
        let report = run(d);
        let s = report.flow("load").unwrap();
        let (p50, _, p99) = s.delay_hist.percentiles();
        t.row(&[
            name.into(),
            format!("{:.1}", s.throughput_bps() / 1e6),
            format!("{:.1}", s.loss_rate() * 100.0),
            format!("{:.1}", p50 / 1000.0),
            format!("{:.1}", p99 / 1000.0),
            format!("{:.2}", s.mean_jitter_ns() / 1000.0),
        ]);
        rows.push((name, s.throughput_bps(), p50));
    }
    println!("{}", t.render());

    let (_, tail_goodput, tail_p50) = rows[0];
    let (_, red_goodput, red_p50) = rows[1];
    assert!(
        red_p50 < tail_p50,
        "RED must shorten the standing queue (p50 {red_p50} vs {tail_p50})"
    );
    assert!(
        red_goodput > tail_goodput * 0.95,
        "RED must not sacrifice goodput materially"
    );
    println!(
        "conclusion: RED cuts the median queueing delay {:.1}x while keeping \
         goodput within {:.1}% of tail drop.",
        tail_p50 / red_p50,
        (1.0 - red_goodput / tail_goodput).abs() * 100.0
    );
}
