//! Regenerates paper Fig. 14: level-1 label pair writes (packet ids
//! 600–609 → labels 500–509) followed by a lookup of packet id 604.
//!
//! Run: `cargo run -p mpls-bench --bin fig14_level1`

use mpls_bench::figure_print::print_figure_run;
use mpls_core::figures::figure14_level1;
use mpls_core::modifier::Outcome;
use mpls_core::IbOperation;
use mpls_packet::Label;

fn main() {
    let run = figure14_level1();
    print_figure_run("fig14", "simulation for level 1 label pair entries", &run);

    // The paper's stated observations, checked live:
    assert_eq!(
        run.lookup.outcome,
        Outcome::LookupHit {
            label: Label::new(504).unwrap(),
            op: IbOperation::Swap
        },
        "packet id 604 must yield label 504, operation 3 (swap)"
    );
    assert_eq!(run.lookup.cycles, 20, "hit at position 5: 3*5 + 5");
    println!();
    println!("paper check: label_out = 504, operation_out = 3, packetdiscard low  -- OK");
}
