//! EXT-17: open- vs closed-loop traffic through a fault window.
//!
//! Four sources on the figure-1 plane, run open-loop (rate-matched
//! Poisson) and closed-loop (AIMD windows, ack-clocked, bounded-Pareto
//! transfers, ECN marks), each with and without a mid-run cut of the
//! northern link. The section asserts per-flow conservation with
//! retransmissions accounted, the visible AIMD reaction (window cuts
//! and retransmits only in the faulted closed-loop leg, deliveries
//! past restoration), and serialized report byte-identity across
//! shards {1, 4} × {barrier, merge} for every leg. The table reads off
//! goodput, flow-completion times, ECN/retransmit counts, peak window,
//! and SLA violations.
//!
//! Run: `cargo run --release -p mpls-bench --bin closed-loop`
//! (`--quick` for the CI smoke horizon; `--json <path>` writes the
//! section as a machine-readable trajectory point.)

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    println!(
        "=== EXT-17: open- vs closed-loop traffic across a fault window, {} config ===\n",
        if quick { "quick" } else { "full" }
    );
    let section = suite::ext17_closed_loop(quick);
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(kb) = suite::peak_rss_kb() {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
