//! EXT-1: the comparison the paper motivates but never quantifies —
//! the embedded hardware data plane against the all-software baseline.
//!
//! For one label swap at increasing information-base occupancy `n`:
//!
//! * hardware: exact model cycles converted at the 50 MHz Stratix clock
//!   (load 3 + search 3k+5 + swap 6 + unload 3, worst-case hit k = n);
//! * software (linear): the same algorithm on the calibrated software
//!   timing model;
//! * software (hash): the optimized software forwarder.
//!
//! Run: `cargo run -p mpls-bench --bin hw_vs_sw`

use mpls_bench::MarkdownTable;
use mpls_core::{table6, ClockSpec};
use mpls_dataplane::fib::FibLevel;
use mpls_dataplane::{
    HashTable, LinearTable, LookupStrategy, ProcessResult, SoftwareForwarder, SwRouterType,
};
use mpls_packet::{CosBits, Label, LabelStack};
use std::time::Instant;

/// Per-packet hardware cost for a swap whose search hits at position `k`:
/// stack load + update + stack unload (see `mpls-router::embedded`).
fn hw_cycles(k: u64) -> u64 {
    table6::USER_PUSH + table6::search_hit_at(k) + table6::SWAP_FROM_IB + table6::USER_POP
}

/// Software timing model (see `mpls-router::software` defaults).
const SW_PER_PACKET_NS: u64 = 500;
const SW_PER_PROBE_NS: u64 = 35;

fn sw_process_ns<S: LookupStrategy>(n: u64) -> (u64, f64) {
    let mut f: SoftwareForwarder<S> = SoftwareForwarder::new(SwRouterType::Lsr);
    for i in 0..n {
        f.bind(
            FibLevel::L2,
            i + 1,
            Label::new(500).unwrap(),
            mpls_dataplane::LabelOp::Swap,
        );
    }
    // Worst case: the packet's label matches the last-inserted pair.
    let mut stack = LabelStack::new();
    stack
        .push_parts(Label::new(n as u32).unwrap(), CosBits::BEST_EFFORT, 200)
        .unwrap();

    let before = f.total_probes();
    let mut s = stack.clone();
    let r = f.process(&mut s, 0, CosBits::BEST_EFFORT, 0);
    assert!(matches!(r, ProcessResult::Updated { .. }));
    let probes = f.total_probes() - before;
    let modeled = SW_PER_PACKET_NS + probes * SW_PER_PROBE_NS;

    // Host-measured, for reference (not the simulation's clock).
    let iters = 2000;
    let start = Instant::now();
    for i in 0..iters {
        let mut s = stack.clone();
        s.swap(Label::new((n as u32) % Label::MAX.max(1)).unwrap())
            .ok();
        let mut s = stack.clone();
        // Re-run the full process; TTL is large enough to survive iters.
        let _ = f.process(&mut s, i, CosBits::BEST_EFFORT, 0);
    }
    let host = start.elapsed().as_nanos() as f64 / iters as f64;
    (modeled, host)
}

fn main() {
    let clock = ClockSpec::STRATIX_50MHZ;
    let mut t = MarkdownTable::new(&[
        "n (pairs)",
        "HW @50 MHz (ns)",
        "SW linear model (ns)",
        "SW hash model (ns)",
        "SW linear host (ns)",
        "SW hash host (ns)",
        "winner (modeled)",
    ]);

    let mut crossover: Option<u64> = None;
    for &n in &[1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let hw_ns = (clock.cycles_to_us(hw_cycles(n)) * 1000.0) as u64;
        let (lin_model, lin_host) = sw_process_ns::<LinearTable>(n);
        let (hash_model, hash_host) = sw_process_ns::<HashTable>(n);
        let winner = if hw_ns <= hash_model.min(lin_model) {
            "hardware"
        } else if hash_model <= lin_model {
            "sw hash"
        } else {
            "sw linear"
        };
        if winner != "hardware" && crossover.is_none() {
            crossover = Some(n);
        }
        t.row(&[
            n.to_string(),
            hw_ns.to_string(),
            lin_model.to_string(),
            hash_model.to_string(),
            format!("{lin_host:.0}"),
            format!("{hash_host:.0}"),
            winner.to_string(),
        ]);
    }

    println!("=== EXT-1: hardware offload vs software forwarding (one swap) ===\n");
    println!("{}", t.render());
    match crossover {
        Some(n) => println!(
            "crossover: the hardware's linear search loses to the software hash \
             baseline from roughly n = {n} pairs onward — the architecture wins \
             on small tables and deterministic latency, not on asymptotics."
        ),
        None => println!("hardware won at every measured occupancy."),
    }
}
