//! EXT-11: LDP convergence — how long does in-band label distribution
//! take to settle, and how fast does it reroute around a dead link?
//!
//! Grid topologies (LERs in opposite corners, one LSP each way) are
//! brought up cold under `--control ldp`: every adjacency, session, and
//! binding is learned over the simulated wire. The sweep crosses grid
//! size with the session hold time (hello interval = hold / 3):
//!
//! * bring-up  — time from t=0 until the last FIB write (the control
//!   plane's own convergence span);
//! * fault     — link 0-1 is cut mid-run; detection is the hold-timer
//!   expiry, reconvergence the end of the withdraw/remap wave, and the
//!   CBR probe's losses bound the blackout window.
//!
//! Run: `cargo run -p mpls-bench --bin convergence` (`--quick` for the
//! CI smoke subset: smallest grid, default timers; `--json <path>`
//! writes the sweep as a machine-readable trajectory section).

use mpls_bench::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    println!("=== EXT-11: LDP bring-up and reconvergence vs grid size x hold time ===\n");
    println!("corner-to-corner grids, hello = hold/3, link 0-1 cut mid-run, CBR probe\n");
    let section = suite::ext11_convergence(quick);
    println!("{}", section.table);
    for note in &section.notes {
        println!("{note}");
    }
    if let Some(path) = json_path {
        let body =
            serde_json::to_string_pretty(&section.to_json()).expect("bench report serializes");
        std::fs::write(&path, body + "\n").expect("bench json written");
        println!("wrote {path}");
    }
}
