//! EXT-11: LDP convergence — how long does in-band label distribution
//! take to settle, and how fast does it reroute around a dead link?
//!
//! Grid topologies (LERs in opposite corners, one LSP each way) are
//! brought up cold under `--control ldp`: every adjacency, session, and
//! binding is learned over the simulated wire. The sweep crosses grid
//! size with the session hold time (hello interval = hold / 3):
//!
//! * bring-up  — time from t=0 until the last FIB write (the control
//!   plane's own convergence span);
//! * fault     — link 0-1 is cut mid-run; detection is the hold-timer
//!   expiry, reconvergence the end of the withdraw/remap wave, and the
//!   CBR probe's losses bound the blackout window.
//!
//! Run: `cargo run -p mpls-bench --bin convergence` (`--quick` for the
//! CI smoke subset: smallest grid, default timers).

use mpls_bench::MarkdownTable;
use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{FaultPlan, LdpConfig, QueueDiscipline, RouterKind, SimReport, Simulation};
use mpls_packet::ipv4::parse_addr;

const DOWN_NS: u64 = 20_000_000;
const INTERVAL_NS: u64 = 100_000; // 10k pkt/s CBR probe
const HORIZON_NS: u64 = 90_000_000;

fn grid_plane(rows: u32, cols: u32) -> ControlPlane {
    let last = rows * cols - 1;
    let mut topo = Topology::new();
    for id in 0..=last {
        let role = if id == 0 || id == last {
            RouterRole::Ler
        } else {
            RouterRole::Lsr
        };
        topo.add_node(id, role, format!("n{id}"));
    }
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            for next in [
                (c + 1 < cols).then(|| id + 1),
                (r + 1 < rows).then(|| id + cols),
            ]
            .into_iter()
            .flatten()
            {
                topo.add_link(LinkSpec {
                    a: id,
                    b: next,
                    cost: 1 + ((id as u64 * 13 + next as u64 * 5) % 3) as u32,
                    bandwidth_bps: 200_000_000,
                    delay_ns: 20_000,
                });
            }
        }
    }
    let mut cp = ControlPlane::new(topo);
    cp.attach_prefix(last, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
    cp.attach_prefix(0, Prefix::new(parse_addr("10.1.0.0").unwrap(), 16));
    cp.establish_lsp(LspRequest::best_effort(
        0,
        last,
        Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
    ))
    .unwrap();
    cp.establish_lsp(LspRequest::best_effort(
        last,
        0,
        Prefix::new(parse_addr("10.1.0.0").unwrap(), 16),
    ))
    .unwrap();
    cp
}

fn build(cp: &ControlPlane, hold_ns: u64) -> Simulation {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        42,
    );
    sim.enable_ldp(LdpConfig {
        hello_interval_ns: hold_ns / 3,
        hold_ns,
        ..LdpConfig::default()
    });
    sim
}

/// Cold bring-up with no traffic: the report's convergence span is the
/// whole story.
fn run_bringup(cp: &ControlPlane, hold_ns: u64) -> SimReport {
    build(cp, hold_ns).run(30_000_000)
}

/// Permanent cut of link 0-1 at `DOWN_NS` under a CBR probe.
fn run_fault(cp: &ControlPlane, hold_ns: u64) -> SimReport {
    let mut sim = build(cp, hold_ns);
    let cut = cp.topology().link_between(0, 1).unwrap();
    let mut plan = FaultPlan::default();
    plan.link_down(DOWN_NS, cut);
    sim.set_fault_plan(plan);
    sim.add_flow(FlowSpec {
        name: "probe".into(),
        ingress: 0,
        src_addr: parse_addr("10.1.0.5").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 400,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: INTERVAL_NS,
        },
        start_ns: 10_000_000,
        stop_ns: 60_000_000,
        police: None,
    });
    sim.run(HORIZON_NS)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("=== EXT-11: LDP bring-up and reconvergence vs grid size x hold time ===\n");
    println!(
        "corner-to-corner grids, hello = hold/3, link 0-1 cut at {} ms, CBR probe at {} pkt/s\n",
        DOWN_NS / 1_000_000,
        1_000_000_000 / INTERVAL_NS
    );

    let grids: &[(u32, u32)] = if quick {
        &[(2, 2)]
    } else {
        &[(2, 2), (3, 3), (3, 4)]
    };
    let holds: &[u64] = if quick {
        &[3_500_000]
    } else {
        &[2_000_000, 3_500_000, 7_000_000]
    };

    let mut t = MarkdownTable::new(&[
        "grid",
        "hold (ms)",
        "bring-up (ms)",
        "detection (ms)",
        "reconverge (ms)",
        "pkts lost",
        "PDUs sent",
    ]);
    let mut detections: Vec<((u32, u32), u64, u64)> = Vec::new();
    for &(rows, cols) in grids {
        let cp = grid_plane(rows, cols);
        for &hold in holds {
            let up = run_bringup(&cp, hold);
            assert_eq!(up.control.mode, "ldp");
            let bringup = up
                .control
                .convergence_ns
                .expect("fault-free bring-up settles");
            assert_eq!(up.control.session_downs, 0, "sessions flapped at bring-up");
            assert_eq!(
                up.control.pdus_lost, 0,
                "control PDUs lost on healthy links"
            );

            let report = run_fault(&cp, hold);
            let s = report.flow("probe").unwrap();
            assert_eq!(
                s.sent,
                s.delivered + s.link_dropped + s.router_dropped + s.queue_dropped + s.loss_dropped,
                "conservation violated at {rows}x{cols}/hold {hold}"
            );
            let rec = &report.faults[0];
            let det = rec.detected_ns.expect("hold expiry detects the cut") - rec.down_ns;
            let reconverge = rec.restored_ns.expect("withdraw wave settles") - rec.down_ns;
            assert!(
                det <= 2 * hold,
                "detection {det} ns exceeds two hold times ({hold} ns)"
            );
            assert!(reconverge >= det, "cannot reroute before detecting");
            t.row(&[
                format!("{rows}x{cols}"),
                format!("{:.1}", hold as f64 / 1e6),
                format!("{:.2}", bringup as f64 / 1e6),
                format!("{:.2}", det as f64 / 1e6),
                format!("{:.2}", reconverge as f64 / 1e6),
                format!("{}", rec.packets_lost),
                format!("{}", report.control.pdus_sent),
            ]);
            detections.push(((rows, cols), hold, det));
        }
    }
    println!("{}", t.render());

    // Detection is a timer property, not a topology property: for every
    // grid it sits inside [hold - hello, hold + hello] — one hold time
    // after the last hello that arrived before the cut.
    for &(grid, hold, det) in &detections {
        let hello = hold / 3;
        assert!(
            det >= hold - hello && det <= hold + hello,
            "detection {det} ns outside [{}, {}] ns at {grid:?}",
            hold - hello,
            hold + hello
        );
    }
    for &(rows, cols) in grids {
        let mut per_grid: Vec<u64> = detections
            .iter()
            .filter(|(g, _, _)| *g == (rows, cols))
            .map(|&(_, _, d)| d)
            .collect();
        let sorted = {
            let mut s = per_grid.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(
            per_grid, sorted,
            "detection not monotone in hold at {rows}x{cols}"
        );
        per_grid.dedup();
        assert_eq!(per_grid.len(), holds.len(), "hold sweep collapsed");
    }

    println!("observations:");
    println!("  - bring-up is wave-propagation bound: a few hello intervals to");
    println!("    form sessions, then one ordered-distribution sweep per FEC;");
    println!("  - detection tracks the hold timer (one hold after the last");
    println!("    pre-cut hello), independent of grid size;");
    println!("  - reconvergence adds the withdraw/remap wave on top of");
    println!("    detection, so probe loss is dominated by the timer choice.");
    println!("\nconvergence claims hold -- OK");
}
