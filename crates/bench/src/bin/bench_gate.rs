//! `bench-gate` — the trajectory regression gate.
//!
//! Finds the two most recent `BENCH_<n>.json` files in a directory
//! (default `.`), matches their measurement rows, and fails when any
//! matched row's `events_per_sec` dropped by more than the threshold
//! (default 10%). Trajectory files are only comparable when taken on
//! the same class of machine — CI measures and gates within one job,
//! so both points come from the same runner generation.
//!
//! ```text
//! cargo run --release -p mpls-bench --bin bench-gate -- [dir] \
//!     [--max-regress 10] [--md comment.md]
//! ```
//!
//! `--md <path>` additionally writes the base-vs-head comparison as a
//! markdown fragment — the table CI posts as a PR comment.
//!
//! A file is either one section (`{"bench": ..., rows: [...]}`, the
//! standalone `--json` shape) or a combined suite document
//! (`{"bench": "all", "sections": [...]}`). Rows are keyed by their
//! section's bench id + config plus every row field that is not a
//! measurement (`events`, `wall_ms`, `events_per_sec`), so points taken
//! under different configs never get compared; rows present in only
//! one file are reported and skipped — schema growth is not a failure.

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Measurement fields: excluded from row keys, compared instead.
const MEASUREMENTS: [&str; 3] = ["events", "wall_ms", "events_per_sec"];

/// Renders a scalar for use in a row key; `None` for nested values.
fn scalar(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::U64(n) => Some(n.to_string()),
        Value::I64(n) => Some(n.to_string()),
        Value::F64(x) => Some(format!("{x}")),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

/// A numeric field as f64, whichever integer or float variant the
/// parser produced.
fn number(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Flattens a trajectory document into `key -> events_per_sec`.
/// Rows without an `events_per_sec` field (e.g. EXT-11's convergence
/// spans, which are simulated-time, not host-time) carry no key.
fn flatten(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let sections: Vec<&Value> = match doc.get("sections") {
        Some(Value::Seq(s)) => s.iter().collect(),
        _ => vec![doc],
    };
    for section in sections {
        let Some(fields) = section.as_map() else {
            continue;
        };
        let mut prefix: Vec<String> = Vec::new();
        for (k, v) in fields {
            if k == "rows" || k == "peak_rss_kb" {
                continue;
            }
            if let Some(s) = scalar(v) {
                prefix.push(format!("{k}={s}"));
            }
        }
        let Some(Value::Seq(rows)) = section.get("rows") else {
            continue;
        };
        for row in rows {
            let Some(row) = row.as_map() else { continue };
            let Some(eps) = Value::get_entry(row, "events_per_sec").and_then(number) else {
                continue;
            };
            let mut key = prefix.clone();
            for (k, v) in row {
                if MEASUREMENTS.contains(&k.as_str()) {
                    continue;
                }
                if let Some(s) = scalar(v) {
                    key.push(format!("{k}={s}"));
                }
            }
            out.insert(key.join(","), eps);
        }
    }
    out
}

/// `BENCH_<n>.json` files in `dir`, sorted by `n`.
fn trajectory_files(dir: &str) -> Vec<(u64, std::path::PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((n, entry.path()));
    }
    found.sort();
    found
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = ".".to_string();
    let mut max_regress_pct = 10.0;
    let mut md_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --max-regress needs a percentage");
                    return ExitCode::from(2);
                };
                max_regress_pct = v;
            }
            "--md" => {
                let Some(path) = it.next() else {
                    eprintln!("error: --md needs a path");
                    return ExitCode::from(2);
                };
                md_path = Some(path.clone());
            }
            other => dir = other.to_string(),
        }
    }

    let files = trajectory_files(&dir);
    if files.len() < 2 {
        println!(
            "bench-gate: {} trajectory file(s) in {dir} — need two to compare, passing",
            files.len()
        );
        return ExitCode::SUCCESS;
    }
    let (prev_n, prev_path) = &files[files.len() - 2];
    let (curr_n, curr_path) = &files[files.len() - 1];
    let load = |path: &std::path::Path| -> Value {
        let body = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        serde_json::from_str(&body)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
    };
    let prev = flatten(&load(prev_path));
    let curr = flatten(&load(curr_path));
    println!(
        "bench-gate: BENCH_{prev_n} -> BENCH_{curr_n}, {} vs {} measured rows, \
         threshold {max_regress_pct}%",
        prev.len(),
        curr.len()
    );

    let mut compared = Vec::new();
    let mut fresh = Vec::new();
    let mut regressions = Vec::new();
    for (key, &old_eps) in &prev {
        let Some(&new_eps) = curr.get(key) else {
            println!("  skipped (gone): {key}");
            continue;
        };
        let delta_pct = (new_eps - old_eps) / old_eps * 100.0;
        println!(
            "  {key}: {:.0} -> {:.0} events/s ({delta_pct:+.1}%)",
            old_eps, new_eps
        );
        if delta_pct < -max_regress_pct {
            regressions.push(format!("{key}: {delta_pct:.1}%"));
        }
        compared.push((key.clone(), old_eps, new_eps, delta_pct));
    }
    for (key, &eps) in &curr {
        if !prev.contains_key(key) {
            println!("  new (unmatched): {key}");
            fresh.push((key.clone(), eps));
        }
    }

    if let Some(path) = &md_path {
        let md = render_md(
            *prev_n,
            *curr_n,
            max_regress_pct,
            &compared,
            &fresh,
            &regressions,
        );
        std::fs::write(path, md).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if compared.is_empty() {
        println!("bench-gate: no comparable rows (schema change?) — passing with a warning");
        return ExitCode::SUCCESS;
    }
    if regressions.is_empty() {
        println!(
            "bench-gate: {} row(s) compared, no regression beyond {max_regress_pct}% -- OK",
            compared.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-gate: events/s regressed beyond {max_regress_pct}% on {} row(s):",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}

/// The base-vs-head comparison as a GitHub-flavored markdown fragment —
/// what CI posts as the PR comment. Keys are long `k=v` chains, so the
/// per-row table splits the section prefix from the row fields.
fn render_md(
    prev_n: u64,
    curr_n: u64,
    max_regress_pct: f64,
    compared: &[(String, f64, f64, f64)],
    fresh: &[(String, f64)],
    regressions: &[String],
) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "### Bench gate: `BENCH_{prev_n}` (base) vs `BENCH_{curr_n}` (head)\n\n"
    ));
    let verdict = if compared.is_empty() {
        "⚠️ no comparable rows (schema change) — passing with a warning".to_string()
    } else if regressions.is_empty() {
        format!(
            "✅ {} row(s) compared, none regressed beyond {max_regress_pct}%",
            compared.len()
        )
    } else {
        format!(
            "❌ {} of {} row(s) regressed beyond {max_regress_pct}%",
            regressions.len(),
            compared.len()
        )
    };
    md.push_str(&verdict);
    md.push_str("\n\n");
    if !compared.is_empty() {
        md.push_str("| row | base events/s | head events/s | Δ |\n");
        md.push_str("|---|---:|---:|---:|\n");
        for (key, old, new, delta) in compared {
            let mark = if *delta < -max_regress_pct {
                " ❌"
            } else {
                ""
            };
            md.push_str(&format!(
                "| `{key}` | {old:.0} | {new:.0} | {delta:+.1}%{mark} |\n"
            ));
        }
        md.push('\n');
    }
    if !fresh.is_empty() {
        md.push_str("<details><summary>New rows (no base point)</summary>\n\n");
        md.push_str("| row | head events/s |\n|---|---:|\n");
        for (key, eps) in fresh {
            md.push_str(&format!("| `{key}` | {eps:.0} |\n"));
        }
        md.push_str("\n</details>\n");
    }
    md
}
