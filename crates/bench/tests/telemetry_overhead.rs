//! Guard for the telemetry overhead contract: a `NoopSink` simulation
//! must cost essentially nothing over the pre-telemetry baseline, because
//! every record site is behind `if S::ENABLED` with `S::ENABLED == false`
//! a compile-time constant.
//!
//! Wall-clock comparisons on shared CI hardware are noisy, so the timing
//! check compares min-of-N medians with a generous margin and the
//! structural checks (zero-sized sink, identical simulation outcomes) do
//! the precise work.

use mpls_bench::scenarios::figure1_with_lsp;
use mpls_core::ClockSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{
    NoopSink, QueueDiscipline, RouterKind, SimReport, Simulation, TelemetryConfig, TelemetrySink,
};
use mpls_packet::ipv4::parse_addr;
use std::time::Instant;

fn flow() -> FlowSpec {
    FlowSpec {
        name: "cbr".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 512,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 20_000,
        },
        start_ns: 0,
        stop_ns: 10_000_000, // 500 packets over 10 ms
        police: None,
    }
}

fn run_noop(cp: &mpls_control::ControlPlane) -> SimReport {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        1,
    );
    sim.add_flow(flow());
    sim.run(100_000_000)
}

fn run_telemetry(cp: &mpls_control::ControlPlane) -> SimReport {
    let mut sim = Simulation::build(
        cp,
        RouterKind::Embedded {
            clock: ClockSpec::STRATIX_50MHZ,
        },
        QueueDiscipline::Fifo { capacity: 64 },
        1,
    );
    sim.add_flow(flow());
    sim.with_telemetry(TelemetryConfig::default())
        .run(100_000_000)
}

/// The structural half of the contract: the sink is a zero-sized type and
/// disabled at the type level, so record sites guarded by `S::ENABLED`
/// compile to nothing.
#[test]
fn noop_sink_is_zero_sized_and_disabled() {
    assert_eq!(std::mem::size_of::<NoopSink>(), 0);
    const { assert!(!NoopSink::ENABLED) }
}

/// Telemetry must observe, never perturb: identical seeds give identical
/// flow outcomes with and without a live registry.
#[test]
fn telemetry_does_not_change_simulation_outcomes() {
    let cp = figure1_with_lsp();
    let plain = run_noop(&cp);
    let instrumented = run_telemetry(&cp);
    let p = plain.flow("cbr").unwrap();
    let t = instrumented.flow("cbr").unwrap();
    assert_eq!(p.sent, t.sent);
    assert_eq!(p.delivered, t.delivered);
    assert_eq!(p.delay_sum_ns, t.delay_sum_ns);
    assert_eq!(p.jitter_sum_ns, t.jitter_sum_ns);
    // The instrumented run's clock may end slightly later (its final
    // periodic sample event), but never earlier.
    assert!(instrumented.elapsed_ns >= plain.elapsed_ns);
    assert!(plain.telemetry.is_none());
    assert!(instrumented.telemetry.is_some());
}

/// The timing half: a noop run must not be measurably slower than a
/// telemetry-enabled run. (If the `S::ENABLED` guards were broken and
/// noop paid for sampling anyway, the two would converge from the wrong
/// side; the margin keeps shared-runner noise from flaking the build.)
#[test]
fn noop_run_is_not_slower_than_telemetry_run() {
    let cp = figure1_with_lsp();
    // Warm up caches and the allocator before timing anything.
    run_noop(&cp);
    run_telemetry(&cp);

    let min_of = |f: &dyn Fn() -> SimReport| {
        (0..7)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let noop = min_of(&|| run_noop(&cp));
    let telemetry = min_of(&|| run_telemetry(&cp));
    // 1.25x margin: the enabled run does strictly more work (periodic
    // sampling events, counter updates, end-of-run scrape), so noop
    // should come in at or below it even on a noisy machine.
    assert!(
        noop.as_nanos() as f64 <= telemetry.as_nanos() as f64 * 1.25,
        "noop run ({noop:?}) slower than telemetry run ({telemetry:?}): \
         the zero-cost guards look broken"
    );
}
