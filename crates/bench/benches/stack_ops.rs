//! Micro-benchmarks of the wire formats and stack primitives: these are
//! the per-packet fixed costs of any software MPLS implementation.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use mpls_packet::{
    label::LabelStackEntry, CosBits, EtherType, EthernetFrame, Ipv4Header, Label, LabelStack,
    MacAddr, MplsPacket,
};
use std::hint::black_box;

fn sample_packet() -> MplsPacket {
    let mut p = MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(1, 0),
            src: MacAddr::from_node(2, 0),
            ethertype: EtherType::Ipv4,
        },
        Ipv4Header::new(0x0a000001, 0xc0a80105, Ipv4Header::PROTO_UDP, 64, 512),
        Bytes::from(vec![0u8; 512]),
    );
    let mut s = LabelStack::new();
    s.push_parts(Label::new(100).unwrap(), CosBits::BEST_EFFORT, 64)
        .unwrap();
    s.push_parts(Label::new(200).unwrap(), CosBits::EXPEDITED, 64)
        .unwrap();
    p.splice_stack(s);
    p
}

fn bench_stack_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_ops");

    g.bench_function("entry_encode_decode", |b| {
        let e = LabelStackEntry::new(Label::new(0xABCDE).unwrap(), CosBits::EXPEDITED, true, 17);
        b.iter(|| {
            let bits = black_box(e).to_bits();
            black_box(LabelStackEntry::from_bits(bits))
        });
    });

    g.bench_function("stack_push_swap_pop", |b| {
        let mut s = LabelStack::new();
        b.iter(|| {
            s.push_parts(Label::new(100).unwrap(), CosBits::BEST_EFFORT, 64)
                .unwrap();
            s.swap(Label::new(200).unwrap()).unwrap();
            black_box(s.pop().unwrap())
        });
    });

    g.bench_function("packet_serialize", |b| {
        let p = sample_packet();
        b.iter(|| black_box(p.to_bytes().unwrap()));
    });

    g.bench_function("packet_parse", |b| {
        let bytes = sample_packet().to_bytes().unwrap();
        b.iter(|| black_box(MplsPacket::from_bytes(&bytes).unwrap()));
    });

    g.finish();
}

criterion_group!(benches, bench_stack_ops);
criterion_main!(benches);
