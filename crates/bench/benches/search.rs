//! Search scaling: host cost of the simulated hardware search (which the
//! model executes in 3n+5 simulated cycles) against the software lookup
//! strategies on identical occupancies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpls_bench::scenarios::loaded_modifier;
use mpls_core::Level;
use mpls_dataplane::lookup::{HashTable, LinearTable, LookupStrategy};
use mpls_dataplane::LabelBinding;
use mpls_packet::Label;
use std::hint::black_box;

fn binding() -> LabelBinding {
    LabelBinding::new(Label::new(1).unwrap(), mpls_dataplane::LabelOp::Swap)
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    for &n in &[16u64, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("hw_model_miss", n), &n, |b, &n| {
            let mut m = loaded_modifier(n, n + 1);
            m.user_pop(); // drain the scenario's preloaded stack entry
            b.iter(|| black_box(m.lookup(Level::L2, 0xF_FFFE).cycles));
        });

        g.bench_with_input(BenchmarkId::new("sw_linear_miss", n), &n, |b, &n| {
            let mut t = LinearTable::default();
            for i in 0..n {
                t.insert(i + 1, binding());
            }
            b.iter(|| black_box(t.get(0xF_FFFE)));
        });

        g.bench_with_input(BenchmarkId::new("sw_hash_miss", n), &n, |b, &n| {
            let mut t = HashTable::default();
            for i in 0..n {
                t.insert(i + 1, binding());
            }
            b.iter(|| black_box(t.get(0xF_FFFE)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
