//! Whole-simulation benchmark: a CBR flow through the Fig. 1 network for
//! a fixed simulated horizon, once per router kind. Measures simulator
//! throughput (host time per simulated run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpls_bench::scenarios::figure1_with_lsp;
use mpls_core::ClockSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation, TelemetryConfig};
use mpls_packet::ipv4::parse_addr;
use mpls_router::SwTimingModel;
use std::hint::black_box;

fn flow() -> FlowSpec {
    FlowSpec {
        name: "cbr".into(),
        ingress: 0,
        src_addr: parse_addr("10.0.0.1").unwrap(),
        dst_addr: parse_addr("192.168.1.5").unwrap(),
        payload_bytes: 512,
        precedence: 0,
        pattern: TrafficPattern::Cbr {
            interval_ns: 100_000,
        },
        start_ns: 0,
        stop_ns: 10_000_000, // 100 packets over 10 ms
        police: None,
    }
}

fn bench_forwarding(c: &mut Criterion) {
    let cp = figure1_with_lsp();
    let mut g = c.benchmark_group("simulation_10ms");

    let kinds: Vec<(&str, RouterKind)> = vec![
        (
            "embedded",
            RouterKind::Embedded {
                clock: ClockSpec::STRATIX_50MHZ,
            },
        ),
        (
            "software_hash",
            RouterKind::SoftwareHash {
                timing: SwTimingModel::default(),
            },
        ),
        (
            "software_linear",
            RouterKind::SoftwareLinear {
                timing: SwTimingModel::default(),
            },
        ),
    ];

    for (name, kind) in kinds {
        g.bench_with_input(BenchmarkId::new(name, 1), &kind, |b, &kind| {
            b.iter(|| {
                let mut sim =
                    Simulation::build(&cp, kind, QueueDiscipline::Fifo { capacity: 64 }, 1);
                sim.add_flow(flow());
                let report = sim.run(100_000_000);
                assert_eq!(report.flow("cbr").unwrap().delivered, 100);
                black_box(report.queue_drops)
            });
        });
    }

    // The telemetry overhead contract: "embedded" above is the NoopSink
    // baseline; this variant pays for a live registry. Comparing the two
    // bounds the cost of enabling metrics; `tests/telemetry_overhead.rs`
    // guards the zero-cost side (noop == uninstrumented).
    g.bench_function(BenchmarkId::new("embedded_telemetry", 1), |b| {
        b.iter(|| {
            let mut sim = Simulation::build(
                &cp,
                RouterKind::Embedded {
                    clock: ClockSpec::STRATIX_50MHZ,
                },
                QueueDiscipline::Fifo { capacity: 64 },
                1,
            );
            sim.add_flow(flow());
            let report = sim
                .with_telemetry(TelemetryConfig::default())
                .run(100_000_000);
            assert_eq!(report.flow("cbr").unwrap().delivered, 100);
            black_box(report.telemetry.is_some())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
