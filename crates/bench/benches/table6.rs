//! Criterion bench over the Table 6 operations: host-side cost of
//! simulating each hardware operation (the authoritative *cycle* numbers
//! come from `cargo run -p mpls-bench --bin table6`; this measures how
//! fast the model itself runs).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpls_core::{IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};
use std::hint::black_box;

fn entry(label: u32) -> LabelStackEntry {
    LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, 64)
}

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");

    g.bench_function("reset", |b| {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        b.iter(|| black_box(m.reset()));
    });

    g.bench_function("user_push_pop", |b| {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        b.iter(|| {
            m.user_push(black_box(entry(42)));
            black_box(m.user_pop())
        });
    });

    g.bench_function("write_pair_x64", |b| {
        b.iter_batched(
            || LabelStackModifier::new(RouterType::Lsr),
            |mut m| {
                for i in 0..64u64 {
                    m.write_pair(Level::L2, i, Label::new(1).unwrap(), IbOperation::Swap);
                }
                black_box(m.total_cycles())
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("swap_hit_first", |b| {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        m.write_pair(Level::L2, 7, Label::new(7).unwrap(), IbOperation::Swap);
        b.iter(|| {
            m.user_push(entry(7));
            let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
            m.user_pop();
            black_box(r.cycles)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
