//! Router-level comparison: one transit packet through the embedded
//! router (cycle-accurate model) vs the software routers, measured in
//! host time. The *simulated* latencies are reported by
//! `cargo run -p mpls-bench --bin hw_vs_sw`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpls_bench::scenarios::figure1_with_lsp;
use mpls_core::ClockSpec;
use mpls_packet::{CosBits, EtherType, EthernetFrame, Ipv4Header, LabelStack, MacAddr, MplsPacket};
use mpls_router::{Action, EmbeddedRouter, MplsForwarder, SoftwareRouter, SwTimingModel};
use std::hint::black_box;

fn transit_packet(cp: &mpls_control::ControlPlane) -> MplsPacket {
    let lsp = cp.lsp(1).unwrap();
    let mut p = MplsPacket::ipv4(
        EthernetFrame {
            dst: MacAddr::from_node(2, 0),
            src: MacAddr::from_node(0, 0),
            ethertype: EtherType::Ipv4,
        },
        Ipv4Header::new(0x0a000001, 0xc0a80105, Ipv4Header::PROTO_UDP, 200, 256),
        bytes::Bytes::from(vec![0u8; 256]),
    );
    let mut s = LabelStack::new();
    s.push_parts(lsp.hop_labels[0], CosBits::BEST_EFFORT, 200)
        .unwrap();
    p.splice_stack(s);
    p
}

fn bench_routers(c: &mut Criterion) {
    let cp = figure1_with_lsp();
    let cfg = cp.config_for(2);
    let role = mpls_control::RouterRole::Lsr;
    let packet = transit_packet(&cp);

    let mut g = c.benchmark_group("router_transit");

    g.bench_with_input(BenchmarkId::new("embedded", 1), &(), |b, _| {
        let mut r = EmbeddedRouter::new(2, role, &cfg, ClockSpec::STRATIX_50MHZ);
        b.iter(|| {
            let out = r.handle(black_box(packet.clone()));
            assert!(matches!(out.action, Action::Forward { .. }));
            black_box(out.latency_ns)
        });
    });

    g.bench_with_input(BenchmarkId::new("software_hash", 1), &(), |b, _| {
        let mut r: SoftwareRouter<mpls_dataplane::HashTable> =
            SoftwareRouter::new(2, role, &cfg, SwTimingModel::default());
        b.iter(|| {
            let out = r.handle(black_box(packet.clone()));
            assert!(matches!(out.action, Action::Forward { .. }));
            black_box(out.latency_ns)
        });
    });

    g.bench_with_input(BenchmarkId::new("software_linear", 1), &(), |b, _| {
        let mut r: SoftwareRouter<mpls_dataplane::LinearTable> =
            SoftwareRouter::new(2, role, &cfg, SwTimingModel::default());
        b.iter(|| {
            let out = r.handle(black_box(packet.clone()));
            assert!(matches!(out.action, Action::Forward { .. }));
            black_box(out.latency_ns)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_routers);
criterion_main!(benches);
