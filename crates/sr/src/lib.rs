#![warn(missing_docs)]
//! The segment-routing control plane (SR-MPLS).
//!
//! Where the centralized solver and the LDP fabric signal *per-LSP*
//! transit state at every hop, segment routing keeps the core stateless:
//! every node owns one globally-known node SID allocated from a shared
//! SRGB, and an ingress LER steers a flow by pushing the whole source
//! route — a stack of node SIDs — onto the packet at once. Transit
//! behavior falls out of two operations:
//!
//! * **CONTINUE** — the top SID belongs to another node: swap it to
//!   itself (the SRGB is homogeneous, so the label value is a
//!   network-wide constant) and forward toward that node.
//! * **NEXT** — the top SID belongs to this node: pop it, exposing the
//!   next segment (or the metadata/empty bottom at the final endpoint).
//!
//! [`SrFabric`] compiles shortest-path trees ([`SptTree`], the same
//! delta-CSPF machinery the centralized signaling uses) into per-node
//! [`NodeConfig`]s: CONTINUE/NEXT bindings and next hops for every node
//! SID, equal-cost fan-out sets for entropy-hashed ECMP, and per-prefix
//! ingress policies. When a source route would exceed the ingress's
//! maximum push depth (metadata included), the compiler falls back to
//! *loose hops*: evenly spaced waypoint SIDs that let each intermediate
//! node shortest-path its way to the next waypoint — fewer labels, less
//! explicit path control. That trade is the paper's shallow-hardware
//! constraint made visible: an embedded LER with its three entry
//! registers can only originate heavily compressed routes.
//!
//! There is no signaling protocol and no per-LSP state: bring-up is one
//! compilation pass, and reconvergence after a topology change is a
//! recompilation touching only the nodes whose configuration actually
//! changed.

use mpls_control::{
    BindingEntry, EcmpEntry, Hop, IpRoute, LinkId, NextHopEntry, NodeConfig, NodeId, SptTree,
    SrPolicyEntry, Topology,
};
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_packet::sr::{ecmp_index, entropy_label, MNA_LEN};
use mpls_packet::{CosBits, Label, MAX_STACK_DEPTH};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs of the SR control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrConfig {
    /// First label of the Segment Routing Global Block. Node SIDs are
    /// `srgb_base + index` with nodes indexed in ascending id order —
    /// the homogeneous-SRGB assumption that makes CONTINUE a
    /// swap-to-self.
    pub srgb_base: u32,
    /// Readable Label Depth programmed into every node: how many stack
    /// entries a data plane can scan for the entropy pair.
    pub rld: u8,
    /// Maximum number of labels (SIDs plus metadata LSEs) an ingress may
    /// push at once. Routes needing more get loose-hop compressed.
    pub max_push_depth: u8,
    /// Push an RFC 6790 ELI/EL entropy pair below every source route.
    pub entropy: bool,
    /// Push a minimal MNA network-action sub-stack below every source
    /// route.
    pub mna: bool,
}

impl Default for SrConfig {
    fn default() -> Self {
        Self {
            srgb_base: 16_000,
            rld: MAX_STACK_DEPTH as u8,
            max_push_depth: MAX_STACK_DEPTH as u8,
            entropy: true,
            mna: false,
        }
    }
}

/// One steering intent: traffic entering at `ingress` for `prefix`
/// follows a compiled source route to `egress`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrPolicySpec {
    /// Ingress LER.
    pub ingress: NodeId,
    /// Egress LER (the final segment endpoint).
    pub egress: NodeId,
    /// Destination prefix steered onto the route.
    pub prefix: Prefix,
    /// CoS stamped on the pushed labels.
    pub cos: CosBits,
}

/// Aggregate state footprint of a compiled fabric, for the SR-vs-LDP
/// comparison of EXT-16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrState {
    /// Labels allocated network-wide (one node SID per node).
    pub labels: usize,
    /// Total programmed FIB entries across all nodes (bindings, next
    /// hops, routes, policies and ECMP sets).
    pub fib_entries: usize,
    /// Compiled ingress policies.
    pub policies: usize,
}

/// The compiled segment-routing fabric.
#[derive(Debug, Clone)]
pub struct SrFabric {
    topo: Topology,
    cfg: SrConfig,
    policies: Vec<SrPolicySpec>,
    locals: Vec<(NodeId, Prefix)>,
    failed: BTreeSet<LinkId>,
    /// Node ids ascending; a node's SID is `srgb_base + position`.
    ids: Vec<NodeId>,
    compiled: BTreeMap<NodeId, NodeConfig>,
    dirty: BTreeSet<NodeId>,
}

impl SrFabric {
    /// Creates a fabric over `topo`, allocating one node SID per node
    /// from the SRGB. Panics if the SRGB cannot hold one SID per node —
    /// a configuration error, like a malformed topology.
    pub fn new(topo: Topology, cfg: SrConfig) -> Self {
        let mut ids: Vec<NodeId> = topo.nodes().iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert!(
            cfg.srgb_base >= Label::FIRST_UNRESERVED.value()
                && cfg.srgb_base as usize + ids.len() <= Label::MAX as usize + 1,
            "SRGB [{}, {}) out of label range",
            cfg.srgb_base,
            cfg.srgb_base as usize + ids.len()
        );
        Self {
            topo,
            cfg,
            policies: Vec::new(),
            locals: Vec::new(),
            failed: BTreeSet::new(),
            ids,
            compiled: BTreeMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &SrConfig {
        &self.cfg
    }

    /// The node SID label of `node`, if the node exists.
    pub fn sid_label(&self, node: NodeId) -> Option<Label> {
        let i = self.ids.binary_search(&node).ok()?;
        Some(Label::from_masked(self.cfg.srgb_base + i as u32))
    }

    /// The node owning a SID label, if it is in the SRGB.
    pub fn node_of_sid(&self, label: Label) -> Option<NodeId> {
        let off = label.value().checked_sub(self.cfg.srgb_base)? as usize;
        self.ids.get(off).copied()
    }

    /// Registers a steering intent. Call [`Self::compile`] afterwards.
    pub fn add_policy(&mut self, spec: SrPolicySpec) {
        self.policies.push(spec);
    }

    /// Registers a locally attached prefix delivered at `node`.
    pub fn add_local(&mut self, node: NodeId, prefix: Prefix) {
        self.locals.push((node, prefix));
    }

    /// Compiles every node's configuration from scratch and marks the
    /// changed nodes dirty. Returns the number of nodes whose
    /// configuration changed.
    pub fn compile(&mut self) -> usize {
        let fresh = self.compute_configs();
        let mut changed = 0;
        for id in &self.ids {
            if self.compiled.get(id) != fresh.get(id) {
                self.dirty.insert(*id);
                changed += 1;
            }
        }
        self.compiled = fresh;
        changed
    }

    /// The compiled configuration of one node (empty if never compiled).
    pub fn config_for(&self, node: NodeId) -> NodeConfig {
        self.compiled.get(&node).cloned().unwrap_or_default()
    }

    /// All compiled configurations.
    pub fn configs(&self) -> &BTreeMap<NodeId, NodeConfig> {
        &self.compiled
    }

    /// Drains the set of nodes whose configuration changed since the
    /// last call, ascending.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let out: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        out
    }

    /// Marks a link failed and recompiles. Returns changed-node count.
    pub fn fail_link(&mut self, link: LinkId) -> usize {
        self.failed.insert(link);
        self.compile()
    }

    /// Marks a link restored and recompiles. Returns changed-node count.
    pub fn restore_link(&mut self, link: LinkId) -> usize {
        self.failed.remove(&link);
        self.compile()
    }

    /// Marks every link of `node` failed (node crash) and recompiles.
    pub fn fail_node(&mut self, node: NodeId) -> usize {
        for &(_, link) in self.topo.neighbors(node) {
            self.failed.insert(link);
        }
        self.compile()
    }

    /// Restores every link of `node` (node restart) and recompiles.
    pub fn restore_node(&mut self, node: NodeId) -> usize {
        for &(_, link) in self.topo.neighbors(node) {
            self.failed.remove(&link);
        }
        self.compile()
    }

    /// Aggregate state footprint of the current compilation.
    pub fn state(&self) -> SrState {
        let fib_entries = self
            .compiled
            .values()
            .map(|c| {
                c.bindings.len()
                    + c.next_hops.len()
                    + c.fecs.len()
                    + c.ip_routes.len()
                    + c.sr_policies.len()
                    + c.ecmp.len()
            })
            .sum();
        SrState {
            labels: self.ids.len(),
            fib_entries,
            policies: self.policies.len(),
        }
    }

    // ---- compilation -----------------------------------------------------

    fn usable(&self, link: LinkId) -> bool {
        !self.failed.contains(&link)
    }

    /// The equal-cost next hops from `n` toward `d`, ascending by node
    /// id: every usable neighbor sitting on *some* shortest path.
    fn equal_cost_nexts(
        &self,
        trees: &BTreeMap<NodeId, SptTree>,
        n: NodeId,
        d: NodeId,
    ) -> Vec<NodeId> {
        let Some(total) = trees[&n].cost(&self.topo, d) else {
            return Vec::new();
        };
        let mut nexts: Vec<NodeId> = Vec::new();
        for &(nb, link) in self.topo.neighbors(n) {
            if !self.usable(link) {
                continue;
            }
            let w = self.topo.link(link).expect("valid adjacency").cost as u64;
            if w <= total && trees[&nb].cost(&self.topo, d) == Some(total - w) {
                nexts.push(nb);
            }
        }
        nexts.sort_unstable();
        nexts.dedup();
        nexts
    }

    /// Compiles the source-route SID stack (top-first) for one policy,
    /// loose-hop compressing when the strict per-hop stack plus metadata
    /// would not fit the ingress's max push depth.
    fn stack_for(
        &self,
        trees: &BTreeMap<NodeId, SptTree>,
        ingress: NodeId,
        egress: NodeId,
    ) -> Option<Vec<Label>> {
        let path = trees.get(&ingress)?.path(&self.topo, egress)?;
        if path.len() < 2 {
            return Some(Vec::new());
        }
        let metadata = if self.cfg.entropy {
            mpls_packet::sr::ENTROPY_LEN
        } else {
            0
        } + if self.cfg.mna { MNA_LEN } else { 0 };
        let budget = (self.cfg.max_push_depth as usize)
            .saturating_sub(metadata)
            .max(1);
        let hops = path.len() - 1;
        let waypoints: Vec<NodeId> = if hops <= budget {
            path[1..].to_vec()
        } else {
            // Evenly spaced loose hops ending at the egress. Integer
            // positions are strictly increasing because hops > budget.
            (1..=budget).map(|i| path[i * hops / budget]).collect()
        };
        Some(
            waypoints
                .iter()
                .map(|&w| self.sid_label(w).expect("path nodes exist"))
                .collect(),
        )
    }

    fn compute_configs(&self) -> BTreeMap<NodeId, NodeConfig> {
        let usable = |l: LinkId| self.usable(l);
        let trees: BTreeMap<NodeId, SptTree> = self
            .ids
            .iter()
            .map(|&n| (n, SptTree::build(&self.topo, n, &usable)))
            .collect();
        let mut out: BTreeMap<NodeId, NodeConfig> = self
            .ids
            .iter()
            .map(|&n| {
                (
                    n,
                    NodeConfig {
                        rld: Some(self.cfg.rld),
                        ..NodeConfig::default()
                    },
                )
            })
            .collect();
        // Full-mesh node-SID state: O(nodes) entries per node, no
        // per-LSP state anywhere — the footprint EXT-16 compares
        // against LDP's per-FEC mappings.
        for &d in &self.ids {
            let sid = self.sid_label(d).expect("listed node");
            for &n in &self.ids {
                let cfg = out.get_mut(&n).expect("listed node");
                if n == d {
                    // NEXT: pop the satisfied segment at its endpoint.
                    for level in [2u8, 3] {
                        cfg.bindings.push(BindingEntry {
                            node: n,
                            level,
                            key: sid.value() as u64,
                            new_label: sid,
                            op: LabelOp::Pop,
                        });
                    }
                    continue;
                }
                let nexts = self.equal_cost_nexts(&trees, n, d);
                let Some(&primary) = nexts.first() else {
                    continue; // unreachable: no state, packets discard
                };
                // CONTINUE: swap-to-self (homogeneous SRGB) and forward.
                for level in [2u8, 3] {
                    cfg.bindings.push(BindingEntry {
                        node: n,
                        level,
                        key: sid.value() as u64,
                        new_label: sid,
                        op: LabelOp::Swap,
                    });
                }
                cfg.next_hops.push(NextHopEntry {
                    node: n,
                    label: Some(sid),
                    next: Hop::Node(primary),
                });
                if nexts.len() > 1 {
                    cfg.ecmp.push(EcmpEntry {
                        node: n,
                        label: sid,
                        nexts,
                    });
                }
            }
        }
        for p in &self.policies {
            if let Some(sids) = self.stack_for(&trees, p.ingress, p.egress) {
                out.get_mut(&p.ingress)
                    .expect("policy ingress exists")
                    .sr_policies
                    .push(SrPolicyEntry {
                        node: p.ingress,
                        prefix: p.prefix,
                        sids,
                        entropy: self.cfg.entropy,
                        mna: self.cfg.mna,
                        cos: p.cos,
                    });
            }
            out.get_mut(&p.egress)
                .expect("policy egress exists")
                .ip_routes
                .push(IpRoute {
                    node: p.egress,
                    prefix: p.prefix,
                    next: Hop::Local,
                });
        }
        for &(node, prefix) in &self.locals {
            let cfg = out.get_mut(&node).expect("local node exists");
            let route = IpRoute {
                node,
                prefix,
                next: Hop::Local,
            };
            if !cfg.ip_routes.contains(&route) {
                cfg.ip_routes.push(route);
            }
        }
        out
    }

    // ---- prediction ------------------------------------------------------

    /// The node path a flow `src -> dst` entering at `ingress` follows
    /// under the *current* compilation, replicating the data plane's
    /// segment, ECMP and RLD decisions exactly. `None` when no policy
    /// matches or the route is broken. This is the oracle the chaos
    /// harness compares delivered paths against.
    pub fn predict_path(&self, ingress: NodeId, src: u32, dst: u32) -> Option<Vec<NodeId>> {
        Self::walk_configs(&self.compiled, ingress, src, dst)
    }

    /// Like [`Self::predict_path`] but walking an arbitrary config set
    /// (e.g. the FIBs a finished simulation reported). Mirrors the
    /// routers' resolution order: pop NEXT segments at their endpoint,
    /// resolve CONTINUE hops through the ECMP table with the entropy
    /// label as the only hash input, honoring each node's RLD.
    pub fn walk_configs(
        configs: &BTreeMap<NodeId, NodeConfig>,
        ingress: NodeId,
        src: u32,
        dst: u32,
    ) -> Option<Vec<NodeId>> {
        let policy = configs
            .get(&ingress)?
            .sr_policies
            .iter()
            .filter(|p| p.prefix.contains(dst))
            .max_by_key(|p| p.prefix.len)?;
        // Conceptual stack below the SIDs, as entry count: MNA sub-stack
        // then the entropy pair (see crate::sr stack layout).
        let mna_len = if policy.mna { MNA_LEN } else { 0 };
        let el = policy.entropy.then(|| entropy_label(src, dst));
        let mut sids = policy.sids.clone();
        let mut cur = ingress;
        let mut path = vec![ingress];
        // Bounded walk: a compiled fabric never loops, but a corrupted
        // config set must not hang the oracle.
        for _ in 0..configs.len() * (MAX_STACK_DEPTH + 1) {
            let Some(&top) = sids.first() else {
                return Some(path);
            };
            let cfg = configs.get(&cur)?;
            let owns = cfg
                .bindings
                .iter()
                .any(|b| b.level == 2 && b.key == top.value() as u64 && b.op == LabelOp::Pop);
            if owns {
                sids.remove(0);
                continue;
            }
            // CONTINUE: entropy-hashed ECMP, RLD permitting.
            let next = match cfg.ecmp.iter().find(|e| e.label == top) {
                Some(e) if e.nexts.len() > 1 => {
                    let rld = cfg.rld.map(usize::from).unwrap_or(usize::MAX);
                    // ELI index within the conceptual stack; both ELI
                    // and EL must be readable (see sr::find_entropy).
                    let readable = el.is_some() && sids.len() + mna_len + 1 < rld;
                    match el {
                        Some(el) if readable => e.nexts[ecmp_index(el.value(), e.nexts.len())],
                        _ => e.nexts[0],
                    }
                }
                _ => match cfg.next_hop_for(Some(top))? {
                    Hop::Node(n) => n,
                    Hop::Local => return None,
                },
            };
            cur = next;
            path.push(cur);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::RouterRole;

    fn fabric(topo: Topology, cfg: SrConfig) -> SrFabric {
        SrFabric::new(topo, cfg)
    }

    fn fig1_fabric(cfg: SrConfig) -> SrFabric {
        let mut f = fabric(Topology::figure1_example(), cfg);
        f.add_policy(SrPolicySpec {
            ingress: 0,
            egress: 1,
            prefix: Prefix::new(0x0a01_0000, 16),
            cos: CosBits::BEST_EFFORT,
        });
        f.compile();
        f
    }

    #[test]
    fn sids_are_dense_and_invertible() {
        let f = fig1_fabric(SrConfig::default());
        for n in 0..6u32 {
            let sid = f.sid_label(n).unwrap();
            assert_eq!(f.node_of_sid(sid), Some(n));
            assert!(!sid.is_reserved());
        }
        assert_eq!(f.sid_label(99), None);
    }

    #[test]
    fn strict_route_follows_the_fast_path() {
        let f = fig1_fabric(SrConfig::default());
        let cfg = f.config_for(0);
        assert_eq!(cfg.sr_policies.len(), 1);
        let sids = &cfg.sr_policies[0].sids;
        // Fast path 0-2-3-1: SIDs for 2, 3, 1 top-first.
        let expect: Vec<Label> = [2u32, 3, 1]
            .iter()
            .map(|&n| f.sid_label(n).unwrap())
            .collect();
        assert_eq!(sids, &expect);
        let path = f.predict_path(0, 0x0a00_0001, 0x0a01_0001).unwrap();
        assert_eq!(path, vec![0, 2, 3, 1]);
    }

    #[test]
    fn tight_push_budget_compresses_to_loose_hops() {
        let f = fig1_fabric(SrConfig {
            max_push_depth: 3,
            entropy: true, // 2 metadata LSEs -> budget of 1 SID
            ..SrConfig::default()
        });
        let cfg = f.config_for(0);
        let sids = &cfg.sr_policies[0].sids;
        assert_eq!(sids.len(), 1, "compressed to a single loose hop");
        assert_eq!(f.node_of_sid(sids[0]), Some(1), "waypoint is the egress");
        // The loose hop still shortest-paths to the egress.
        let path = f.predict_path(0, 0x0a00_0001, 0x0a01_0001).unwrap();
        assert_eq!(path, vec![0, 2, 3, 1]);
    }

    #[test]
    fn link_failure_recompiles_around_the_cut() {
        let mut f = fig1_fabric(SrConfig::default());
        let cut = f.topo.link_between(2, 3).unwrap();
        assert!(f.fail_link(cut) > 0);
        let path = f.predict_path(0, 0x0a00_0001, 0x0a01_0001).unwrap();
        assert_eq!(path, vec![0, 4, 5, 1], "south detour");
        assert!(f.restore_link(cut) > 0);
        let path = f.predict_path(0, 0x0a00_0001, 0x0a01_0001).unwrap();
        assert_eq!(path, vec![0, 2, 3, 1], "back to the fast path");
    }

    #[test]
    fn state_is_per_node_not_per_policy() {
        let mut f = fabric(Topology::figure1_example(), SrConfig::default());
        for i in 0..4u32 {
            f.add_policy(SrPolicySpec {
                ingress: 0,
                egress: 1,
                prefix: Prefix::new(0x0a00_0000 + (i << 8), 24),
                cos: CosBits::BEST_EFFORT,
            });
        }
        f.compile();
        let s = f.state();
        assert_eq!(s.labels, 6, "one SID per node");
        assert_eq!(s.policies, 4);
        // Transit state (bindings + next hops) is policy-independent.
        let transit: usize = f
            .configs()
            .values()
            .map(|c| c.bindings.len() + c.next_hops.len())
            .sum();
        let mut f1 = fabric(Topology::figure1_example(), SrConfig::default());
        f1.add_policy(SrPolicySpec {
            ingress: 0,
            egress: 1,
            prefix: Prefix::new(0x0a00_0000, 24),
            cos: CosBits::BEST_EFFORT,
        });
        f1.compile();
        let transit1: usize = f1
            .configs()
            .values()
            .map(|c| c.bindings.len() + c.next_hops.len())
            .sum();
        assert_eq!(transit, transit1);
    }

    #[test]
    fn ecmp_members_cover_equal_cost_fabrics() {
        // Two equal-cost parallel two-hop paths 0-1-3 and 0-2-3.
        let mut t = Topology::new();
        t.add_node(0, RouterRole::Ler, "in");
        t.add_node(3, RouterRole::Ler, "out");
        t.add_node(1, RouterRole::Lsr, "a");
        t.add_node(2, RouterRole::Lsr, "b");
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            t.add_link(mpls_control::LinkSpec {
                a,
                b,
                cost: 1,
                bandwidth_bps: 1_000_000_000,
                delay_ns: 1000,
            });
        }
        // A tight push budget compresses to the single loose egress SID,
        // which is what makes the fan-out at the ingress reachable: a
        // strict per-hop stack pins every segment to one next hop.
        let mut f = fabric(
            t,
            SrConfig {
                max_push_depth: 3,
                ..SrConfig::default()
            },
        );
        f.add_policy(SrPolicySpec {
            ingress: 0,
            egress: 3,
            prefix: Prefix::new(0x0a01_0000, 16),
            cos: CosBits::BEST_EFFORT,
        });
        f.compile();
        let cfg = f.config_for(0);
        let sid3 = f.sid_label(3).unwrap();
        let e = cfg.ecmp.iter().find(|e| e.label == sid3).expect("fan-out");
        assert_eq!(e.nexts, vec![1, 2]);
        // Different flows spread over both members; each path is valid.
        let mut seen = BTreeSet::new();
        for dst in 0x0a01_0001u32..0x0a01_0020 {
            let path = f.predict_path(0, 7, dst).unwrap();
            assert_eq!(path.len(), 3);
            assert_eq!(path[2], 3);
            seen.insert(path[1]);
        }
        assert_eq!(seen, BTreeSet::from([1, 2]), "entropy spreads the load");
    }

    #[test]
    fn rld_zero_disables_entropy_spreading() {
        let mut t = Topology::new();
        t.add_node(0, RouterRole::Ler, "in");
        t.add_node(3, RouterRole::Ler, "out");
        t.add_node(1, RouterRole::Lsr, "a");
        t.add_node(2, RouterRole::Lsr, "b");
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            t.add_link(mpls_control::LinkSpec {
                a,
                b,
                cost: 1,
                bandwidth_bps: 1_000_000_000,
                delay_ns: 1000,
            });
        }
        let mut f = fabric(
            t,
            SrConfig {
                rld: 1,
                max_push_depth: 3,
                ..SrConfig::default()
            },
        );
        f.add_policy(SrPolicySpec {
            ingress: 0,
            egress: 3,
            prefix: Prefix::new(0x0a01_0000, 16),
            cos: CosBits::BEST_EFFORT,
        });
        f.compile();
        for dst in 0x0a01_0001u32..0x0a01_0010 {
            let path = f.predict_path(0, 7, dst).unwrap();
            assert_eq!(path[1], 1, "RLD-blind nodes fall back to nexts[0]");
        }
    }
}
