//! Waveform-level assertions reproducing the observations the paper makes
//! about its Figs. 14–16 simulations, checked against the recorded traces.

use mpls_core::figures::{figure14_level1, figure15_level2, figure16_discard};
use mpls_rtl::{SignalId, Trace};

/// Finds a probe by its paper signal name.
fn sig(trace: &Trace, name: &str) -> SignalId {
    trace
        .find(name)
        .unwrap_or_else(|| panic!("no signal named {name}"))
}

struct Sigs<'a> {
    trace: &'a Trace,
}

impl<'a> Sigs<'a> {
    fn id(&self, name: &str) -> SignalId {
        sig(self.trace, name)
    }
}

#[test]
fn fig14_w_index_increments_one_to_ten_during_writes() {
    let run = figure14_level1();
    let s = Sigs { trace: &run.trace };
    let w = s.id("w_index");
    let values: Vec<u64> = run.trace.transitions(w).iter().map(|&(_, v)| v).collect();
    // "we see w_index increment from 1 to 10, indicating the label pairs
    // are being properly stored and not overwritten."
    assert_eq!(values, (0..=10).collect::<Vec<u64>>());
}

#[test]
fn fig14_r_index_stops_at_matching_entry() {
    let run = figure14_level1();
    let s = Sigs { trace: &run.trace };
    let r = s.id("r_index");
    // "r_index begins incrementing to search through the [info base] and
    // stops at the index of the correct entry" — packet id 604 lives in
    // slot 4.
    let max_r = (0..run.trace.cycles())
        .map(|c| run.trace.value_at(r, c))
        .max()
        .unwrap();
    assert_eq!(max_r, 4);
    // And it holds at 4 at the end of the recording (never advanced past).
    assert_eq!(run.trace.value_at(r, run.trace.cycles() - 1), 4);
}

#[test]
fn fig14_outputs_appear_with_done_pulse_and_no_discard() {
    let run = figure14_level1();
    let s = Sigs { trace: &run.trace };
    let done = s.id("lookup_done");
    let label_out = s.id("label_out");
    let op_out = s.id("operation_out");
    let discard = s.id("packetdiscard");

    // "the lookup_done signal goes high for a clock cycle"
    let done_transitions = run.trace.transitions(done);
    let rises: Vec<usize> = done_transitions
        .iter()
        .filter(|&&(_, v)| v == 1)
        .map(|&(c, _)| c)
        .collect();
    assert_eq!(rises.len(), 1, "exactly one lookup_done pulse");
    let rise = rises[0];
    assert_eq!(run.trace.value_at(done, rise + 1), 0, "one-cycle pulse");

    // "The new label (504) and operation (3) then appear"
    assert_eq!(run.trace.value_at(label_out, rise), 504);
    assert_eq!(run.trace.value_at(op_out, rise), 3);
    // Outputs hold after the pulse.
    assert_eq!(run.trace.value_at(label_out, run.trace.cycles() - 1), 504);

    // "the packetdiscard signal remains low"
    assert!(run.trace.first_cycle_where(discard, 1).is_none());
}

#[test]
fn fig14_packetid_and_save_lookup_framing() {
    let run = figure14_level1();
    let s = Sigs { trace: &run.trace };
    let packetid = s.id("packetid");
    let lookup = s.id("lookup");
    let save = s.id("save");

    // During the writes, packetid walks 600..=609 (level-1 index is the
    // packet identifier); during the lookup it is 604.
    let pid_values: Vec<u64> = run
        .trace
        .transitions(packetid)
        .iter()
        .map(|&(_, v)| v)
        .collect();
    assert!(pid_values.contains(&600));
    assert!(pid_values.contains(&609));
    assert_eq!(*pid_values.last().unwrap(), 0, "idle after the op");
    assert!(pid_values.contains(&604));

    // save strobes during writes, lookup during the search; never both.
    for c in 0..run.trace.cycles() {
        assert!(
            !(run.trace.value_at(save, c) == 1 && run.trace.value_at(lookup, c) == 1),
            "save and lookup simultaneously high at cycle {c}"
        );
    }
    assert!(run.trace.first_cycle_where(save, 1).is_some());
    assert!(run.trace.first_cycle_where(lookup, 1).is_some());
}

#[test]
fn fig15_level2_lookup_by_label() {
    let run = figure15_level2();
    let s = Sigs { trace: &run.trace };
    let label_lookup = s.id("label_lookup");
    let label_out = s.id("label_out");
    let discard = s.id("packetdiscard");

    // "Signal label_lookup is used to indicate the label used to perform
    // the lookup for levels 2 and 3."
    assert!(run.trace.first_cycle_where(label_lookup, 5).is_some());
    // Same slot-4 position as Fig. 14 → same new label 504.
    let last = run.trace.cycles() - 1;
    assert_eq!(run.trace.value_at(label_out, last), 504);
    assert!(run.trace.first_cycle_where(discard, 1).is_none());
}

#[test]
fn fig15_w_and_r_indices_iterate() {
    let run = figure15_level2();
    let s = Sigs { trace: &run.trace };
    // "Signal values for w_index and r_index iterate so all values are
    // written and the correct values are read."
    let w = s.id("w_index");
    let r = s.id("r_index");
    assert_eq!(
        run.trace
            .transitions(w)
            .iter()
            .map(|&(_, v)| v)
            .collect::<Vec<_>>(),
        (0..=10).collect::<Vec<u64>>()
    );
    let r_vals: Vec<u64> = run.trace.transitions(r).iter().map(|&(_, v)| v).collect();
    assert_eq!(r_vals, (0..=4).collect::<Vec<u64>>());
}

#[test]
fn fig16_miss_raises_done_and_discard_with_outputs_unchanged() {
    let run = figure16_discard();
    let s = Sigs { trace: &run.trace };
    let r = s.id("r_index");
    let done = s.id("lookup_done");
    let discard = s.id("packetdiscard");
    let label_out = s.id("label_out");
    let op_out = s.id("operation_out");

    // "the r_index signal iterates to process all label pairs stored at
    // that level" — it reaches slot 9 and wraps its staged increment to 10.
    let max_r = (0..run.trace.cycles())
        .map(|c| run.trace.value_at(r, c))
        .max()
        .unwrap();
    assert_eq!(max_r, 10, "cursor advanced past every stored pair");

    // "the lookup_done and packetdiscard signals are sent high"
    let done_rise = run.trace.first_cycle_where(done, 1).expect("done pulse");
    let discard_rise = run.trace.first_cycle_where(discard, 1).expect("discard");
    assert_eq!(done_rise, discard_rise, "raised together");

    // "Signals label_out and operation_out remain unchanged." They were
    // never loaded, so they hold their reset value for the whole run.
    for c in 0..run.trace.cycles() {
        assert_eq!(run.trace.value_at(label_out, c), 0);
        assert_eq!(run.trace.value_at(op_out, c), 0);
    }
}

#[test]
fn traces_export_to_vcd() {
    let run = figure14_level1();
    let vcd = mpls_rtl::vcd::to_vcd(&run.trace, "label_stack_modifier", 20);
    assert!(vcd.contains("$var wire 32 "));
    assert!(vcd.contains("packetid"));
    assert!(vcd.contains("lookup_done"));
    // ASCII rendering also works over the full run.
    let ascii = run.trace.render_ascii(0..run.trace.cycles());
    assert!(ascii.contains("label_out"));
    assert!(ascii.contains("504"));
}
