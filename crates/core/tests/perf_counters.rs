//! The optional `CorePerf` counter block: observational only, consistent
//! with the modifier's own cycle accounting.

use mpls_core::fsm::{LblState, MainState, SearchState};
use mpls_core::modifier::Outcome;
use mpls_core::{IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::Label;

fn programmed_modifier(perf: bool) -> LabelStackModifier {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    if perf {
        m.enable_perf();
    }
    for i in 0..10u64 {
        m.write_pair(
            Level::L2,
            i + 1,
            Label::new(500 + i as u32).unwrap(),
            IbOperation::Swap,
        );
    }
    m
}

#[test]
fn perf_does_not_change_outcomes_or_cycles() {
    let mut plain = programmed_modifier(false);
    let mut counted = programmed_modifier(true);
    for key in [5u64, 27, 1, 10] {
        let a = plain.lookup(Level::L2, key);
        let b = counted.lookup(Level::L2, key);
        assert_eq!(a, b, "lookup {key}: perf must be invisible");
    }
    assert_eq!(plain.total_cycles(), counted.total_cycles());
    assert!(plain.perf().is_none());
}

#[test]
fn per_state_cycles_sum_to_total() {
    let mut m = programmed_modifier(true);
    m.lookup(Level::L2, 5);
    m.idle(4);
    let p = m.perf().expect("perf enabled");
    assert_eq!(p.total_cycles(), m.total_cycles());
    // All four FSMs see every clock.
    assert_eq!(p.main_cycles.iter().sum::<u64>(), m.total_cycles());
    assert_eq!(p.lbl_cycles.iter().sum::<u64>(), m.total_cycles());
    assert_eq!(p.search_cycles.iter().sum::<u64>(), m.total_cycles());
}

#[test]
fn search_fsm_cycle_shape_matches_table6() {
    // A hit at 1-based entry k costs 3k+5; of those, the search FSM spends
    // 3 cycles per examined entry in its read/wait/compare loop.
    let mut m = programmed_modifier(true);
    let r = m.lookup(Level::L2, 5);
    assert_eq!(r.cycles, 20, "hit at entry 5: 3*5 + 5");
    let p = m.perf().unwrap();
    let loop_cycles = p.search_cycles[SearchState::Read as usize]
        + p.search_cycles[SearchState::WaitInfo as usize]
        + p.search_cycles[SearchState::Compare as usize];
    assert_eq!(loop_cycles, 15, "3 cycles per examined entry");
    assert_eq!(p.search_cycles[SearchState::FoundWait as usize], 1);
    assert_eq!(p.search_cycles[SearchState::DoneHit as usize], 1);
}

#[test]
fn search_depth_histogram_records_hits_and_misses() {
    let mut m = programmed_modifier(true);
    assert_eq!(
        m.lookup(Level::L2, 5).outcome,
        Outcome::LookupHit {
            label: Label::new(504).unwrap(),
            op: IbOperation::Swap
        }
    );
    assert_eq!(m.lookup(Level::L2, 27).outcome, Outcome::LookupMiss);
    // Level 3 is empty: a miss at depth 0.
    assert_eq!(m.lookup(Level::L3, 1).outcome, Outcome::LookupMiss);
    let p = m.perf().unwrap();
    assert_eq!(p.search_hits, 1);
    assert_eq!(p.search_misses, 2);
    assert_eq!(p.search_depth.total(), 3);
    assert_eq!(p.search_depth.min(), Some(0), "empty level examined 0");
    assert_eq!(p.search_depth.max(), Some(10), "miss sweeps all ten pairs");
}

#[test]
fn counters_survive_take_and_set() {
    // The router layer rebuilds modifiers on reprogramming and carries the
    // counter block across; take/set must preserve the numbers.
    let mut m = programmed_modifier(true);
    m.lookup(Level::L2, 5);
    let saved = m.take_perf().expect("block attached");
    let hits = saved.search_hits;
    let mut fresh = LabelStackModifier::new(RouterType::Lsr);
    fresh.set_perf(Some(saved));
    fresh.idle(2);
    let p = fresh.perf().unwrap();
    assert_eq!(p.search_hits, hits);
    assert!(p.main_cycles[MainState::Idle as usize] > 0);
    assert!(p.lbl_cycles[LblState::Idle as usize] > 0);
}
