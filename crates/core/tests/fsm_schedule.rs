//! Cycle-by-cycle verification of the control-unit schedules against the
//! state diagrams of Figs. 8–11: which FSM is in which state on every
//! clock of each operation class.

use mpls_core::fsm::{IbState, LblState, MainState, SearchState};
use mpls_core::modifier::Command;
use mpls_core::{IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

fn entry(label: u32, ttl: u8) -> LabelStackEntry {
    LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, ttl)
}

/// Steps a begun command to completion, recording the state tuple seen
/// *during* each clock period (i.e., before each edge).
fn record(m: &mut LabelStackModifier) -> Vec<(MainState, LblState, IbState, SearchState)> {
    let mut states = Vec::new();
    loop {
        states.push(m.fsm_states());
        m.step();
        if states.len() > 1 && !m.busy() {
            break;
        }
        assert!(states.len() < 10_000, "runaway schedule");
    }
    m.finish_command();
    states
}

#[test]
fn user_push_schedule() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.begin(Command::UserPush(entry(5, 64)));
    let states = record(&mut m);
    // Cycle 1: dispatch; cycle 2: label interface enters; cycle 3: the
    // USER PUSH state acts and signals done.
    assert_eq!(
        states,
        vec![
            (
                MainState::Idle,
                LblState::Idle,
                IbState::Idle,
                SearchState::Idle
            ),
            (
                MainState::LblInterfaceActive,
                LblState::Idle,
                IbState::Idle,
                SearchState::Idle
            ),
            (
                MainState::LblInterfaceActive,
                LblState::UserPush,
                IbState::Idle,
                SearchState::Idle
            ),
        ]
    );
    assert_eq!(m.stack_depth(), 1);
}

#[test]
fn write_pair_schedule() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.begin(Command::WritePair {
        level: Level::L2,
        index: 9,
        new_label: Label::new(900).unwrap(),
        op: IbOperation::Swap,
    });
    let states = record(&mut m);
    assert_eq!(
        states.iter().map(|s| s.2).collect::<Vec<_>>(),
        vec![IbState::Idle, IbState::Idle, IbState::WritePair]
    );
    assert_eq!(states.len() as u64, mpls_core::table6::WRITE_PAIR);
}

#[test]
fn lookup_schedule_hit_at_first_slot() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 1, Label::new(500).unwrap(), IbOperation::Swap);
    m.begin(Command::Lookup {
        level: Level::L2,
        key: 1,
    });
    let states = record(&mut m);
    let search: Vec<SearchState> = states.iter().map(|s| s.3).collect();
    assert_eq!(
        search,
        vec![
            SearchState::Idle,     // dispatch
            SearchState::Idle,     // ib enters SEARCH ENABLE
            SearchState::Idle,     // search sees enable, leaves idle
            SearchState::Read,     // read address driven
            SearchState::WaitInfo, // RAM latency
            SearchState::Compare,  // comparator fires: hit
            SearchState::FoundWait,
            SearchState::DoneHit,
        ],
        "search FSM must follow Fig. 11 exactly"
    );
    assert_eq!(states.len() as u64, mpls_core::table6::search_hit_at(1));
}

#[test]
fn lookup_miss_schedule_loops_per_entry() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..3u64 {
        m.write_pair(
            Level::L2,
            i + 1,
            Label::new(500).unwrap(),
            IbOperation::Swap,
        );
    }
    m.begin(Command::Lookup {
        level: Level::L2,
        key: 999,
    });
    let states = record(&mut m);
    let search: Vec<SearchState> = states.iter().map(|s| s.3).collect();
    // Three read/wait/compare triples, then the miss pair.
    let mut expected = vec![SearchState::Idle; 3];
    for _ in 0..3 {
        expected.extend([
            SearchState::Read,
            SearchState::WaitInfo,
            SearchState::Compare,
        ]);
    }
    expected.extend([SearchState::MissWait, SearchState::DoneMiss]);
    assert_eq!(search, expected);
    assert_eq!(states.len() as u64, mpls_core::table6::search(3));
}

#[test]
fn swap_schedule_appends_the_six_modify_states() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 7, Label::new(70).unwrap(), IbOperation::Swap);
    m.user_push(entry(7, 64));
    m.begin(Command::UpdateStack {
        packet_id: 0,
        push_cos: CosBits::BEST_EFFORT,
        push_ttl: 0,
        level_override: None,
    });
    let states = record(&mut m);
    let lbl: Vec<LblState> = states.iter().map(|s| s.1).collect();
    let tail: Vec<LblState> = lbl[lbl.len() - 6..].to_vec();
    assert_eq!(
        tail,
        vec![
            LblState::RemoveTop,
            LblState::UpdateTtl,
            LblState::VerifyInfo,
            LblState::PushNew,
            LblState::SaveEntry,
            LblState::Done,
        ],
        "the swap path of Fig. 9"
    );
    // Everything before the modify tail is search time.
    assert_eq!(
        states.len() as u64,
        mpls_core::table6::search_hit_at(1) + mpls_core::table6::SWAP_FROM_IB
    );
}

#[test]
fn push_schedule_includes_push_old() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 7, Label::new(70).unwrap(), IbOperation::Push);
    m.user_push(entry(7, 64));
    m.begin(Command::UpdateStack {
        packet_id: 0,
        push_cos: CosBits::BEST_EFFORT,
        push_ttl: 0,
        level_override: None,
    });
    let states = record(&mut m);
    let lbl: Vec<LblState> = states.iter().map(|s| s.1).collect();
    assert!(
        lbl.windows(2)
            .any(|w| w == [LblState::PushOld, LblState::PushNew]),
        "push path must pass PUSH OLD then PUSH NEW: {lbl:?}"
    );
}

#[test]
fn main_serializes_the_interfaces() {
    // "It is used to ensure that the remaining state machines are not
    // working at the same time": whenever the label interface is out of
    // idle, the info-base interface must not be mid-write, and vice versa
    // (the shared search machine is exempt by design).
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 7, Label::new(70).unwrap(), IbOperation::Swap);
    m.user_push(entry(7, 64));
    m.begin(Command::UpdateStack {
        packet_id: 0,
        push_cos: CosBits::BEST_EFFORT,
        push_ttl: 0,
        level_override: None,
    });
    for s in record(&mut m) {
        let lbl_busy = s.1 != LblState::Idle;
        let ib_busy = s.2 != IbState::Idle;
        assert!(!(lbl_busy && ib_busy), "interfaces overlapped: {s:?}");
    }
}

#[test]
fn level_override_searches_the_requested_level() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    // Pair lives in L3; the depth-1 stack would normally consult L2.
    m.write_pair(Level::L3, 7, Label::new(70).unwrap(), IbOperation::Swap);
    m.user_push(entry(7, 64));
    let r = m.execute(Command::UpdateStack {
        packet_id: 0,
        push_cos: CosBits::BEST_EFFORT,
        push_ttl: 0,
        level_override: Some(Level::L3),
    });
    assert_eq!(
        r.outcome,
        mpls_core::Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    assert_eq!(m.stack_snapshot().top().unwrap().label.value(), 70);
}
