//! Determinism: the modifier is a synchronous digital circuit, so the
//! same command sequence must produce bit-identical waveforms, cycle
//! counts and outcomes on every run — the property that makes the
//! Fig. 14–16 regenerations and the Table 6 assertions meaningful.

use mpls_core::modifier::{Command, OpResult};
use mpls_core::{IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};
use proptest::prelude::*;

/// A randomly generated command script.
fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        (1u32..64, 1u8..).prop_map(|(l, ttl)| Command::UserPush(LabelStackEntry::new(
            Label::new(l).unwrap(),
            CosBits::BEST_EFFORT,
            false,
            ttl
        ))),
        Just(Command::UserPop),
        (1u8..=3, 0u64..64, 16u32..1000, 0u8..=3).prop_map(|(lv, key, nl, op)| {
            Command::WritePair {
                level: match lv {
                    1 => Level::L1,
                    2 => Level::L2,
                    _ => Level::L3,
                },
                index: key,
                new_label: Label::new(nl).unwrap(),
                op: IbOperation::from_bits(op as u64),
            }
        }),
        (1u8..=3, 0u64..64).prop_map(|(lv, key)| Command::Lookup {
            level: match lv {
                1 => Level::L1,
                2 => Level::L2,
                _ => Level::L3,
            },
            key,
        }),
        (0u32..64, 0u8..=7, any::<u8>()).prop_map(|(pid, cos, ttl)| Command::UpdateStack {
            packet_id: pid,
            push_cos: CosBits::new(cos).unwrap(),
            push_ttl: ttl,
            level_override: None,
        }),
    ]
}

fn run_script(script: &[Command], traced: bool) -> (Vec<OpResult>, Option<mpls_rtl::Trace>) {
    let mut m = LabelStackModifier::new(RouterType::Ler);
    if traced {
        m.enable_trace();
    }
    let results = script.iter().map(|&c| m.execute(c)).collect();
    (results, m.take_trace())
}

proptest! {
    #[test]
    fn identical_scripts_produce_identical_runs(
        script in proptest::collection::vec(arb_command(), 1..24)
    ) {
        let (r1, t1) = run_script(&script, true);
        let (r2, t2) = run_script(&script, true);
        prop_assert_eq!(&r1, &r2, "outcomes/cycles diverged");
        let (t1, t2) = (t1.unwrap(), t2.unwrap());
        prop_assert_eq!(t1.cycles(), t2.cycles());
        // Bit-identical waveforms.
        prop_assert_eq!(
            mpls_rtl::vcd::to_vcd(&t1, "m", 20),
            mpls_rtl::vcd::to_vcd(&t2, "m", 20)
        );
    }

    /// Tracing must not perturb behaviour: cycle counts and outcomes are
    /// identical with and without a trace attached.
    #[test]
    fn tracing_is_observation_only(
        script in proptest::collection::vec(arb_command(), 1..24)
    ) {
        let (with, _) = run_script(&script, true);
        let (without, none) = run_script(&script, false);
        prop_assert!(none.is_none());
        prop_assert_eq!(with, without);
    }
}
