//! Behavioral tests for the label stack modifier: correct stack contents
//! after each operation class, discard paths, router-type gating, and
//! property tests over random information-base programs.

use mpls_core::modifier::Outcome;
use mpls_core::{DiscardReason, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};
use proptest::prelude::*;

fn entry(label: u32, cos: u8, ttl: u8) -> LabelStackEntry {
    LabelStackEntry::new(
        Label::new(label).unwrap(),
        CosBits::new(cos).unwrap(),
        false,
        ttl,
    )
}

fn lbl(v: u32) -> Label {
    Label::new(v).unwrap()
}

#[test]
fn swap_replaces_label_decrements_ttl_keeps_cos() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 100, lbl(200), IbOperation::Swap);
    m.user_push(entry(100, 5, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    let s = m.stack_snapshot();
    s.validate().unwrap();
    let top = s.top().unwrap();
    assert_eq!(top.label.value(), 200);
    assert_eq!(top.cos.value(), 5, "CoS unchanged by the embedded MPLS");
    assert_eq!(top.ttl, 63, "TTL decremented once");
    assert!(top.bottom);
}

#[test]
fn push_adds_level_and_preserves_inner_entry() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 100, lbl(300), IbOperation::Push);
    m.user_push(entry(100, 3, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Push
        }
    );
    let s = m.stack_snapshot();
    s.validate().unwrap();
    assert_eq!(s.depth(), 2);
    assert_eq!(s.entries()[0].label.value(), 300, "new label on top");
    assert_eq!(s.entries()[0].ttl, 63);
    assert_eq!(s.entries()[0].cos.value(), 3, "tunnel entry inherits CoS");
    assert_eq!(s.entries()[1].label.value(), 100, "old label below");
    assert_eq!(s.entries()[1].ttl, 63, "old entry carries decremented TTL");
}

#[test]
fn pop_removes_level_and_propagates_ttl() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    // Two-level stack; the top (inner tunnel) label pops at tunnel exit.
    m.user_push(entry(10, 0, 40)); // becomes bottom
    m.user_push(entry(20, 0, 30)); // top
    m.write_pair(Level::L3, 20, lbl(0), IbOperation::Pop);
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Pop
        }
    );
    let s = m.stack_snapshot();
    s.validate().unwrap();
    assert_eq!(s.depth(), 1);
    assert_eq!(s.entries()[0].label.value(), 10);
    assert_eq!(s.entries()[0].ttl, 29, "outer TTL propagated inward");
}

#[test]
fn pop_to_empty_at_egress_ler() {
    let mut m = LabelStackModifier::new(RouterType::Ler);
    m.user_push(entry(55, 0, 8));
    m.write_pair(Level::L2, 55, lbl(0), IbOperation::Pop);
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Pop
        }
    );
    assert_eq!(m.stack_depth(), 0);
}

#[test]
fn ingress_ler_push_uses_packet_identifier_and_control_path_values() {
    let mut m = LabelStackModifier::new(RouterType::Ler);
    m.write_pair(Level::L1, 0x0a000001, lbl(777), IbOperation::Push);
    let r = m.update_stack(0x0a000001, CosBits::EXPEDITED, 63);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Push
        }
    );
    let s = m.stack_snapshot();
    let top = s.top().unwrap();
    assert_eq!(top.label.value(), 777);
    assert_eq!(top.cos, CosBits::EXPEDITED, "CoS from control path");
    assert_eq!(top.ttl, 63, "TTL from control path, not decremented");
    assert!(top.bottom);
}

#[test]
fn lsr_discards_unlabeled_packets() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L1, 0x0a000001, lbl(777), IbOperation::Push);
    let r = m.update_stack(0x0a000001, CosBits::BEST_EFFORT, 64);
    assert_eq!(
        r.outcome,
        Outcome::Discarded(DiscardReason::InconsistentOperation),
        "rtrtype high forbids the LER empty-stack path"
    );
}

#[test]
fn miss_discards_and_resets_stack() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.user_push(entry(123, 0, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.outcome, Outcome::Discarded(DiscardReason::NoEntryFound));
    assert_eq!(m.stack_depth(), 0, "label stack is reset on discard");
}

#[test]
fn expired_ttl_discards() {
    for ttl in [0u8, 1] {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        m.write_pair(Level::L2, 9, lbl(10), IbOperation::Swap);
        m.user_push(entry(9, 0, ttl));
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(
            r.outcome,
            Outcome::Discarded(DiscardReason::TtlExpired),
            "ttl={ttl}"
        );
        assert_eq!(m.stack_depth(), 0);
    }
}

#[test]
fn nop_entry_is_inconsistent() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 9, lbl(10), IbOperation::Nop);
    m.user_push(entry(9, 0, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Discarded(DiscardReason::InconsistentOperation)
    );
}

#[test]
fn push_onto_full_stack_is_inconsistent() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for l in [1u32, 2, 3] {
        m.user_push(entry(l, 0, 64));
    }
    m.write_pair(Level::L3, 3, lbl(4), IbOperation::Push);
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Discarded(DiscardReason::InconsistentOperation)
    );
}

#[test]
fn swap_on_full_stack_is_fine() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for l in [1u32, 2, 3] {
        m.user_push(entry(l, 0, 64));
    }
    m.write_pair(Level::L3, 3, lbl(4), IbOperation::Swap);
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    assert_eq!(m.stack_depth(), 3);
    assert_eq!(m.stack_snapshot().top().unwrap().label.value(), 4);
}

#[test]
fn user_pop_empty_is_fault() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    assert_eq!(m.user_pop().outcome, Outcome::StackFault);
}

#[test]
fn user_push_overflow_is_fault() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for l in [1u32, 2, 3] {
        assert_eq!(m.user_push(entry(l, 0, 64)).outcome, Outcome::Done);
    }
    assert_eq!(m.user_push(entry(4, 0, 64)).outcome, Outcome::StackFault);
    assert_eq!(m.stack_depth(), 3);
}

#[test]
fn write_to_full_level_rejected() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..1024u64 {
        assert_eq!(
            m.write_pair(Level::L1, i, lbl(1), IbOperation::Push)
                .outcome,
            Outcome::Done
        );
    }
    assert_eq!(
        m.write_pair(Level::L1, 5000, lbl(1), IbOperation::Push)
            .outcome,
        Outcome::WriteRejected
    );
}

#[test]
fn first_written_pair_wins_on_duplicate_indices() {
    // The search scans from slot 0 upward and stops at the first match, so
    // re-binding a label requires rewriting the level (documented control-
    // plane contract).
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 5, lbl(100), IbOperation::Swap);
    m.write_pair(Level::L2, 5, lbl(200), IbOperation::Swap);
    let r = m.lookup(Level::L2, 5);
    assert_eq!(
        r.outcome,
        Outcome::LookupHit {
            label: lbl(100),
            op: IbOperation::Swap
        }
    );
}

#[test]
fn levels_are_independent() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 5, lbl(100), IbOperation::Swap);
    assert_eq!(m.lookup(Level::L3, 5).outcome, Outcome::LookupMiss);
    assert_eq!(m.lookup(Level::L1, 5).outcome, Outcome::LookupMiss);
    assert!(matches!(
        m.lookup(Level::L2, 5).outcome,
        Outcome::LookupHit { .. }
    ));
}

#[test]
fn reset_clears_stack_and_info_base() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 5, lbl(100), IbOperation::Swap);
    m.user_push(entry(9, 0, 64));
    m.reset();
    assert_eq!(m.stack_depth(), 0);
    assert_eq!(m.info_base().total_occupancy(), 0);
    assert_eq!(m.lookup(Level::L2, 5).outcome, Outcome::LookupMiss);
}

#[test]
fn back_to_back_operations_are_isolated() {
    // The main FSM serializes sub-machines; results of one operation must
    // not leak into the next.
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 1, lbl(10), IbOperation::Swap);
    m.user_push(entry(1, 0, 64));
    assert!(matches!(
        m.update_stack(0, CosBits::BEST_EFFORT, 0).outcome,
        Outcome::Updated { .. }
    ));
    // Immediately run a miss; previous hit state must not linger.
    m.user_push(entry(999, 0, 64)); // depth 2 -> L3 (empty) -> miss
    assert_eq!(
        m.update_stack(0, CosBits::BEST_EFFORT, 0).outcome,
        Outcome::Discarded(DiscardReason::NoEntryFound)
    );
    // And a fresh hit works again after the discard reset the stack.
    m.user_push(entry(1, 0, 64));
    assert!(matches!(
        m.update_stack(0, CosBits::BEST_EFFORT, 0).outcome,
        Outcome::Updated { .. }
    ));
}

proptest! {
    /// For random level-2 programs and a random labeled packet, the
    /// modifier either applies the first matching pair's operation with
    /// correct stack contents, or discards for the documented reason.
    #[test]
    fn random_swap_program_behaves(
        pairs in proptest::collection::vec((1u64..64, 16u32..1000), 1..32),
        top_label in 1u64..64,
        ttl in 2u8..,
        cos in 0u8..=7,
    ) {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for (idx, new_label) in &pairs {
            m.write_pair(Level::L2, *idx, lbl(*new_label), IbOperation::Swap);
        }
        m.user_push(entry(top_label as u32, cos, ttl));
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        let expected = pairs.iter().find(|(idx, _)| *idx == top_label);
        match expected {
            Some((_, new_label)) => {
                prop_assert_eq!(r.outcome, Outcome::Updated { op: IbOperation::Swap });
                let s = m.stack_snapshot();
                prop_assert_eq!(s.top().unwrap().label.value(), *new_label);
                prop_assert_eq!(s.top().unwrap().ttl, ttl - 1);
                prop_assert_eq!(s.top().unwrap().cos.value(), cos);
            }
            None => {
                prop_assert_eq!(r.outcome, Outcome::Discarded(DiscardReason::NoEntryFound));
                prop_assert_eq!(m.stack_depth(), 0);
            }
        }
    }

    /// Search cost is exactly 3k+5 / 3n+5 for arbitrary programs.
    #[test]
    fn search_cost_formula_holds(
        n in 1u64..48,
        key_pos in 0u64..48,
    ) {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for i in 0..n {
            m.write_pair(Level::L2, i + 1, lbl(700), IbOperation::Swap);
        }
        let r = m.lookup(Level::L2, key_pos + 1);
        if key_pos < n {
            prop_assert_eq!(r.cycles, 3 * (key_pos + 1) + 5);
        } else {
            prop_assert_eq!(r.cycles, 3 * n + 5);
            prop_assert_eq!(r.outcome, Outcome::LookupMiss);
        }
    }

    /// The hardware stack's S-bit invariant survives arbitrary user
    /// push/pop interleavings.
    #[test]
    fn stack_invariant_over_user_ops(ops in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for (i, push) in ops.into_iter().enumerate() {
            if push {
                m.user_push(entry((i as u32 % 1000) + 1, 0, 64));
            } else {
                m.user_pop();
            }
            m.stack_snapshot().validate().unwrap();
        }
    }
}
