//! Table 6 cycle-accuracy tests: every row of the paper's timing table is
//! asserted against the cycle-accurate model, including the 6167-cycle
//! composite worst case of §4.

use mpls_core::modifier::Outcome;
use mpls_core::{table6, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_packet::{label::LabelStackEntry, CosBits, Label};

fn entry(label: u32, ttl: u8) -> LabelStackEntry {
    LabelStackEntry::new(Label::new(label).unwrap(), CosBits::BEST_EFFORT, false, ttl)
}

fn lbl(v: u32) -> Label {
    Label::new(v).unwrap()
}

#[test]
fn reset_takes_3_cycles() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let r = m.reset();
    assert_eq!(r.cycles, table6::RESET);
    assert_eq!(r.outcome, Outcome::Done);
}

#[test]
fn user_push_takes_3_cycles() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let r = m.user_push(entry(100, 64));
    assert_eq!(r.cycles, table6::USER_PUSH);
    assert_eq!(r.outcome, Outcome::Done);
    assert_eq!(m.stack_depth(), 1);
}

#[test]
fn user_pop_takes_3_cycles() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.user_push(entry(100, 64));
    let r = m.user_pop();
    assert_eq!(r.cycles, table6::USER_POP);
    assert!(matches!(r.outcome, Outcome::Popped(e) if e.label.value() == 100));
}

#[test]
fn write_pair_takes_3_cycles() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let r = m.write_pair(Level::L2, 7, lbl(700), IbOperation::Swap);
    assert_eq!(r.cycles, table6::WRITE_PAIR);
    assert_eq!(r.outcome, Outcome::Done);
}

#[test]
fn search_miss_costs_3n_plus_5_for_all_small_n() {
    for n in 0u64..=20 {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for i in 0..n {
            m.write_pair(Level::L2, i + 1, lbl(500 + i as u32), IbOperation::Swap);
        }
        // Key 999 999 is stored nowhere.
        let r = m.lookup(Level::L2, 99_9999 & 0xF_FFFF);
        assert_eq!(r.cycles, table6::search(n), "miss among n={n}");
        assert_eq!(r.outcome, Outcome::LookupMiss);
    }
}

#[test]
fn search_hit_costs_3k_plus_5() {
    let n = 16u64;
    for k in 1..=n {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for i in 0..n {
            m.write_pair(Level::L3, i + 1, lbl(500 + i as u32), IbOperation::Pop);
        }
        // The pair with index k sits at 1-based position k.
        let r = m.lookup(Level::L3, k);
        assert_eq!(r.cycles, table6::search_hit_at(k), "hit at k={k}");
        assert_eq!(
            r.outcome,
            Outcome::LookupHit {
                label: lbl(500 + k as u32 - 1),
                op: IbOperation::Pop
            }
        );
    }
}

#[test]
fn search_over_full_level_costs_3077() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..1024u64 {
        let r = m.write_pair(Level::L2, i + 1, lbl(i as u32), IbOperation::Swap);
        assert_eq!(r.outcome, Outcome::Done);
    }
    let r = m.lookup(Level::L2, 0xF_FFFF); // miss
    assert_eq!(r.cycles, table6::search(1024));
    assert_eq!(r.cycles, 3077);
}

#[test]
fn swap_from_info_base_costs_search_plus_6() {
    for (n, k) in [(1u64, 1u64), (10, 4), (10, 10), (64, 33)] {
        let mut m = LabelStackModifier::new(RouterType::Lsr);
        for i in 0..n {
            m.write_pair(Level::L2, i + 1, lbl(500 + i as u32), IbOperation::Swap);
        }
        m.user_push(entry(k as u32, 64));
        let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
        assert_eq!(
            r.cycles,
            table6::search_hit_at(k) + table6::SWAP_FROM_IB,
            "swap with n={n} hit at k={k}"
        );
        assert_eq!(
            r.outcome,
            Outcome::Updated {
                op: IbOperation::Swap
            }
        );
    }
}

#[test]
fn pop_from_info_base_costs_search_plus_6() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 42, lbl(0), IbOperation::Pop);
    m.user_push(entry(42, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::search_hit_at(1) + table6::POP_FROM_IB);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Pop
        }
    );
    assert_eq!(m.stack_depth(), 0);
}

#[test]
fn push_from_info_base_costs_search_plus_7_on_nonempty_stack() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 42, lbl(900), IbOperation::Push);
    m.user_push(entry(42, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::search_hit_at(1) + table6::PUSH_FROM_IB);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Push
        }
    );
    assert_eq!(m.stack_depth(), 2);
}

#[test]
fn push_from_info_base_costs_search_plus_6_on_empty_stack() {
    let mut m = LabelStackModifier::new(RouterType::Ler);
    m.write_pair(Level::L1, 0xc0a80101, lbl(900), IbOperation::Push);
    let r = m.update_stack(0xc0a80101, CosBits::EXPEDITED, 64);
    assert_eq!(
        r.cycles,
        table6::search_hit_at(1) + table6::PUSH_FROM_IB_EMPTY
    );
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Push
        }
    );
}

#[test]
fn update_miss_costs_search_plus_2() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    for i in 0..5u64 {
        m.write_pair(Level::L2, i + 1, lbl(500), IbOperation::Swap);
    }
    m.user_push(entry(999, 64));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::update_miss(5));
    assert_eq!(
        r.outcome,
        Outcome::Discarded(mpls_core::DiscardReason::NoEntryFound)
    );
}

#[test]
fn verify_discard_costs_search_plus_5() {
    // TTL of 1 decrements to zero: discarded in VERIFY INFO.
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.write_pair(Level::L2, 8, lbl(700), IbOperation::Swap);
    m.user_push(entry(8, 1));
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(r.cycles, table6::update_verify_discard(1));
    assert_eq!(
        r.outcome,
        Outcome::Discarded(mpls_core::DiscardReason::TtlExpired)
    );
}

/// The paper's §4 composite: reset + 3 user pushes + 1024 writes + a swap
/// whose search scans a full level = 6167 cycles ⇒ ~123.34 µs at 50 MHz.
#[test]
fn worst_case_scenario_totals_6167_cycles() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let mut total = 0u64;

    total += m.reset().cycles;
    // Three pushes; top label 1024 will match the last-written pair.
    for l in [1u32, 2, 1024] {
        total += m.user_push(entry(l, 64)).cycles;
    }
    // Fill level 3 (the level a depth-3 stack consults) completely.
    // Pair i: index i+1 -> label i.
    for i in 0..1024u64 {
        total += m
            .write_pair(Level::L3, i + 1, lbl(i as u32), IbOperation::Swap)
            .cycles;
    }
    // Swap: top label is 1024, stored at position 1024 (worst case).
    let r = m.update_stack(0, CosBits::BEST_EFFORT, 0);
    assert_eq!(
        r.outcome,
        Outcome::Updated {
            op: IbOperation::Swap
        }
    );
    total += r.cycles;

    assert_eq!(total, 6167);
    assert_eq!(total, table6::worst_case_scenario());

    let us = mpls_core::ClockSpec::STRATIX_50MHZ.cycles_to_us(total);
    assert!((us - 123.34).abs() < 0.01, "{us} µs");
}

#[test]
fn total_cycles_counter_accumulates() {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    let a = m.user_push(entry(1, 9)).cycles;
    let b = m.user_pop().cycles;
    m.idle(4);
    assert_eq!(m.total_cycles(), a + b + 4);
}
