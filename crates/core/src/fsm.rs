//! The four state machines of the control unit (paper §3.1, Figs. 8–11).
//!
//! "The control unit of the label stack modifier is composed of four state
//! machines. Those state machines are the label stack \[interface\], \[the
//! information base interface], search and main."
//!
//! All four are Moore machines: every control output is a function of the
//! current state, and every transition commits on the common clock edge.
//! The one Mealy shortcut (noted inline) is the information-base
//! interface's ready line, which combines its state with the search
//! machine's done output so that an operation retires in the cycle counts
//! of Table 6.

use serde::{Deserialize, Serialize};

/// Main interface FSM (Fig. 8). "It is used to ensure that the remaining
/// state machines are not working at the same time and possibly generate
/// inconsistent results."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MainState {
    /// Waiting for an external operation.
    #[default]
    Idle,
    /// `LABEL INTERFACE ACTIVE`: the label stack interface is enabled.
    LblInterfaceActive,
    /// `INFO BASE INTERFACE ACTIVE`: the info base interface is enabled.
    IbInterfaceActive,
}

/// Label stack interface FSM (Fig. 9). Executes user pushes/pops directly
/// and drives the search + modify sequence for stack updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LblState {
    /// Waiting to be enabled by the main interface.
    #[default]
    Idle,
    /// `USER PUSH`: push external data onto the stack.
    UserPush,
    /// `USER POP`: pop the top entry for the user.
    UserPop,
    /// `SEARCH ENABLE`: the search FSM is running on our behalf.
    SearchEnable,
    /// `REMOVE TOP`: pop the top entry into the modification register.
    RemoveTop,
    /// `UPDATE TTL`: load the TTL counter with the decremented TTL.
    UpdateTtl,
    /// `VERIFY INFO`: check operation consistency and TTL expiry.
    VerifyInfo,
    /// `UPDATE TOP`: pop path — write the propagated TTL into the newly
    /// exposed top entry.
    UpdateTop,
    /// `PUSH OLD`: push path — re-push the removed entry first.
    PushOld,
    /// `PUSH NEW`: load the new/modified entry register.
    PushNew,
    /// Drive `svstkval`/`stckctrl` to commit the entry register into the
    /// stack.
    SaveEntry,
    /// `DISCARD PACKET`: reset the label stack and raise `pktdcrd`.
    DiscardPacket,
    /// Signal `donelblupdt` to the main interface for one cycle.
    Done,
}

impl LblState {
    /// Moore output `donelblupdt` / label-stack-ready: high in the states
    /// whose completion retires the operation.
    pub fn done(self) -> bool {
        matches!(self, Self::UserPush | Self::UserPop | Self::Done)
    }
}

/// Information base interface FSM (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IbState {
    /// Waiting to be enabled by the main interface.
    #[default]
    Idle,
    /// `WRITE LABEL PAIR`: direct write of index/label/operation.
    WritePair,
    /// `SEARCH ENABLE`: the search FSM is running on our behalf.
    SearchEnable,
}

/// Search FSM (Fig. 11). "Once it has been enabled, the search \[FSM\]
/// iterates through the label pair entries of a specified level."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchState {
    /// Waiting for `srchenbl`.
    #[default]
    Idle,
    /// `READ INFO BASE`: drive the read address counters into the level's
    /// memory components.
    Read,
    /// `WAIT FOR INFO`: absorb the synchronous RAM's one-cycle read
    /// latency.
    WaitInfo,
    /// `COMPARE VALUES`: drive the 32/20-bit comparator with the index
    /// output and the search key; the 10-bit comparator checks for
    /// exhaustion.
    Compare,
    /// `WAIT FOR READ VALUE`: "a delay occurs so the values can appear" —
    /// register the label/operation outputs.
    FoundWait,
    /// Assert `srchdone` with `item_found` for one cycle.
    DoneHit,
    /// Value does not exist: one delay cycle, mirroring [`Self::FoundWait`].
    MissWait,
    /// Assert `srchdone` without `item_found`; `pktdcrd` accompanies it.
    DoneMiss,
}

impl SearchState {
    /// Moore output `srchdone`.
    pub fn done(self) -> bool {
        matches!(self, Self::DoneHit | Self::DoneMiss)
    }

    /// Moore output `item_found` (only meaningful while `done`).
    pub fn found(self) -> bool {
        matches!(self, Self::DoneHit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_idle() {
        assert_eq!(MainState::default(), MainState::Idle);
        assert_eq!(LblState::default(), LblState::Idle);
        assert_eq!(IbState::default(), IbState::Idle);
        assert_eq!(SearchState::default(), SearchState::Idle);
    }

    #[test]
    fn done_outputs() {
        assert!(LblState::UserPush.done());
        assert!(LblState::UserPop.done());
        assert!(LblState::Done.done());
        assert!(!LblState::SearchEnable.done());
        assert!(!LblState::VerifyInfo.done());

        assert!(SearchState::DoneHit.done());
        assert!(SearchState::DoneMiss.done());
        assert!(SearchState::DoneHit.found());
        assert!(!SearchState::DoneMiss.found());
        assert!(!SearchState::Compare.done());
    }
}
