//! The control-unit signal dictionary (paper Tables 1–5).
//!
//! The paper specifies the modifier's interfaces as five tables of named
//! signals. This module records them as queryable data so that waveform
//! tooling, documentation and tests can cross-reference the model
//! against the paper's naming. Each entry maps a paper signal to the
//! model construct that realizes it.

/// Which paper table a signal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalTable {
    /// Table 1: signals for the main interface.
    Main,
    /// Tables 2–3: signals for the label stack interface.
    LabelStack,
    /// Table 4: signals for the information base interface.
    InfoBase,
    /// Table 5: signals for the search module.
    Search,
}

/// Signal direction relative to the owning module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Driven into the module.
    Input,
    /// Driven by the module.
    Output,
}

/// One dictionary entry.
#[derive(Debug, Clone, Copy)]
pub struct SignalDef {
    /// The paper's signal name.
    pub name: &'static str,
    /// Owning table.
    pub table: SignalTable,
    /// Direction.
    pub direction: Direction,
    /// The paper's description (abridged).
    pub description: &'static str,
    /// Where the model realizes it.
    pub realized_by: &'static str,
}

/// The full dictionary. Names are unique across tables (signals shared
/// between tables appear once, under their defining table).
pub const SIGNALS: &[SignalDef] = &[
    // ---- Table 1: main interface ------------------------------------------
    SignalDef {
        name: "clk",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Clock signal",
        realized_by: "LabelStackModifier::step (one call = one rising edge)",
    },
    SignalDef {
        name: "reset",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Reset signal",
        realized_by: "LabelStackModifier::reset (3-cycle sequence)",
    },
    SignalDef {
        name: "enable",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Enables operations",
        realized_by: "Command latched in LabelStackModifier::execute",
    },
    SignalDef {
        name: "enableibint",
        table: SignalTable::Main,
        direction: Direction::Output,
        description: "Used to enable the information base interface",
        realized_by: "Moore output of MainState::IbInterfaceActive",
    },
    SignalDef {
        name: "enablelblint",
        table: SignalTable::Main,
        direction: Direction::Output,
        description: "Used to enable the label stack interface",
        realized_by: "Moore output of MainState::LblInterfaceActive",
    },
    SignalDef {
        name: "extoperation",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates the desired operation from the user",
        realized_by: "modifier::Command",
    },
    SignalDef {
        name: "ibready",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates that the information base interface has finished an operation",
        realized_by: "ib_ready in LabelStackModifier::step",
    },
    SignalDef {
        name: "lblstckready",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates that the label stack interface has finished an operation",
        realized_by: "LblState::done()",
    },
    SignalDef {
        name: "readdata",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates that data should be read from the processor",
        realized_by: "Command::Lookup",
    },
    SignalDef {
        name: "savedata",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates that data should be saved in the processor",
        realized_by: "Command::WritePair",
    },
    SignalDef {
        name: "updatelblstk",
        table: SignalTable::Main,
        direction: Direction::Input,
        description: "Indicates that the label stack should be updated",
        realized_by: "Command::UpdateStack",
    },
    // ---- Tables 2–3: label stack interface ---------------------------------
    SignalDef {
        name: "bttmstckbit",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "The bit of a label stack entry used to indicate the bottom of the stack",
        realized_by: "bottom recomputed on every stack write (HwStack / LblState::PushNew)",
    },
    SignalDef {
        name: "cosbits",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "The class of service bits that are part of the label stack entry",
        realized_by: "LabelStackEntry::cos",
    },
    SignalDef {
        name: "cosbitssrc",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Selects CoS from the stack entry or the control path",
        realized_by: "came_from_empty branch in LblState::PushNew",
    },
    SignalDef {
        name: "dpoperation",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "The desired operation as indicated by the data path",
        realized_by: "DataPath::op_reg (the operation_out register)",
    },
    SignalDef {
        name: "donelblupdt",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Indicates that the operation is complete",
        realized_by: "Moore output of LblState::Done",
    },
    SignalDef {
        name: "indexsource",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Selects the index from memory or a label stack entry",
        realized_by: "search_key latch in LblState::Idle dispatch",
    },
    SignalDef {
        name: "itemfound",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "Indicates if the search found an entry",
        realized_by: "SearchState::found()",
    },
    SignalDef {
        name: "lblop",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "The operation to be performed on the stack",
        realized_by: "HwStack staged StackCtl",
    },
    SignalDef {
        name: "newlblsrc",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Indicates the source of the label for a new entry",
        realized_by: "new_label_reg mux in LblState::PushNew",
    },
    SignalDef {
        name: "pktdcrd",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Indicates if the packet has been discarded",
        realized_by: "DataPath::discard_reg (the packetdiscard probe)",
    },
    SignalDef {
        name: "rtrtype",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "Router type: low = LER, high = LSR",
        realized_by: "ops::RouterType",
    },
    SignalDef {
        name: "srchdone",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "Indicates if a search of the information base was successful",
        realized_by: "SearchState::done()",
    },
    SignalDef {
        name: "srchenbl",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Begins searching the information base",
        realized_by: "Moore output of LblState::SearchEnable / IbState::SearchEnable",
    },
    SignalDef {
        name: "svstkval",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Used to save all values of a new stack entry",
        realized_by: "LblState::SaveEntry committing entry_reg into the stack",
    },
    SignalDef {
        name: "stckctrl",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Used to add or remove entries from the stack",
        realized_by: "HwStack::stage_push/stage_pop/stage_write_top/stage_clear",
    },
    SignalDef {
        name: "stkentsrc",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Stack entry from external data or the updated entry",
        realized_by: "UserPush (external) vs SaveEntry (entry_reg) paths",
    },
    SignalDef {
        name: "stacksize",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "The current size of the label stack",
        realized_by: "HwStack::size (the stack_items probe)",
    },
    SignalDef {
        name: "ttl",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "The current value of the TTL",
        realized_by: "DataPath::ttl_ctr.value()",
    },
    SignalDef {
        name: "ttlcntctrl",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "Control for the counter containing the TTL",
        realized_by: "CounterCtl staged in LblState::UpdateTtl",
    },
    SignalDef {
        name: "ttlsource",
        table: SignalTable::LabelStack,
        direction: Direction::Output,
        description: "TTL from a counter or the stack",
        realized_by: "came_from_empty branch in LblState::UpdateTtl",
    },
    SignalDef {
        name: "ttlvalue",
        table: SignalTable::LabelStack,
        direction: Direction::Input,
        description: "The value of the TTL for a stack entry",
        realized_by: "LabelStackEntry::ttl",
    },
    // ---- Table 4: information base interface -------------------------------
    SignalDef {
        name: "dnibupdate",
        table: SignalTable::InfoBase,
        direction: Direction::Output,
        description: "Indicates that an operation has completed",
        realized_by: "ib_ready in LabelStackModifier::step",
    },
    SignalDef {
        name: "writecontrol",
        table: SignalTable::InfoBase,
        direction: Direction::Output,
        description: "Used to write values to the information base",
        realized_by: "InfoBaseLevel::stage_write_pair",
    },
    // ---- Table 5: search module ---------------------------------------------
    SignalDef {
        name: "aeb_10b",
        table: SignalTable::Search,
        direction: Direction::Input,
        description: "10-bit comparator equality (read vs write address)",
        realized_by: "DataPath::cmp10 driven in SearchState::Compare",
    },
    SignalDef {
        name: "aeb_20b",
        table: SignalTable::Search,
        direction: Direction::Input,
        description: "20-bit comparator equality (label vs level-2/3 index)",
        realized_by: "DataPath::cmp20",
    },
    SignalDef {
        name: "aeb_32b",
        table: SignalTable::Search,
        direction: Direction::Input,
        description: "32-bit comparator equality (packet id vs level-1 index)",
        realized_by: "DataPath::cmp32",
    },
    SignalDef {
        name: "infoenbl",
        table: SignalTable::Search,
        direction: Direction::Output,
        description: "Indicates that the desired entry was found",
        realized_by: "SearchState::FoundWait loading the output registers",
    },
    SignalDef {
        name: "item_found",
        table: SignalTable::Search,
        direction: Direction::Output,
        description: "Search output: the entry exists",
        realized_by: "SearchState::found()",
    },
    SignalDef {
        name: "level",
        table: SignalTable::Search,
        direction: Direction::Input,
        description: "The level being searched in the information base",
        realized_by: "active_level latch (the level probe)",
    },
    SignalDef {
        name: "level_source",
        table: SignalTable::Search,
        direction: Direction::Input,
        description: "Source of the level for the information base",
        realized_by: "level_override in Command::UpdateStack",
    },
    SignalDef {
        name: "readaddrctrl",
        table: SignalTable::Search,
        direction: Direction::Output,
        description: "Controls the read address in the information base",
        realized_by: "InfoBaseLevel::stage_advance_cursor / stage_clear_cursor",
    },
    SignalDef {
        name: "readvals",
        table: SignalTable::Search,
        direction: Direction::Output,
        description: "Reads the index, label and operation from the information base",
        realized_by: "InfoBaseLevel::stage_read_at_cursor",
    },
    SignalDef {
        name: "searchdone",
        table: SignalTable::Search,
        direction: Direction::Output,
        description: "Indicates that the search is complete",
        realized_by: "SearchState::done() (the lookup_done probe)",
    },
];

/// Looks a signal up by its paper name.
pub fn find(name: &str) -> Option<&'static SignalDef> {
    SIGNALS.iter().find(|s| s.name == name)
}

/// All signals of one table.
pub fn table(table: SignalTable) -> impl Iterator<Item = &'static SignalDef> {
    SIGNALS.iter().filter(move |s| s.table == table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for s in SIGNALS {
            assert!(seen.insert(s.name), "duplicate signal {}", s.name);
        }
    }

    #[test]
    fn every_table_is_populated() {
        for t in [
            SignalTable::Main,
            SignalTable::LabelStack,
            SignalTable::InfoBase,
            SignalTable::Search,
        ] {
            assert!(table(t).count() >= 2, "{t:?} underpopulated");
        }
    }

    #[test]
    fn lookup_by_name() {
        let s = find("srchdone").expect("srchdone exists");
        assert_eq!(s.table, SignalTable::LabelStack);
        assert!(find("no_such_signal").is_none());
    }

    #[test]
    fn descriptions_and_realizations_are_nonempty() {
        for s in SIGNALS {
            assert!(!s.description.is_empty(), "{}", s.name);
            assert!(!s.realized_by.is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn comparator_trio_is_present() {
        for name in ["aeb_10b", "aeb_20b", "aeb_32b"] {
            assert!(find(name).is_some(), "missing {name}");
        }
    }
}
