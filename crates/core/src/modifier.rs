//! The label stack modifier: control unit + data path, integrated
//! (paper Fig. 7), with cycle-accurate execution.
//!
//! # Cycle accounting
//!
//! An operation's cost is the number of clock cycles from the first edge
//! after the external operation lines are asserted (with the main interface
//! idle) until the edge at which the main interface returns to idle. Under
//! this convention the model reproduces Table 6 of the paper exactly:
//!
//! | operation                  | cycles          |
//! |----------------------------|-----------------|
//! | reset                      | 3               |
//! | push from the user         | 3               |
//! | pop from the user          | 3               |
//! | write label pair           | 3               |
//! | search information base    | 3k + 5 (hit at entry k), 3n + 5 (miss among n) |
//! | swap from the info base    | 6 (after the search retires)                  |
//!
//! The `3k + 5` shape is not hard-coded anywhere: it emerges from the
//! two-cycle dispatch, the one-cycle search start, the three-cycle
//! read/wait/compare loop imposed by the synchronous RAM's read latency,
//! the one-cycle output delay and the one-cycle done pulse.

use crate::datapath::DataPath;
use crate::fsm::{IbState, LblState, MainState, SearchState};
use crate::ops::{DiscardReason, IbOperation, Level, RouterType};
use crate::perf::CorePerf;
use mpls_packet::{label::LabelStackEntry, CosBits, Label, LabelStack, Ttl};
use mpls_rtl::{Clocked, CounterCtl, SignalId, Trace};

/// An external operation presented on the modifier's input pins
/// (`extOperation` plus the data-in bus of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// "push from external user": push a complete 32-bit entry.
    UserPush(LabelStackEntry),
    /// "pop from external user".
    UserPop,
    /// Store a label pair: `index -> (new_label, operation)` at a level.
    WritePair {
        /// Target level.
        level: Level,
        /// Packet identifier (level 1) or old label (levels 2–3).
        index: u64,
        /// The replacement/pushed label.
        new_label: Label,
        /// What a stack update should do when this entry matches.
        op: IbOperation,
    },
    /// Read the information base: search `level` for `key`.
    Lookup {
        /// Level to search.
        level: Level,
        /// Packet identifier (level 1) or label (levels 2–3).
        key: u64,
    },
    /// "update stack command from user": the full per-packet operation —
    /// search the appropriate level, then push/pop/swap the stack.
    UpdateStack {
        /// The packet identifier, used when the stack is empty (ingress
        /// LER) and ignored otherwise.
        packet_id: u32,
        /// CoS from the control path for a fresh push ("CoS bits from
        /// control path", Fig. 12).
        push_cos: CosBits,
        /// TTL from the control path for a fresh push ("TTL from control
        /// path").
        push_ttl: Ttl,
        /// Overrides the automatic stack-depth-based level selection
        /// (the `level`/`level_source` inputs of Fig. 12).
        level_override: Option<Level>,
    },
}

/// What an executed operation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed with nothing to report (user push, write pair, reset).
    Done,
    /// A user pop returned this entry.
    Popped(LabelStackEntry),
    /// The stack over- or under-flowed on a direct user operation.
    StackFault,
    /// A write to a full level was rejected.
    WriteRejected,
    /// A lookup found the pair.
    LookupHit {
        /// The stored new label.
        label: Label,
        /// The stored operation.
        op: IbOperation,
    },
    /// A lookup found nothing (`packetdiscard` accompanies `lookup_done`).
    LookupMiss,
    /// A stack update applied this operation.
    Updated {
        /// The operation the matching entry prescribed.
        op: IbOperation,
    },
    /// The packet was discarded and the stack reset.
    Discarded(DiscardReason),
}

/// The result of a high-level operation: its outcome and its exact cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Clock cycles consumed.
    pub cycles: u64,
    /// What happened.
    pub outcome: Outcome,
}

/// Waveform probes attached to the modifier; names follow the paper's
/// Fig. 14–16 simulations.
#[derive(Debug, Clone)]
struct Probes {
    level: SignalId,
    packetid: SignalId,
    label_lookup: SignalId,
    old_label: SignalId,
    new_label: SignalId,
    operation_in: SignalId,
    save: SignalId,
    lookup: SignalId,
    w_index: SignalId,
    r_index: SignalId,
    label_out: SignalId,
    operation_out: SignalId,
    lookup_done: SignalId,
    packetdiscard: SignalId,
    stack_items: SignalId,
}

/// The embedded label stack modifier.
#[derive(Debug, Clone)]
pub struct LabelStackModifier {
    router_type: RouterType,
    main: MainState,
    lbl: LblState,
    ib: IbState,
    search: SearchState,
    dp: DataPath,
    /// Latched external operation lines; held by the user for the duration
    /// of the operation.
    cmd: Option<Command>,
    /// Level latched when a search starts.
    active_level: Level,
    /// Key latched when a search starts (packet identifier or label).
    search_key: u64,
    /// Whether the stack was empty when the update began (ingress LER
    /// push path).
    came_from_empty: bool,
    /// Result latches.
    popped: Option<LabelStackEntry>,
    discard_reason: Option<DiscardReason>,
    write_rejected: bool,
    last_search_found: bool,
    /// Free-running cycle counter.
    total_cycles: u64,
    trace: Option<(Trace, Probes)>,
    /// Optional hardware-style performance counter block; one branch per
    /// clock when disabled, see [`crate::perf`].
    perf: Option<Box<CorePerf>>,
}

impl LabelStackModifier {
    /// Creates a modifier configured as `router_type` (the `rtrtype` pin).
    pub fn new(router_type: RouterType) -> Self {
        Self {
            router_type,
            main: MainState::Idle,
            lbl: LblState::Idle,
            ib: IbState::Idle,
            search: SearchState::Idle,
            dp: DataPath::new(),
            cmd: None,
            active_level: Level::L1,
            search_key: 0,
            came_from_empty: false,
            popped: None,
            discard_reason: None,
            write_rejected: false,
            last_search_found: false,
            total_cycles: 0,
            trace: None,
            perf: None,
        }
    }

    /// The configured router type.
    pub fn router_type(&self) -> RouterType {
        self.router_type
    }

    /// Total clock cycles elapsed since construction or the last counter
    /// reset.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// The current label stack as a software value.
    pub fn stack_snapshot(&self) -> LabelStack {
        self.dp.stack.snapshot()
    }

    /// Current stack depth.
    pub fn stack_depth(&self) -> usize {
        self.dp.stack.size()
    }

    /// Read-only access to the information base (the routing-functionality
    /// interface of Fig. 6 reads through here).
    pub fn info_base(&self) -> &crate::datapath::InfoBase {
        &self.dp.info_base
    }

    /// Attaches a waveform trace; subsequent cycles are recorded with the
    /// signal names of the paper's Figs. 14–16.
    pub fn enable_trace(&mut self) {
        let mut t = Trace::new();
        let probes = Probes {
            level: t.probe("level", 2),
            packetid: t.probe("packetid", 32),
            label_lookup: t.probe("label_lookup", 20),
            old_label: t.probe("old_label", 32),
            new_label: t.probe("new_label", 20),
            operation_in: t.probe("operation_in", 2),
            save: t.probe("save", 1),
            lookup: t.probe("lookup", 1),
            w_index: t.probe("w_index", 11),
            r_index: t.probe("r_index", 10),
            label_out: t.probe("label_out", 20),
            operation_out: t.probe("operation_out", 2),
            lookup_done: t.probe("lookup_done", 1),
            packetdiscard: t.probe("packetdiscard", 1),
            stack_items: t.probe("stack_items", 2),
        };
        self.trace = Some((t, probes));
    }

    /// Detaches and returns the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take().map(|(t, _)| t)
    }

    /// Attaches a fresh performance counter block (no-op if one is already
    /// attached). Counting is purely observational: outcomes and cycle
    /// costs are unchanged.
    pub fn enable_perf(&mut self) {
        if self.perf.is_none() {
            self.perf = Some(Box::default());
        }
    }

    /// The attached counter block, if any.
    pub fn perf(&self) -> Option<&CorePerf> {
        self.perf.as_deref()
    }

    /// Detaches and returns the counter block.
    pub fn take_perf(&mut self) -> Option<Box<CorePerf>> {
        self.perf.take()
    }

    /// Re-attaches a counter block (used to carry counters across a
    /// reprogramming that rebuilds the modifier).
    pub fn set_perf(&mut self, perf: Option<Box<CorePerf>>) {
        self.perf = perf;
    }

    #[inline]
    fn perf_tick(&mut self) {
        if let Some(p) = self.perf.as_deref_mut() {
            p.tick(self.main, self.lbl, self.ib, self.search);
        }
    }

    /// Asserts the external operation lines for `cmd` without clocking:
    /// the low-level half of [`Self::execute`], for callers that want to
    /// drive [`Self::step`] themselves (FSM-schedule tests, waveform
    /// tooling). The lines stay asserted until [`Self::finish_command`].
    pub fn begin(&mut self, cmd: Command) {
        debug_assert_eq!(self.main, MainState::Idle, "modifier busy");
        self.cmd = Some(cmd);
        self.popped = None;
        self.discard_reason = None;
        self.write_rejected = false;
        // `pktdcrd` is cleared when a new operation is accepted.
        self.dp.discard_reg.set(0);
    }

    /// True from the first clock after [`Self::begin`] until the main
    /// interface returns to idle.
    pub fn busy(&self) -> bool {
        self.main != MainState::Idle
    }

    /// Deasserts the operation lines after a manually stepped command.
    pub fn finish_command(&mut self) {
        self.cmd = None;
    }

    /// Current control-unit states `(main, label-stack, info-base,
    /// search)` — for schedule verification and debugging.
    pub fn fsm_states(&self) -> (MainState, LblState, IbState, SearchState) {
        (self.main, self.lbl, self.ib, self.search)
    }

    /// Executes `cmd` to completion, returning the outcome and exact cycle
    /// cost.
    pub fn execute(&mut self, cmd: Command) -> OpResult {
        self.begin(cmd);

        let mut cycles = 0u64;
        loop {
            self.step();
            cycles += 1;
            if cycles > 1 && self.main == MainState::Idle {
                break;
            }
            assert!(
                cycles < 8 * crate::datapath::LEVEL_CAPACITY as u64,
                "modifier failed to retire {cmd:?}"
            );
        }
        self.cmd = None;

        let outcome = match cmd {
            Command::UserPush(_) => {
                if self.dp.stack.fault() {
                    Outcome::StackFault
                } else {
                    Outcome::Done
                }
            }
            Command::UserPop => match self.popped {
                Some(e) => Outcome::Popped(e),
                None => Outcome::StackFault,
            },
            Command::WritePair { .. } => {
                if self.write_rejected {
                    Outcome::WriteRejected
                } else {
                    Outcome::Done
                }
            }
            Command::Lookup { .. } => {
                if self.last_search_found {
                    Outcome::LookupHit {
                        label: Label::from_masked(self.dp.new_label_reg.q() as u32),
                        op: IbOperation::from_bits(self.dp.op_reg.q()),
                    }
                } else {
                    Outcome::LookupMiss
                }
            }
            Command::UpdateStack { .. } => match self.discard_reason {
                Some(r) => Outcome::Discarded(r),
                None => Outcome::Updated {
                    op: IbOperation::from_bits(self.dp.op_reg.q()),
                },
            },
        };
        OpResult { cycles, outcome }
    }

    /// Asserts the reset line for the documented three cycles: control unit,
    /// interfaces and data path clear in sequence (Table 6: "Reset — 3").
    pub fn reset(&mut self) -> OpResult {
        for _ in 0..3 {
            self.sample_trace();
            self.perf_tick();
            self.total_cycles += 1;
        }
        self.main = MainState::Idle;
        self.lbl = LblState::Idle;
        self.ib = IbState::Idle;
        self.search = SearchState::Idle;
        self.cmd = None;
        self.dp.reset();
        self.popped = None;
        self.discard_reason = None;
        self.write_rejected = false;
        self.last_search_found = false;
        OpResult {
            cycles: 3,
            outcome: Outcome::Done,
        }
    }

    /// Runs `n` idle cycles (no operation asserted); useful to separate
    /// operations in recorded waveforms.
    pub fn idle(&mut self, n: u64) {
        debug_assert!(self.cmd.is_none());
        for _ in 0..n {
            self.step();
        }
    }

    // ---- convenience wrappers -------------------------------------------

    /// Pushes `entry` directly (user push).
    pub fn user_push(&mut self, entry: LabelStackEntry) -> OpResult {
        self.execute(Command::UserPush(entry))
    }

    /// Pops the top entry directly (user pop).
    pub fn user_pop(&mut self) -> OpResult {
        self.execute(Command::UserPop)
    }

    /// Stores a label pair.
    pub fn write_pair(
        &mut self,
        level: Level,
        index: u64,
        new_label: Label,
        op: IbOperation,
    ) -> OpResult {
        self.execute(Command::WritePair {
            level,
            index,
            new_label,
            op,
        })
    }

    /// Searches `level` for `key`.
    pub fn lookup(&mut self, level: Level, key: u64) -> OpResult {
        self.execute(Command::Lookup { level, key })
    }

    /// Performs the per-packet stack update.
    pub fn update_stack(&mut self, packet_id: u32, push_cos: CosBits, push_ttl: Ttl) -> OpResult {
        self.execute(Command::UpdateStack {
            packet_id,
            push_cos,
            push_ttl,
            level_override: None,
        })
    }

    // ---- the clocked machine --------------------------------------------

    /// Advances the design by one clock cycle.
    pub fn step(&mut self) {
        // Signals present during this clock period: register outputs were
        // committed at the previous edge, control outputs are Moore
        // functions of the current states. Sample the waveform first so the
        // trace reflects what an oscilloscope would see this period.
        self.sample_trace();
        self.perf_tick();

        // ---- Moore control outputs (Tables 1–5 signal names in comments).
        let enable_lbl = self.main == MainState::LblInterfaceActive; // enablelblint
        let enable_ib = self.main == MainState::IbInterfaceActive; // enableibint
        let srch_enable = // srchenbl
            self.lbl == LblState::SearchEnable || self.ib == IbState::SearchEnable;
        let srch_done = self.search.done(); // srchdone
        let item_found = self.search.found(); // itemfound
        let lbl_done = self.lbl.done(); // lblstckready / donelblupdt
                                        // ibready: Mealy — WritePair retires by itself, a search retires
                                        // when the search machine pulses done.
        let ib_ready =
            self.ib == IbState::WritePair || (self.ib == IbState::SearchEnable && srch_done);

        // ---- main interface next state (Fig. 8).
        let main_next = match self.main {
            MainState::Idle => match self.cmd {
                Some(Command::UserPush(_) | Command::UserPop | Command::UpdateStack { .. }) => {
                    MainState::LblInterfaceActive
                }
                Some(Command::WritePair { .. } | Command::Lookup { .. }) => {
                    MainState::IbInterfaceActive
                }
                None => MainState::Idle,
            },
            MainState::LblInterfaceActive => {
                if lbl_done {
                    MainState::Idle
                } else {
                    MainState::LblInterfaceActive
                }
            }
            MainState::IbInterfaceActive => {
                if ib_ready {
                    MainState::Idle
                } else {
                    MainState::IbInterfaceActive
                }
            }
        };

        // ---- label stack interface next state + data path staging (Fig. 9).
        let lbl_next = self.step_lbl(enable_lbl, srch_done, item_found);

        // ---- information base interface (Fig. 10).
        let ib_next = self.step_ib(enable_ib, srch_done);

        // ---- search machine (Fig. 11).
        let search_next = self.step_search(srch_enable);

        // ---- commit the edge.
        self.main = main_next;
        self.lbl = lbl_next;
        self.ib = ib_next;
        self.search = search_next;
        self.dp.tick();
        self.total_cycles += 1;
    }

    fn step_lbl(&mut self, enable: bool, srch_done: bool, item_found: bool) -> LblState {
        match self.lbl {
            LblState::Idle => {
                if !enable {
                    return LblState::Idle;
                }
                match self.cmd {
                    Some(Command::UserPush(_)) => LblState::UserPush,
                    Some(Command::UserPop) => LblState::UserPop,
                    Some(Command::UpdateStack {
                        packet_id,
                        level_override,
                        ..
                    }) => {
                        // Latch search context: level from the stack size
                        // (indexsource/level_source muxes) unless overridden,
                        // key from the packet identifier or the top label.
                        let depth = self.dp.stack.size();
                        self.came_from_empty = depth == 0;
                        self.active_level = level_override.unwrap_or(Level::for_stack_depth(depth));
                        self.search_key = if depth == 0 {
                            packet_id as u64
                        } else {
                            LabelStackEntry::from_bits(self.dp.stack.top_bits())
                                .label
                                .value() as u64
                        };
                        self.dp
                            .info_base
                            .level_mut(self.active_level)
                            .stage_clear_cursor();
                        LblState::SearchEnable
                    }
                    _ => LblState::Idle,
                }
            }
            LblState::UserPush => {
                if let Some(Command::UserPush(entry)) = self.cmd {
                    // External data is pushed verbatim except the S bit,
                    // which the bttmstckbit logic recomputes.
                    let e = LabelStackEntry {
                        bottom: self.dp.stack.is_empty(),
                        ..entry
                    };
                    self.dp.stack.stage_push(e.to_bits());
                }
                LblState::Idle
            }
            LblState::UserPop => {
                self.popped = self.dp.stack.top();
                self.dp.stack.stage_pop();
                LblState::Idle
            }
            LblState::SearchEnable => {
                if !srch_done {
                    LblState::SearchEnable
                } else if item_found {
                    LblState::RemoveTop
                } else {
                    // "The packet is immediately discarded if no
                    // information is found."
                    self.discard_reason = Some(DiscardReason::NoEntryFound);
                    LblState::DiscardPacket
                }
            }
            LblState::RemoveTop => {
                if self.came_from_empty {
                    // Ingress push: the modification register takes its CoS
                    // and TTL from the control path muxes instead of a
                    // removed entry (cosbitssrc/ttlsource, Fig. 12).
                    if let Some(Command::UpdateStack {
                        push_cos, push_ttl, ..
                    }) = self.cmd
                    {
                        let synth = LabelStackEntry::new(
                            Label::IPV4_EXPLICIT_NULL,
                            push_cos,
                            false,
                            push_ttl,
                        );
                        self.dp.mod_reg.set(synth.to_bits() as u64);
                    }
                } else {
                    self.dp.mod_reg.set(self.dp.stack.top_bits() as u64);
                    self.dp.stack.stage_pop();
                }
                LblState::UpdateTtl
            }
            LblState::UpdateTtl => {
                let m = LabelStackEntry::from_bits(self.dp.mod_reg.q() as u32);
                // Control-path TTLs are used verbatim (the IP layer already
                // decremented); stack TTLs are decremented by the counter.
                let loaded = if self.came_from_empty {
                    m.ttl
                } else {
                    m.ttl.wrapping_sub(1)
                };
                self.dp.ttl_ctr.control(CounterCtl::Load(loaded as u64));
                LblState::VerifyInfo
            }
            LblState::VerifyInfo => {
                let op = IbOperation::from_bits(self.dp.op_reg.q());
                let m = LabelStackEntry::from_bits(self.dp.mod_reg.q() as u32);
                let fail = self.verify_info(op, m);
                match fail {
                    Some(reason) => {
                        self.discard_reason = Some(reason);
                        LblState::DiscardPacket
                    }
                    None => match op {
                        IbOperation::Swap => LblState::PushNew,
                        IbOperation::Pop => LblState::UpdateTop,
                        IbOperation::Push => {
                            if self.came_from_empty {
                                LblState::PushNew
                            } else {
                                LblState::PushOld
                            }
                        }
                        // Nop always fails verification.
                        IbOperation::Nop => unreachable!("nop passed verification"),
                    },
                }
            }
            LblState::UpdateTop => {
                // Pop: propagate the decremented TTL into the newly exposed
                // top entry (uniform TTL model). Nothing to do when the pop
                // emptied the stack (egress LER).
                if let Some(top) = self.dp.stack.top() {
                    let updated = LabelStackEntry {
                        ttl: self.dp.ttl_ctr.value() as u8,
                        ..top
                    };
                    self.dp.stack.stage_write_top(updated.to_bits());
                }
                LblState::SaveEntry
            }
            LblState::PushOld => {
                // Push: re-push the removed entry with its decremented TTL
                // before stacking the new label on top of it.
                let m = LabelStackEntry::from_bits(self.dp.mod_reg.q() as u32);
                let old = LabelStackEntry {
                    ttl: self.dp.ttl_ctr.value() as u8,
                    bottom: self.dp.stack.is_empty(),
                    ..m
                };
                self.dp.stack.stage_push(old.to_bits());
                LblState::PushNew
            }
            LblState::PushNew => {
                // Assemble the new/modified entry register: label from the
                // label memory (via label_out), CoS unchanged (or from the
                // control path for a fresh push), TTL from the counter.
                let m = LabelStackEntry::from_bits(self.dp.mod_reg.q() as u32);
                let e = LabelStackEntry::new(
                    Label::from_masked(self.dp.new_label_reg.q() as u32),
                    m.cos,
                    self.dp.stack.is_empty(),
                    self.dp.ttl_ctr.value() as u8,
                );
                self.dp.entry_reg.set(e.to_bits() as u64);
                LblState::SaveEntry
            }
            LblState::SaveEntry => {
                // svstkval: commit the entry register into the stack for
                // the push/swap paths; the pop path already wrote the top.
                match IbOperation::from_bits(self.dp.op_reg.q()) {
                    IbOperation::Push | IbOperation::Swap => {
                        self.dp.stack.stage_push(self.dp.entry_reg.q() as u32);
                    }
                    IbOperation::Pop | IbOperation::Nop => {}
                }
                LblState::Done
            }
            LblState::DiscardPacket => {
                // "The packet is discarded (i.e. the label stack is reset)".
                self.dp.stack.stage_clear();
                self.dp.discard_reg.set(1);
                LblState::Done
            }
            LblState::Done => LblState::Idle,
        }
    }

    /// The `VERIFY INFO` checks: "Inconsistent operation or expired TTL"
    /// discards the packet.
    fn verify_info(&self, op: IbOperation, m: LabelStackEntry) -> Option<DiscardReason> {
        if self.came_from_empty {
            // Only an ingress LER may label an unlabeled packet, and only
            // with a push.
            if self.router_type == RouterType::Lsr || op != IbOperation::Push {
                return Some(DiscardReason::InconsistentOperation);
            }
            if self.dp.ttl_ctr.value() == 0 {
                return Some(DiscardReason::TtlExpired);
            }
            return None;
        }
        // The removed entry's TTL: 0 is malformed, 1 decrements to 0 —
        // "the packet is discarded when the TTL reaches zero".
        if m.ttl <= 1 {
            return Some(DiscardReason::TtlExpired);
        }
        match op {
            IbOperation::Nop => Some(DiscardReason::InconsistentOperation),
            // After REMOVE TOP the stack holds depth-1 entries; push
            // re-adds the old entry plus the new one.
            IbOperation::Push if self.dp.stack.size() + 2 > mpls_packet::EMBEDDED_STACK_DEPTH => {
                Some(DiscardReason::InconsistentOperation)
            }
            _ => None,
        }
    }

    fn step_ib(&mut self, enable: bool, srch_done: bool) -> IbState {
        match self.ib {
            IbState::Idle => {
                if !enable {
                    return IbState::Idle;
                }
                match self.cmd {
                    Some(Command::WritePair { level, .. }) => {
                        // Latch the level lines so the data path muxes (and
                        // the waveform probes) address the right memories.
                        self.active_level = level;
                        IbState::WritePair
                    }
                    Some(Command::Lookup { level, key }) => {
                        self.active_level = level;
                        self.search_key = key;
                        self.came_from_empty = false;
                        self.dp.info_base.level_mut(level).stage_clear_cursor();
                        IbState::SearchEnable
                    }
                    _ => IbState::Idle,
                }
            }
            IbState::WritePair => {
                if let Some(Command::WritePair {
                    level,
                    index,
                    new_label,
                    op,
                }) = self.cmd
                {
                    let lv = self.dp.info_base.level_mut(level);
                    if lv.is_full() {
                        self.write_rejected = true;
                    } else {
                        lv.stage_write_pair(index, new_label.value() as u64, op);
                    }
                }
                IbState::Idle
            }
            IbState::SearchEnable => {
                if srch_done {
                    IbState::Idle
                } else {
                    IbState::SearchEnable
                }
            }
        }
    }

    fn step_search(&mut self, enable: bool) -> SearchState {
        match self.search {
            SearchState::Idle => {
                if !enable {
                    return SearchState::Idle;
                }
                if self.dp.info_base.level(self.active_level).occupancy() == 0 {
                    if let Some(p) = self.perf.as_deref_mut() {
                        p.record_search(0, false);
                    }
                    SearchState::MissWait
                } else {
                    SearchState::Read
                }
            }
            SearchState::Read => {
                self.dp
                    .info_base
                    .level_mut(self.active_level)
                    .stage_read_at_cursor();
                SearchState::WaitInfo
            }
            SearchState::WaitInfo => SearchState::Compare,
            SearchState::Compare => {
                let matched = {
                    let lv = self.dp.info_base.level(self.active_level);
                    let idx_out = lv.index_out();
                    // Level 1 compares 32-bit packet identifiers, levels 2–3
                    // compare 20-bit labels (aeb_32b / aeb_20b).
                    if self.active_level == Level::L1 {
                        self.dp.cmp32.drive(idx_out, self.search_key);
                        self.dp.cmp32.aeb()
                    } else {
                        self.dp.cmp20.drive(idx_out, self.search_key);
                        self.dp.cmp20.aeb()
                    }
                };
                if matched {
                    self.last_search_found = true;
                    let depth = self.dp.info_base.level(self.active_level).read_index() + 1;
                    if let Some(p) = self.perf.as_deref_mut() {
                        p.record_search(depth, true);
                    }
                    SearchState::FoundWait
                } else {
                    let lv = self.dp.info_base.level(self.active_level);
                    let r = lv.read_index();
                    let occ = lv.occupancy() as u64;
                    // aeb_10b: next read address equals the write address —
                    // every stored pair has been examined.
                    self.dp.cmp10.drive(r + 1, occ);
                    let exhausted = r + 1 == occ;
                    self.dp
                        .info_base
                        .level_mut(self.active_level)
                        .stage_advance_cursor();
                    if exhausted {
                        self.last_search_found = false;
                        if let Some(p) = self.perf.as_deref_mut() {
                            p.record_search(occ, false);
                        }
                        SearchState::MissWait
                    } else {
                        SearchState::Read
                    }
                }
            }
            SearchState::FoundWait => {
                // "a delay occurs so the values can appear": register the
                // label/operation memory outputs.
                let lv = self.dp.info_base.level(self.active_level);
                let (label, op) = (lv.label_out(), lv.op_out());
                self.dp.new_label_reg.set(label);
                self.dp.op_reg.set(op.to_bits());
                SearchState::DoneHit
            }
            SearchState::MissWait => {
                self.last_search_found = false;
                self.dp.discard_reg.set(1);
                SearchState::DoneMiss
            }
            SearchState::DoneHit | SearchState::DoneMiss => SearchState::Idle,
        }
    }

    fn sample_trace(&mut self) {
        let Some((trace, p)) = self.trace.as_mut() else {
            return;
        };
        let cmd = self.cmd;
        let busy = self.main != MainState::Idle || cmd.is_some();
        let (save, lookup) = match cmd {
            Some(Command::WritePair { .. }) => (busy, false),
            Some(Command::Lookup { .. } | Command::UpdateStack { .. }) => (false, busy),
            _ => (false, false),
        };
        let (packetid, label_lookup, old_label_in, new_label_in, op_in, level_in) = match cmd {
            Some(Command::WritePair {
                level,
                index,
                new_label,
                op,
            }) => (
                if level == Level::L1 { index } else { 0 },
                0,
                index,
                new_label.value() as u64,
                op.to_bits(),
                level.to_bits(),
            ),
            Some(Command::Lookup { level, key }) => (
                if level == Level::L1 { key } else { 0 },
                if level == Level::L1 { 0 } else { key },
                0,
                0,
                0,
                level.to_bits(),
            ),
            Some(Command::UpdateStack { packet_id, .. }) => (
                packet_id as u64,
                self.search_key,
                0,
                0,
                0,
                self.active_level.to_bits(),
            ),
            _ => (0, 0, 0, 0, 0, self.active_level.to_bits()),
        };
        let lv = self.dp.info_base.level(Level::from_bits(level_in));
        trace.sample(p.level, level_in);
        trace.sample(p.packetid, packetid);
        trace.sample(p.label_lookup, label_lookup);
        trace.sample(p.old_label, old_label_in);
        trace.sample(p.new_label, new_label_in);
        trace.sample(p.operation_in, op_in);
        trace.sample_bool(p.save, save);
        trace.sample_bool(p.lookup, lookup);
        trace.sample(p.w_index, lv.write_index());
        trace.sample(p.r_index, lv.read_index());
        trace.sample(p.label_out, self.dp.new_label_reg.q());
        trace.sample(p.operation_out, self.dp.op_reg.q());
        trace.sample_bool(p.lookup_done, self.search.done());
        trace.sample_bool(p.packetdiscard, self.dp.packet_discard());
        trace.sample(p.stack_items, self.dp.stack.size() as u64);
        trace.commit_cycle();
    }
}
