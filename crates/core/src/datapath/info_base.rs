//! The information base: three levels of index/label/operation memory
//! (paper Figs. 12 and 13).
//!
//! "Separate memory components exist for an index, label value, and
//! operation. Counters are used to address memory components so the index
//! (the packet identifier or the first part of the label pair) can be
//! associated with its corresponding label and operation. ... Each memory
//! component supports 1 KB of label pairs." (§3.2)
//!
//! Model-accuracy note: the paper addresses each level with 10-bit
//! counters and detects search exhaustion with a 10-bit comparator. A
//! 10-bit write counter cannot distinguish a *full* level (1024 entries)
//! from an *empty* one, yet the paper's own worst case fills a level with
//! 1024 pairs and then searches all of them. We therefore carry an 11-bit
//! occupancy count (equivalently, the 10-bit counter plus the `full`
//! flip-flop any real implementation would add) and refuse writes beyond
//! capacity. DESIGN.md records this as a deliberate model choice.

use crate::ops::{IbOperation, Level};
use mpls_rtl::{Clocked, CounterCtl, SyncMemory, UpDownCounter};

/// Capacity of each level: "1 KB long" memory components hold 1024 entries.
pub const LEVEL_CAPACITY: usize = 1024;

/// One level of the information base: three parallel memory components
/// sharing read/write address counters (Fig. 13).
#[derive(Debug, Clone)]
pub struct InfoBaseLevel {
    level: Level,
    index_mem: SyncMemory,
    label_mem: SyncMemory,
    op_mem: SyncMemory,
    /// Read address counter (`r_index` in the Fig. 14–16 waveforms).
    read_ctr: UpDownCounter,
    /// Write address / occupancy counter (`w_index`); 11 bits so that a
    /// full level (1024) is representable — see the module-level note.
    write_ctr: UpDownCounter,
}

impl InfoBaseLevel {
    /// Creates an empty level.
    pub fn new(level: Level) -> Self {
        Self {
            level,
            index_mem: SyncMemory::new(level.index_width(), LEVEL_CAPACITY),
            label_mem: SyncMemory::new(20, LEVEL_CAPACITY),
            op_mem: SyncMemory::new(2, LEVEL_CAPACITY),
            read_ctr: UpDownCounter::new(10),
            write_ctr: UpDownCounter::new(11),
        }
    }

    /// Which level this is.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Number of label pairs stored.
    pub fn occupancy(&self) -> usize {
        self.write_ctr.value() as usize
    }

    /// True when no further pair fits.
    pub fn is_full(&self) -> bool {
        self.occupancy() == LEVEL_CAPACITY
    }

    /// Current read index (`r_index`).
    pub fn read_index(&self) -> u64 {
        self.read_ctr.value()
    }

    /// Current write index (`w_index`).
    pub fn write_index(&self) -> u64 {
        self.write_ctr.value()
    }

    /// Stages a write of a label pair at the write index and a write-counter
    /// increment, both committing on the next edge. Caller must have checked
    /// [`Self::is_full`]; writes to a full level are ignored (the decoder
    /// is not driven), keeping hardware semantics rather than panicking.
    pub fn stage_write_pair(&mut self, index: u64, new_label: u64, op: IbOperation) {
        if self.is_full() {
            return;
        }
        let w = self.write_ctr.value();
        self.index_mem.write(w, index);
        self.label_mem.write(w, new_label);
        self.op_mem.write(w, op.to_bits());
        self.write_ctr.control(CounterCtl::Increment);
    }

    /// Stages a read of all three components at the current read index; the
    /// words appear on the `*_out` pins after the next edge.
    pub fn stage_read_at_cursor(&mut self) {
        let r = self.read_ctr.value();
        self.index_mem.set_read_addr(r);
        self.label_mem.set_read_addr(r);
        self.op_mem.set_read_addr(r);
    }

    /// Stages a read-counter increment.
    pub fn stage_advance_cursor(&mut self) {
        self.read_ctr.control(CounterCtl::Increment);
    }

    /// Stages a read-counter clear (start of a search).
    pub fn stage_clear_cursor(&mut self) {
        self.read_ctr.control(CounterCtl::Clear);
    }

    /// Registered output of the index component.
    pub fn index_out(&self) -> u64 {
        self.index_mem.data_out()
    }

    /// Registered output of the label component.
    pub fn label_out(&self) -> u64 {
        self.label_mem.data_out()
    }

    /// Registered output of the operation component.
    pub fn op_out(&self) -> IbOperation {
        IbOperation::from_bits(self.op_mem.data_out())
    }

    /// Debug/software peek at a stored pair, bypassing the read port. Used
    /// by the routing-functionality interface and by tests.
    pub fn peek(&self, slot: usize) -> Option<(u64, u64, IbOperation)> {
        if slot >= self.occupancy() {
            return None;
        }
        Some((
            self.index_mem.peek(slot),
            self.label_mem.peek(slot),
            IbOperation::from_bits(self.op_mem.peek(slot)),
        ))
    }
}

impl Clocked for InfoBaseLevel {
    fn tick(&mut self) {
        self.index_mem.tick();
        self.label_mem.tick();
        self.op_mem.tick();
        self.read_ctr.tick();
        self.write_ctr.tick();
    }

    fn reset(&mut self) {
        self.index_mem.reset();
        self.label_mem.reset();
        self.op_mem.reset();
        self.read_ctr.reset();
        self.write_ctr.reset();
    }
}

/// The full three-level information base.
#[derive(Debug, Clone)]
pub struct InfoBase {
    levels: [InfoBaseLevel; 3],
}

impl Default for InfoBase {
    fn default() -> Self {
        Self::new()
    }
}

impl InfoBase {
    /// Creates an empty information base.
    pub fn new() -> Self {
        Self {
            levels: [
                InfoBaseLevel::new(Level::L1),
                InfoBaseLevel::new(Level::L2),
                InfoBaseLevel::new(Level::L3),
            ],
        }
    }

    /// Immutable access to one level.
    pub fn level(&self, level: Level) -> &InfoBaseLevel {
        &self.levels[level.index()]
    }

    /// Mutable access to one level.
    pub fn level_mut(&mut self, level: Level) -> &mut InfoBaseLevel {
        &mut self.levels[level.index()]
    }

    /// Total pairs stored across all levels.
    pub fn total_occupancy(&self) -> usize {
        self.levels.iter().map(|l| l.occupancy()).sum()
    }
}

impl Clocked for InfoBase {
    fn tick(&mut self) {
        for l in &mut self.levels {
            l.tick();
        }
    }

    fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_increments_w_index() {
        let mut l = InfoBaseLevel::new(Level::L1);
        for i in 0..10u64 {
            l.stage_write_pair(600 + i, 500 + i, IbOperation::Swap);
            l.tick();
            assert_eq!(l.write_index(), i + 1, "w_index after write {i}");
        }
        assert_eq!(l.occupancy(), 10);
        assert_eq!(l.peek(4), Some((604, 504, IbOperation::Swap)));
    }

    #[test]
    fn read_port_has_registered_latency() {
        let mut l = InfoBaseLevel::new(Level::L2);
        l.stage_write_pair(7, 700, IbOperation::Pop);
        l.tick();
        l.stage_clear_cursor();
        l.tick();
        l.stage_read_at_cursor();
        assert_eq!(l.label_out(), 0, "pre-edge output");
        l.tick();
        assert_eq!(l.index_out(), 7);
        assert_eq!(l.label_out(), 700);
        assert_eq!(l.op_out(), IbOperation::Pop);
    }

    #[test]
    fn level1_index_is_32_bits_wide() {
        let mut l = InfoBaseLevel::new(Level::L1);
        l.stage_write_pair(0xFFFF_FFFF, 1, IbOperation::Push);
        l.tick();
        assert_eq!(l.peek(0).unwrap().0, 0xFFFF_FFFF);
    }

    #[test]
    fn level2_index_truncates_to_20_bits() {
        let mut l = InfoBaseLevel::new(Level::L2);
        l.stage_write_pair(0xFFFF_FFFF, 1, IbOperation::Push);
        l.tick();
        assert_eq!(l.peek(0).unwrap().0, 0xF_FFFF);
    }

    #[test]
    fn fills_to_exactly_1024_then_rejects() {
        let mut l = InfoBaseLevel::new(Level::L3);
        for i in 0..LEVEL_CAPACITY as u64 {
            assert!(!l.is_full());
            l.stage_write_pair(i, i, IbOperation::Swap);
            l.tick();
        }
        assert!(l.is_full());
        assert_eq!(l.occupancy(), 1024);
        l.stage_write_pair(9999, 9999, IbOperation::Swap);
        l.tick();
        assert_eq!(l.occupancy(), 1024, "write to full level ignored");
        assert_eq!(l.peek(0), Some((0, 0, IbOperation::Swap)));
    }

    #[test]
    fn cursor_controls() {
        let mut l = InfoBaseLevel::new(Level::L2);
        l.stage_advance_cursor();
        l.tick();
        l.stage_advance_cursor();
        l.tick();
        assert_eq!(l.read_index(), 2);
        l.stage_clear_cursor();
        l.tick();
        assert_eq!(l.read_index(), 0);
    }

    #[test]
    fn reset_empties_all_levels() {
        let mut ib = InfoBase::new();
        ib.level_mut(Level::L1)
            .stage_write_pair(1, 2, IbOperation::Push);
        ib.tick();
        ib.level_mut(Level::L2)
            .stage_write_pair(3, 4, IbOperation::Swap);
        ib.tick();
        assert_eq!(ib.total_occupancy(), 2);
        ib.reset();
        assert_eq!(ib.total_occupancy(), 0);
        assert_eq!(ib.level(Level::L1).peek(0), None);
    }
}
