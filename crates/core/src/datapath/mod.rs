//! The label stack modifier's data path (paper Fig. 12).
//!
//! "External data enters the data path and is interpreted as a label stack
//! entry (from a packet), a label pair (old label/new label) for the
//! \[information base\] or a search index... Modifications to the top level
//! entry in the stack happen by modifying the TTL with a counter and the
//! label entry with the \[new label register\]. The CoS remains unchanged."

pub mod info_base;
pub mod stack;

pub use info_base::{InfoBase, InfoBaseLevel, LEVEL_CAPACITY};
pub use stack::HwStack;

use mpls_rtl::{Clocked, Comparator, Register, UpDownCounter};

/// All sequential elements of the data path besides the information base
/// and the stack: the TTL counter, the new-label and operation output
/// registers, the modification register holding the removed top entry, the
/// packet-discard flag, and the three comparators.
#[derive(Debug, Clone)]
pub struct DataPath {
    /// Three-level information base.
    pub info_base: InfoBase,
    /// The hardware label stack.
    pub stack: HwStack,
    /// 8-bit TTL counter ("modifying the TTL with a counter").
    pub ttl_ctr: UpDownCounter,
    /// 20-bit `label_out` register loaded from the label memory component.
    pub new_label_reg: Register,
    /// 2-bit `operation_out` register loaded from the operation component.
    pub op_reg: Register,
    /// 32-bit register holding the entry removed in `REMOVE TOP`.
    pub mod_reg: Register,
    /// 32-bit register holding the assembled new/modified entry between
    /// `PUSH NEW` and the stack write.
    pub entry_reg: Register,
    /// 1-bit `pktdcrd` flag register.
    pub discard_reg: Register,
    /// 32-bit comparator: packet identifier vs level-1 index output.
    pub cmp32: Comparator,
    /// 20-bit comparator: label vs level-2/3 index output.
    pub cmp20: Comparator,
    /// 10-bit comparator: read address vs write address (search
    /// exhaustion).
    pub cmp10: Comparator,
}

impl Default for DataPath {
    fn default() -> Self {
        Self::new()
    }
}

impl DataPath {
    /// Creates a cleared data path.
    pub fn new() -> Self {
        Self {
            info_base: InfoBase::new(),
            stack: HwStack::new(),
            ttl_ctr: UpDownCounter::new(8),
            new_label_reg: Register::new(20, 0),
            op_reg: Register::new(2, 0),
            mod_reg: Register::new(32, 0),
            entry_reg: Register::new(32, 0),
            discard_reg: Register::new(1, 0),
            cmp32: Comparator::new(32),
            cmp20: Comparator::new(20),
            cmp10: Comparator::new(10),
        }
    }

    /// The `pktdcrd` output.
    pub fn packet_discard(&self) -> bool {
        self.discard_reg.q() != 0
    }
}

impl Clocked for DataPath {
    fn tick(&mut self) {
        self.info_base.tick();
        self.stack.tick();
        self.ttl_ctr.tick();
        self.new_label_reg.tick();
        self.op_reg.tick();
        self.mod_reg.tick();
        self.entry_reg.tick();
        self.discard_reg.tick();
    }

    fn reset(&mut self) {
        self.info_base.reset();
        self.stack.reset();
        self.ttl_ctr.reset();
        self.new_label_reg.reset();
        self.op_reg.reset();
        self.mod_reg.reset();
        self.entry_reg.reset();
        self.discard_reg.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{IbOperation, Level};

    #[test]
    fn tick_propagates_to_all_components() {
        let mut dp = DataPath::new();
        dp.new_label_reg.set(500);
        dp.op_reg.set(IbOperation::Swap.to_bits());
        dp.discard_reg.set(1);
        dp.info_base
            .level_mut(Level::L1)
            .stage_write_pair(600, 500, IbOperation::Swap);
        dp.tick();
        assert_eq!(dp.new_label_reg.q(), 500);
        assert_eq!(dp.op_reg.q(), 3);
        assert!(dp.packet_discard());
        assert_eq!(dp.info_base.level(Level::L1).occupancy(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut dp = DataPath::new();
        dp.new_label_reg.set(500);
        dp.discard_reg.set(1);
        dp.tick();
        dp.reset();
        assert_eq!(dp.new_label_reg.q(), 0);
        assert!(!dp.packet_discard());
    }
}
