//! The hardware label stack of the data path (paper Fig. 12, `STACK`
//! block).
//!
//! Three 32-bit entry registers plus a 2-bit item counter ("Number of stack
//! items"). Operations are staged through the `stckctrl` control signals
//! and commit on the clock edge, like every other sequential component.

use mpls_packet::{label::LabelStackEntry, LabelStack, EMBEDDED_STACK_DEPTH};
use mpls_rtl::Clocked;

/// Staged stack control (`stckctrl`, Table 3: "Used to add or remove
/// entries from the stack").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum StackCtl {
    #[default]
    Hold,
    Push(u32),
    Pop,
    /// Overwrite the top entry in place (the pop path's `UPDATE TOP`).
    WriteTop(u32),
    Clear,
}

/// The hardware label stack: entry 0 is the top of the stack.
#[derive(Debug, Clone, Default)]
pub struct HwStack {
    entries: [u32; EMBEDDED_STACK_DEPTH],
    size: u8,
    ctl: StackCtl,
    /// Sticky overflow/underflow indicator for the last committed edge;
    /// real hardware would drive an error pin. Cleared on the next staged
    /// operation.
    fault: bool,
}

impl HwStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Number of stack items` output.
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// True when all three entry registers are occupied.
    pub fn is_full(&self) -> bool {
        self.size() == EMBEDDED_STACK_DEPTH
    }

    /// Raw 32-bit word of the top entry (undefined-as-zero when empty,
    /// like reading an undriven bus that idles low).
    pub fn top_bits(&self) -> u32 {
        if self.is_empty() {
            0
        } else {
            self.entries[0]
        }
    }

    /// Decoded top entry.
    pub fn top(&self) -> Option<LabelStackEntry> {
        (!self.is_empty()).then(|| LabelStackEntry::from_bits(self.entries[0]))
    }

    /// True if the last committed operation overflowed or underflowed.
    pub fn fault(&self) -> bool {
        self.fault
    }

    /// Stages a push of a raw 32-bit entry.
    pub fn stage_push(&mut self, bits: u32) {
        self.ctl = StackCtl::Push(bits);
    }

    /// Stages a pop of the top entry.
    pub fn stage_pop(&mut self) {
        self.ctl = StackCtl::Pop;
    }

    /// Stages an in-place overwrite of the top entry.
    pub fn stage_write_top(&mut self, bits: u32) {
        self.ctl = StackCtl::WriteTop(bits);
    }

    /// Stages a full clear ("the label stack is reset" on discard).
    pub fn stage_clear(&mut self) {
        self.ctl = StackCtl::Clear;
    }

    /// Snapshot as the software-level [`LabelStack`] type. The S bits held
    /// in the entry registers are reported verbatim; `validate()` on the
    /// result checks the hardware maintained them correctly.
    pub fn snapshot(&self) -> LabelStack {
        let mut out = LabelStack::new();
        // Rebuild bottom-up so push() recomputes S bits identically to the
        // values the hardware ought to hold.
        for i in (0..self.size()).rev() {
            out.push(LabelStackEntry::from_bits(self.entries[i]))
                .expect("hardware stack never exceeds EMBEDDED_STACK_DEPTH");
        }
        out
    }

    /// Raw entry registers (top-first), for waveform probing.
    pub fn raw_entries(&self) -> &[u32; EMBEDDED_STACK_DEPTH] {
        &self.entries
    }
}

impl Clocked for HwStack {
    fn tick(&mut self) {
        let ctl = core::mem::take(&mut self.ctl);
        self.fault = false;
        match ctl {
            StackCtl::Hold => {}
            StackCtl::Push(bits) => {
                if self.is_full() {
                    self.fault = true;
                } else {
                    let n = self.size();
                    for i in (0..n).rev() {
                        self.entries[i + 1] = self.entries[i];
                    }
                    self.entries[0] = bits;
                    self.size += 1;
                }
            }
            StackCtl::Pop => {
                if self.is_empty() {
                    self.fault = true;
                } else {
                    let n = self.size();
                    for i in 1..n {
                        self.entries[i - 1] = self.entries[i];
                    }
                    self.size -= 1;
                }
            }
            StackCtl::WriteTop(bits) => {
                if self.is_empty() {
                    self.fault = true;
                } else {
                    self.entries[0] = bits;
                }
            }
            StackCtl::Clear => {
                self.size = 0;
            }
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_packet::{CosBits, Label};

    fn bits(label: u32, bottom: bool, ttl: u8) -> u32 {
        LabelStackEntry::new(
            Label::new(label).unwrap(),
            CosBits::BEST_EFFORT,
            bottom,
            ttl,
        )
        .to_bits()
    }

    #[test]
    fn staged_push_commits_on_edge() {
        let mut s = HwStack::new();
        s.stage_push(bits(10, true, 64));
        assert_eq!(s.size(), 0, "pre-edge");
        s.tick();
        assert_eq!(s.size(), 1);
        assert_eq!(s.top().unwrap().label.value(), 10);
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = HwStack::new();
        for (i, l) in [1u32, 2, 3].iter().enumerate() {
            s.stage_push(bits(*l, i == 0, 64));
            s.tick();
        }
        assert!(s.is_full());
        assert_eq!(s.top().unwrap().label.value(), 3);
        s.stage_pop();
        s.tick();
        assert_eq!(s.top().unwrap().label.value(), 2);
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn overflow_and_underflow_raise_fault() {
        let mut s = HwStack::new();
        s.stage_pop();
        s.tick();
        assert!(s.fault());
        for i in 0..3 {
            s.stage_push(bits(i + 1, i == 0, 64));
            s.tick();
            assert!(!s.fault());
        }
        s.stage_push(bits(9, false, 64));
        s.tick();
        assert!(s.fault());
        assert_eq!(s.size(), 3, "overflowing push dropped");
    }

    #[test]
    fn write_top_overwrites_in_place() {
        let mut s = HwStack::new();
        s.stage_push(bits(5, true, 10));
        s.tick();
        s.stage_write_top(bits(5, true, 9));
        s.tick();
        assert_eq!(s.top().unwrap().ttl, 9);
        assert_eq!(s.size(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut s = HwStack::new();
        s.stage_push(bits(5, true, 10));
        s.tick();
        s.stage_clear();
        s.tick();
        assert!(s.is_empty());
        assert_eq!(s.top_bits(), 0);
    }

    #[test]
    fn snapshot_matches_software_stack() {
        let mut s = HwStack::new();
        s.stage_push(bits(100, true, 7));
        s.tick();
        s.stage_push(bits(200, false, 8));
        s.tick();
        let snap = s.snapshot();
        snap.validate().unwrap();
        assert_eq!(snap.depth(), 2);
        assert_eq!(snap.entries()[0].label.value(), 200);
        assert_eq!(snap.entries()[1].label.value(), 100);
    }

    #[test]
    fn hold_preserves_state() {
        let mut s = HwStack::new();
        s.stage_push(bits(3, true, 1));
        s.tick();
        s.tick();
        s.tick();
        assert_eq!(s.size(), 1);
    }
}
