#![warn(missing_docs)]
//! The embedded MPLS label stack modifier — a cycle-accurate model of the
//! hardware architecture of *Embedded MPLS Architecture* (Peterkin &
//! Ionescu, 2005).
//!
//! The paper proposes performing MPLS label lookups and label stack
//! manipulation in FPGA hardware, leaving routing functionality in
//! software. Its hardware core is the **label stack modifier** (Fig. 7):
//!
//! * a control unit of four state machines — main, label stack interface,
//!   information base interface and search ([`fsm`]);
//! * a data path ([`datapath`]) holding the label stack, a three-level
//!   **information base** of index/label/operation memories, a TTL counter,
//!   a new-label register and three comparators.
//!
//! [`LabelStackModifier`] integrates the two and executes operations with
//! the exact clock-cycle costs of the paper's Table 6 (see [`timing`]).
//! Waveforms equivalent to the paper's Figs. 14–16 can be recorded with
//! [`LabelStackModifier::enable_trace`].
//!
//! # Example
//!
//! ```
//! use mpls_core::{LabelStackModifier, RouterType, Level, IbOperation};
//! use mpls_core::modifier::Outcome;
//! use mpls_packet::{CosBits, Label};
//!
//! // An ingress LER: program the information base so packets for
//! // 10.1.0.0 get label 500 pushed, then run a packet through.
//! let mut m = LabelStackModifier::new(RouterType::Ler);
//! m.write_pair(Level::L1, 0x0a010000, Label::new(500).unwrap(), IbOperation::Push);
//! let r = m.update_stack(0x0a010000, CosBits::EXPEDITED, 64);
//! assert_eq!(r.outcome, Outcome::Updated { op: IbOperation::Push });
//! assert_eq!(m.stack_snapshot().top().unwrap().label.value(), 500);
//! // One stored pair: the search alone costs 3·1 + 5 = 8 cycles.
//! assert_eq!(r.cycles, 8 + 6);
//! ```

pub mod datapath;
pub mod figures;
pub mod fsm;
pub mod modifier;
pub mod ops;
pub mod perf;
pub mod signals;
pub mod timing;

pub use datapath::{DataPath, HwStack, InfoBase, InfoBaseLevel, LEVEL_CAPACITY};
pub use modifier::{Command, LabelStackModifier, OpResult, Outcome};
pub use ops::{DiscardReason, IbOperation, Level, RouterType};
pub use perf::CorePerf;
pub use timing::{table6, ClockSpec};
