//! Scripted stimuli reproducing the paper's §4 simulations (Figs. 14–16).
//!
//! Each function drives a traced [`LabelStackModifier`] with exactly the
//! stimulus described in the paper and returns the recorded waveform plus
//! the observed outcome, so that the `mpls-bench` figure binaries, the
//! examples and the test suite all replay one canonical script.
//!
//! Paper §4, common to all three figures:
//!
//! * "Ten label pairs are written ... The operation is arbitrarily chosen
//!   for each label pair but no two consecutive entries are given the same
//!   operation for illustration purposes."
//! * Fig. 14: level 1, packet identifiers 600–609 → new labels 500–509;
//!   lookup of packet identifier 604 returns label 504, operation 3
//!   (swap), `lookup_done` pulses, `packetdiscard` stays low.
//! * Fig. 15: level 2, old labels 1–10 → new labels 500–509; analogous
//!   lookup by label.
//! * Fig. 16: same level-2 program, lookup of label 27 which is not
//!   stored: `r_index` sweeps all ten entries, then `lookup_done` *and*
//!   `packetdiscard` go high while `label_out`/`operation_out` hold their
//!   previous values.

use crate::modifier::{LabelStackModifier, OpResult};
use crate::ops::{IbOperation, Level, RouterType};
use mpls_packet::Label;
use mpls_rtl::Trace;

/// Number of label pairs written in each figure's stimulus.
pub const PAIRS: u64 = 10;

/// The alternating operation pattern: "no two consecutive entries are
/// given the same operation". Chosen so that slot 4 (packet id 604 /
/// label 5) holds operation 3 = swap, matching the values reported under
/// Fig. 14.
pub fn figure_op(slot: u64) -> IbOperation {
    if slot.is_multiple_of(2) {
        IbOperation::Swap // encoding 3
    } else {
        IbOperation::Push // encoding 1
    }
}

/// A replayed figure: the waveform, the lookup result and bookkeeping the
/// binaries print alongside the trace.
#[derive(Debug)]
pub struct FigureRun {
    /// The recorded waveform.
    pub trace: Trace,
    /// Result of the final lookup operation.
    pub lookup: OpResult,
    /// Cycles consumed writing the ten pairs.
    pub write_cycles: u64,
}

fn write_ten_pairs(m: &mut LabelStackModifier, level: Level, first_index: u64) -> u64 {
    let mut cycles = 0;
    for i in 0..PAIRS {
        cycles += m
            .write_pair(
                level,
                first_index + i,
                Label::new(500 + i as u32).unwrap(),
                figure_op(i),
            )
            .cycles;
    }
    cycles
}

/// Fig. 14: write packet identifiers 600–609 → labels 500–509 into level
/// 1, then look up packet identifier 604.
pub fn figure14_level1() -> FigureRun {
    let mut m = LabelStackModifier::new(RouterType::Ler);
    m.enable_trace();
    m.idle(2);
    let write_cycles = write_ten_pairs(&mut m, Level::L1, 600);
    m.idle(2);
    let lookup = m.lookup(Level::L1, 604);
    m.idle(3);
    FigureRun {
        trace: m.take_trace().expect("trace enabled"),
        lookup,
        write_cycles,
    }
}

/// Fig. 15: write old labels 1–10 → new labels 500–509 into level 2, then
/// look up label 5 (stored at slot 4, mirroring Fig. 14's position).
pub fn figure15_level2() -> FigureRun {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.enable_trace();
    m.idle(2);
    let write_cycles = write_ten_pairs(&mut m, Level::L2, 1);
    m.idle(2);
    let lookup = m.lookup(Level::L2, 5);
    m.idle(3);
    FigureRun {
        trace: m.take_trace().expect("trace enabled"),
        lookup,
        write_cycles,
    }
}

/// Fig. 16: same level-2 program, but look up label 27, which does not
/// exist — the search exhausts all ten pairs and discards.
pub fn figure16_discard() -> FigureRun {
    let mut m = LabelStackModifier::new(RouterType::Lsr);
    m.enable_trace();
    m.idle(2);
    let write_cycles = write_ten_pairs(&mut m, Level::L2, 1);
    m.idle(2);
    let lookup = m.lookup(Level::L2, 27);
    m.idle(3);
    FigureRun {
        trace: m.take_trace().expect("trace enabled"),
        lookup,
        write_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modifier::Outcome;

    #[test]
    fn ops_alternate() {
        for i in 1..PAIRS {
            assert_ne!(figure_op(i), figure_op(i - 1));
        }
        // Slot 4 must be swap (encoding 3) so Fig. 14 reads "operation 3".
        assert_eq!(figure_op(4), IbOperation::Swap);
    }

    #[test]
    fn figure14_outcome() {
        let run = figure14_level1();
        assert_eq!(run.write_cycles, 30, "ten writes at 3 cycles each");
        assert_eq!(
            run.lookup.outcome,
            Outcome::LookupHit {
                label: Label::new(504).unwrap(),
                op: IbOperation::Swap
            }
        );
        // Hit at 1-based position 5: 3·5 + 5 = 20 cycles.
        assert_eq!(run.lookup.cycles, 20);
    }

    #[test]
    fn figure15_outcome() {
        let run = figure15_level2();
        assert_eq!(
            run.lookup.outcome,
            Outcome::LookupHit {
                label: Label::new(504).unwrap(),
                op: IbOperation::Swap
            }
        );
    }

    #[test]
    fn figure16_outcome() {
        let run = figure16_discard();
        assert_eq!(run.lookup.outcome, Outcome::LookupMiss);
        // Miss over ten pairs: 3·10 + 5.
        assert_eq!(run.lookup.cycles, 35);
    }
}
