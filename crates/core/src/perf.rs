//! Hardware-style performance counters for the label stack modifier.
//!
//! Real switch pipelines expose per-stage activity counters that external
//! telemetry scrapes; [`CorePerf`] is that register file for the modifier:
//! one cycle counter per control-unit state (all four FSMs) plus a
//! search-depth histogram over information-base lookups. The block is
//! optional — the modifier carries an `Option<Box<CorePerf>>` and pays a
//! single branch per clock when disabled — and purely observational: it
//! never changes cycle counts or outcomes.

use crate::datapath::LEVEL_CAPACITY;
use crate::fsm::{IbState, LblState, MainState, SearchState};
use mpls_telemetry::Histogram;
use serde::Serialize;

/// Snake-case names of [`MainState`] variants, indexed by discriminant.
pub const MAIN_STATE_NAMES: [&str; 3] = ["idle", "lbl_interface_active", "ib_interface_active"];

/// Snake-case names of [`LblState`] variants, indexed by discriminant.
pub const LBL_STATE_NAMES: [&str; 13] = [
    "idle",
    "user_push",
    "user_pop",
    "search_enable",
    "remove_top",
    "update_ttl",
    "verify_info",
    "update_top",
    "push_old",
    "push_new",
    "save_entry",
    "discard_packet",
    "done",
];

/// Snake-case names of [`IbState`] variants, indexed by discriminant.
pub const IB_STATE_NAMES: [&str; 3] = ["idle", "write_pair", "search_enable"];

/// Snake-case names of [`SearchState`] variants, indexed by discriminant.
pub const SEARCH_STATE_NAMES: [&str; 8] = [
    "idle",
    "read",
    "wait_info",
    "compare",
    "found_wait",
    "done_hit",
    "miss_wait",
    "done_miss",
];

/// Per-FSM-state cycle counters and search statistics.
#[derive(Debug, Clone, Serialize)]
pub struct CorePerf {
    /// Cycles spent in each [`MainState`].
    pub main_cycles: [u64; MAIN_STATE_NAMES.len()],
    /// Cycles spent in each [`LblState`].
    pub lbl_cycles: [u64; LBL_STATE_NAMES.len()],
    /// Cycles spent in each [`IbState`].
    pub ib_cycles: [u64; IB_STATE_NAMES.len()],
    /// Cycles spent in each [`SearchState`].
    pub search_cycles: [u64; SEARCH_STATE_NAMES.len()],
    /// Entries examined per information-base search (0 for an empty level).
    pub search_depth: Histogram,
    /// Searches that found their key.
    pub search_hits: u64,
    /// Searches that exhausted the level (or found it empty).
    pub search_misses: u64,
}

impl Default for CorePerf {
    fn default() -> Self {
        Self {
            main_cycles: Default::default(),
            lbl_cycles: Default::default(),
            ib_cycles: Default::default(),
            search_cycles: Default::default(),
            search_depth: Self::depth_histogram(),
            search_hits: 0,
            search_misses: 0,
        }
    }
}

impl CorePerf {
    /// The bucket layout every search-depth histogram uses: powers of two
    /// up to the level capacity, so depths from per-flow tables (a handful
    /// of entries) to a full level (1024) all resolve.
    pub fn depth_histogram() -> Histogram {
        let buckets = (LEVEL_CAPACITY as u64).ilog2() as usize + 1;
        Histogram::exponential(1, 2, buckets)
    }

    /// Attributes one clock cycle to the current state of each FSM.
    #[inline]
    pub fn tick(&mut self, main: MainState, lbl: LblState, ib: IbState, search: SearchState) {
        self.main_cycles[main as usize] += 1;
        self.lbl_cycles[lbl as usize] += 1;
        self.ib_cycles[ib as usize] += 1;
        self.search_cycles[search as usize] += 1;
    }

    /// Records one retired search: `depth` entries examined, hit or miss.
    #[inline]
    pub fn record_search(&mut self, depth: u64, hit: bool) {
        self.search_depth.record(depth);
        if hit {
            self.search_hits += 1;
        } else {
            self.search_misses += 1;
        }
    }

    /// Total cycles attributed (identical for all four FSMs: one tick
    /// advances each).
    pub fn total_cycles(&self) -> u64 {
        self.main_cycles.iter().sum()
    }

    /// Cycles the control unit spent outside every idle state — a busy
    /// fraction numerator for utilization-style gauges.
    pub fn busy_cycles(&self) -> u64 {
        self.total_cycles() - self.main_cycles[MainState::Idle as usize]
    }

    /// Flattens every per-state counter into `(name, cycles)` rows with
    /// `fsm.state` names, the shape telemetry scrapes.
    pub fn state_cycles(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        let groups: [(&str, &[&str], &[u64]); 4] = [
            ("main", &MAIN_STATE_NAMES, &self.main_cycles),
            ("lbl", &LBL_STATE_NAMES, &self.lbl_cycles),
            ("ib", &IB_STATE_NAMES, &self.ib_cycles),
            ("search", &SEARCH_STATE_NAMES, &self.search_cycles),
        ];
        for (fsm, names, cycles) in groups {
            for (name, &c) in names.iter().zip(cycles) {
                out.push((format!("{fsm}.{name}"), c));
            }
        }
        out
    }

    /// Merges another counter block into this one (multi-router aggregation).
    pub fn merge(&mut self, other: &CorePerf) {
        for (a, b) in self.main_cycles.iter_mut().zip(&other.main_cycles) {
            *a += b;
        }
        for (a, b) in self.lbl_cycles.iter_mut().zip(&other.lbl_cycles) {
            *a += b;
        }
        for (a, b) in self.ib_cycles.iter_mut().zip(&other.ib_cycles) {
            *a += b;
        }
        for (a, b) in self.search_cycles.iter_mut().zip(&other.search_cycles) {
            *a += b;
        }
        self.search_depth.merge(&other.search_depth);
        self.search_hits += other.search_hits;
        self.search_misses += other.search_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_every_variant() {
        // The arrays are indexed by `state as usize`; spot-check the ends.
        assert_eq!(MAIN_STATE_NAMES[MainState::Idle as usize], "idle");
        assert_eq!(
            MAIN_STATE_NAMES[MainState::IbInterfaceActive as usize],
            "ib_interface_active"
        );
        assert_eq!(LBL_STATE_NAMES[LblState::Done as usize], "done");
        assert_eq!(
            LBL_STATE_NAMES[LblState::DiscardPacket as usize],
            "discard_packet"
        );
        assert_eq!(
            IB_STATE_NAMES[IbState::SearchEnable as usize],
            "search_enable"
        );
        assert_eq!(
            SEARCH_STATE_NAMES[SearchState::DoneMiss as usize],
            "done_miss"
        );
    }

    #[test]
    fn tick_attributes_one_cycle_per_fsm() {
        let mut p = CorePerf::default();
        p.tick(
            MainState::Idle,
            LblState::Idle,
            IbState::Idle,
            SearchState::Idle,
        );
        p.tick(
            MainState::LblInterfaceActive,
            LblState::VerifyInfo,
            IbState::Idle,
            SearchState::Compare,
        );
        assert_eq!(p.total_cycles(), 2);
        assert_eq!(p.busy_cycles(), 1);
        assert_eq!(p.lbl_cycles[LblState::VerifyInfo as usize], 1);
        assert_eq!(p.search_cycles[SearchState::Compare as usize], 1);
    }

    #[test]
    fn state_cycles_flattens_all_fsms() {
        let p = CorePerf::default();
        let rows = p.state_cycles();
        assert_eq!(rows.len(), 3 + 13 + 3 + 8);
        assert!(rows.iter().any(|(n, _)| n == "lbl.verify_info"));
        assert!(rows.iter().any(|(n, _)| n == "search.done_miss"));
    }

    #[test]
    fn depth_histogram_spans_level_capacity() {
        let h = CorePerf::depth_histogram();
        assert_eq!(*h.bounds().last().unwrap(), LEVEL_CAPACITY as u64);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CorePerf::default();
        let mut b = CorePerf::default();
        a.record_search(3, true);
        b.record_search(10, false);
        b.tick(
            MainState::Idle,
            LblState::Idle,
            IbState::Idle,
            SearchState::Idle,
        );
        a.merge(&b);
        assert_eq!(a.search_hits, 1);
        assert_eq!(a.search_misses, 1);
        assert_eq!(a.search_depth.total(), 2);
        assert_eq!(a.total_cycles(), 1);
    }
}
