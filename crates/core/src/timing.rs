//! The closed-form cycle cost model (paper Table 6) and wall-clock
//! conversion.
//!
//! These formulas are the paper's *claims*; the cycle-accurate model in
//! [`crate::modifier`] is the *measurement*. The test suite and the Table 6
//! bench assert that measurement equals claim for every row.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Worst-case cycle counts per operation (Table 6).
pub mod table6 {
    /// Reset.
    pub const RESET: u64 = 3;
    /// Push from the user.
    pub const USER_PUSH: u64 = 3;
    /// Pop from the user.
    pub const USER_POP: u64 = 3;
    /// Write label pair.
    pub const WRITE_PAIR: u64 = 3;
    /// Search the information base among `n` stored pairs: `3n + 5`.
    pub const fn search(n: u64) -> u64 {
        3 * n + 5
    }
    /// Search cost when the hit is at 1-based position `k`: the loop exits
    /// as soon as the comparator matches.
    pub const fn search_hit_at(k: u64) -> u64 {
        3 * k + 5
    }
    /// Swap from the information base (after the search retires).
    pub const SWAP_FROM_IB: u64 = 6;
    /// Pop from the information base — model choice, documented in
    /// DESIGN.md (the paper leaves it unspecified).
    pub const POP_FROM_IB: u64 = 6;
    /// Push from the information base onto a non-empty stack (the extra
    /// `PUSH OLD` state costs one cycle).
    pub const PUSH_FROM_IB: u64 = 7;
    /// Push from the information base onto an empty stack (ingress LER).
    pub const PUSH_FROM_IB_EMPTY: u64 = 6;
    /// Update discarding on a miss: search plus the discard/done pair.
    pub const fn update_miss(n: u64) -> u64 {
        search(n) + 2
    }
    /// Update discarding at verification (expired TTL / inconsistent op).
    pub const fn update_verify_discard(k: u64) -> u64 {
        search_hit_at(k) + 5
    }

    /// The paper's §4 worst case: "the worst case number of cycles required
    /// to reset the architecture, push three stack entries, fill an entire
    /// level with 1024 label pairs and perform a swap would be 6167
    /// cycles."
    pub const fn worst_case_scenario() -> u64 {
        RESET + 3 * USER_PUSH + 1024 * WRITE_PAIR + search(1024) + SWAP_FROM_IB
    }
}

/// A clock specification for converting cycle counts into time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// Clock frequency in hertz.
    pub freq_hz: f64,
    /// Human-readable device name.
    pub device: &'static str,
}

impl ClockSpec {
    /// "an FPGA like the Altera Stratix EP1S40F780C5 with a 50MHz clock"
    /// (§4).
    pub const STRATIX_50MHZ: ClockSpec = ClockSpec {
        freq_hz: 50.0e6,
        device: "Altera Stratix EP1S40F780C5 @ 50 MHz",
    };

    /// Clock period.
    pub fn period(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.freq_hz)
    }

    /// Wall-clock duration of `cycles` clock cycles.
    pub fn cycles_to_duration(&self, cycles: u64) -> Duration {
        Duration::from_secs_f64(cycles as f64 / self.freq_hz)
    }

    /// Duration in microseconds, convenient for report tables.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_is_6167() {
        // 3 + 9 + 3072 + 3077 + 6
        assert_eq!(table6::worst_case_scenario(), 6167);
    }

    #[test]
    fn search_formula() {
        assert_eq!(table6::search(0), 5);
        assert_eq!(table6::search(1), 8);
        assert_eq!(table6::search(10), 35);
        assert_eq!(table6::search(1024), 3077);
    }

    #[test]
    fn worst_case_time_at_50mhz_is_about_123_microseconds() {
        let us = ClockSpec::STRATIX_50MHZ.cycles_to_us(table6::worst_case_scenario());
        // 6167 / 50e6 s = 123.34 µs ≈ the paper's "approximately 0.123 ms".
        assert!((us - 123.34).abs() < 0.01, "got {us} µs");
    }

    #[test]
    fn period_of_50mhz_clock() {
        assert_eq!(ClockSpec::STRATIX_50MHZ.period(), Duration::from_nanos(20));
        assert_eq!(
            ClockSpec::STRATIX_50MHZ.cycles_to_duration(5),
            Duration::from_nanos(100)
        );
    }
}
