//! Operation encodings and small vocabulary types of the label stack
//! modifier.

use serde::{Deserialize, Serialize};

/// The 2-bit operation stored in each information-base entry's operation
//  component ("2 bits wide, 1 KB long", paper Fig. 13): "the label, index,
/// operation (push, pop, swap, or no operation)" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum IbOperation {
    /// No operation — an unprogrammed or invalidated entry. Finding one
    /// during a stack update is an inconsistency and discards the packet.
    Nop = 0,
    /// Push a new label on top of the stack (tunnel entry / LER ingress).
    Push = 1,
    /// Pop the top label (tunnel exit / LER egress).
    Pop = 2,
    /// Replace the top label (LSR transit).
    Swap = 3,
}

impl IbOperation {
    /// Decodes the 2-bit memory word. Total over 2-bit values.
    pub const fn from_bits(bits: u64) -> Self {
        match bits & 0b11 {
            1 => Self::Push,
            2 => Self::Pop,
            3 => Self::Swap,
            _ => Self::Nop,
        }
    }

    /// Encodes into the 2-bit memory word.
    pub const fn to_bits(self) -> u64 {
        self as u64
    }
}

impl core::fmt::Display for IbOperation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Nop => "nop",
            Self::Push => "push",
            Self::Pop => "pop",
            Self::Swap => "swap",
        })
    }
}

/// The `rtrtype` input: "Logic low is interpreted as LER while logic high
/// is interpreted as LSR" (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterType {
    /// Label Edge Router: attaches to layer-2 networks, may push onto an
    /// empty stack keyed by the packet identifier.
    Ler,
    /// Label Switch Router: core router, operates on labeled packets only.
    Lsr,
}

impl RouterType {
    /// The logic level on the `rtrtype` pin.
    pub const fn to_bit(self) -> bool {
        matches!(self, Self::Lsr)
    }

    /// From the logic level.
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            Self::Lsr
        } else {
            Self::Ler
        }
    }
}

/// One of the three information-base levels (paper Fig. 12).
///
/// Level 1 is indexed by the 32-bit packet identifier (it serves pushes
/// onto an *empty* stack at an ingress LER); levels 2 and 3 are indexed by
/// 20-bit labels and serve stacks of depth 1 and 2–3 respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Level {
    /// Packet-identifier-keyed level.
    L1 = 1,
    /// Label-keyed level for depth-1 stacks.
    L2 = 2,
    /// Label-keyed level for depth-2 and depth-3 stacks.
    L3 = 3,
}

impl Level {
    /// All levels in order.
    pub const ALL: [Level; 3] = [Level::L1, Level::L2, Level::L3];

    /// Zero-based array index.
    pub const fn index(self) -> usize {
        self as usize - 1
    }

    /// Width of this level's index memory in bits: "the packet identifier
    /// is 32 bits while a label is 20 bits so the memory for level 1 must
    /// have different index memory than levels 2 and 3" (§3.2).
    pub const fn index_width(self) -> u32 {
        match self {
            Level::L1 => 32,
            Level::L2 | Level::L3 => 20,
        }
    }

    /// The level consulted for a stack of `depth` labels: empty stacks use
    /// the packet identifier (L1); deeper stacks use the label-keyed level
    /// matching their nesting depth, clamped at L3.
    pub const fn for_stack_depth(depth: usize) -> Self {
        match depth {
            0 => Level::L1,
            1 => Level::L2,
            _ => Level::L3,
        }
    }

    /// Encodes the 2-bit `level` signal.
    pub const fn to_bits(self) -> u64 {
        self as u64
    }

    /// Decodes the 2-bit `level` signal; values 0 and 1 map to L1.
    pub const fn from_bits(bits: u64) -> Self {
        match bits & 0b11 {
            2 => Level::L2,
            3 => Level::L3,
            _ => Level::L1,
        }
    }
}

impl core::fmt::Display for Level {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "level {}", *self as u8)
    }
}

/// Why a packet was discarded ("the packet is discarded (i.e. the label
/// stack is reset)", §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscardReason {
    /// "The packet is immediately discarded if no information is found."
    NoEntryFound,
    /// "...or if the TTL has expired."
    TtlExpired,
    /// "If there are any inconsistencies in the information" — a Nop entry,
    /// an operation impossible for the current stack (push overflow, or any
    /// non-push on an empty stack).
    InconsistentOperation,
}

impl core::fmt::Display for DiscardReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::NoEntryFound => "no information-base entry found",
            Self::TtlExpired => "TTL expired",
            Self::InconsistentOperation => "inconsistent operation",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_encoding_round_trips() {
        for op in [
            IbOperation::Nop,
            IbOperation::Push,
            IbOperation::Pop,
            IbOperation::Swap,
        ] {
            assert_eq!(IbOperation::from_bits(op.to_bits()), op);
        }
        // Upper bits ignored like a 2-bit memory word.
        assert_eq!(IbOperation::from_bits(0b111), IbOperation::Swap);
        assert_eq!(IbOperation::from_bits(4), IbOperation::Nop);
    }

    #[test]
    fn router_type_bit() {
        assert!(!RouterType::Ler.to_bit());
        assert!(RouterType::Lsr.to_bit());
        assert_eq!(RouterType::from_bit(false), RouterType::Ler);
        assert_eq!(RouterType::from_bit(true), RouterType::Lsr);
    }

    #[test]
    fn level_widths() {
        assert_eq!(Level::L1.index_width(), 32);
        assert_eq!(Level::L2.index_width(), 20);
        assert_eq!(Level::L3.index_width(), 20);
    }

    #[test]
    fn level_for_depth() {
        assert_eq!(Level::for_stack_depth(0), Level::L1);
        assert_eq!(Level::for_stack_depth(1), Level::L2);
        assert_eq!(Level::for_stack_depth(2), Level::L3);
        assert_eq!(Level::for_stack_depth(3), Level::L3);
    }

    #[test]
    fn level_bits_round_trip() {
        for l in Level::ALL {
            assert_eq!(Level::from_bits(l.to_bits()), l);
        }
        assert_eq!(Level::from_bits(0), Level::L1);
    }
}
