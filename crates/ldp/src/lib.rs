#![warn(missing_docs)]
//! In-band distributed label distribution — the `mpls-ldp` control plane.
//!
//! `mpls-control` models the *outcome* of ordered downstream label
//! distribution: an omniscient solver computes paths and bindings appear
//! everywhere instantly. This crate implements the *process*: an
//! LDP-style protocol (RFC 5036 in miniature) whose PDUs travel over the
//! simulated links as ordinary discrete events, so label bindings — and
//! therefore forwarding state — exist only where a message has carried
//! them.
//!
//! The machinery:
//!
//! * **Hello adjacency** — every node multicasts periodic hellos on each
//!   incident link; an adjacency is fresh while hellos keep arriving
//!   within the hold time.
//! * **Session FSM** — over a fresh adjacency the lower-numbered LSR
//!   (active role) sends `Initialization`; the passive side echoes it.
//!   Both ends then hold the session `Operational`, refreshed by
//!   keepalives; silence beyond the hold time tears it down.
//! * **Downstream-unsolicited ordered distribution** — a node advertises
//!   a `LabelMapping` for a FEC only once it has a route for that FEC
//!   itself (it is the egress, or it holds a usable downstream mapping),
//!   so bindings propagate egress-outward in order. Withdraw revokes,
//!   release returns.
//! * **Path-vector loop detection** — mappings accumulate the LSR ids
//!   they traversed; a receiver finding itself in the vector discards
//!   the mapping and returns a `LabelRelease`.
//! * **LIB → FIB derivation** — remote bindings are retained liberally
//!   in a label information base; the best (lowest cumulative cost,
//!   lowest neighbor id on ties) becomes the node's route, and
//!   [`LdpFabric::config_for`] renders the same [`NodeConfig`] shape the
//!   centralized solver produces, feeding the unchanged `mpls-dataplane`
//!   tables.
//!
//! The fabric is deliberately *passive*: [`LdpFabric::tick`] and
//! [`LdpFabric::deliver`] mutate protocol state and return the PDUs to
//! send and the session events that occurred, but scheduling, link state
//! and loss live in the caller (`mpls-net`'s engine). All state is held
//! in `BTreeMap`s and driven only by caller-supplied times, so identical
//! event sequences yield identical fabrics — the property the sharded
//! engine's determinism rests on.

use mpls_control::{
    BindingEntry, FecEntry, Hop, IpRoute, NextHopEntry, NodeConfig, NodeId, RouterRole, Topology,
};
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_packet::ldp::{LdpFec, LdpMessage, LdpPdu};
use mpls_packet::{CosBits, Label};
use std::collections::{BTreeMap, BTreeSet};

pub use mpls_control::LinkId;

/// A FEC as a sortable key: `(prefix address, prefix length)`.
pub type FecKey = (u32, u8);

/// Protocol timers. All values are nanoseconds of simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdpConfig {
    /// Interval between hello/keepalive ticks.
    pub hello_interval_ns: u64,
    /// Adjacency and session hold time: silence longer than this tears
    /// the session down. Conventionally a few hello intervals.
    pub hold_ns: u64,
}

impl Default for LdpConfig {
    fn default() -> Self {
        Self {
            hello_interval_ns: 1_000_000, // 1 ms
            hold_ns: 3_500_000,           // 3.5 ms
        }
    }
}

/// A PDU the fabric wants transmitted from `from` to its neighbor `to`.
#[derive(Debug, Clone)]
pub struct LdpSend {
    /// Originating node.
    pub from: NodeId,
    /// Adjacent destination node.
    pub to: NodeId,
    /// The PDU.
    pub pdu: LdpPdu,
}

/// A session-level event the caller may want to log or time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdpEvent {
    /// A session reached `Operational` between `at` and `peer`.
    SessionUp {
        /// The node reporting the transition.
        at: NodeId,
        /// The neighbor.
        peer: NodeId,
        /// The connecting link.
        link: LinkId,
    },
    /// A session was torn down (hold timer expiry) between `at` and
    /// `peer`.
    SessionDown {
        /// The node reporting the transition.
        at: NodeId,
        /// The neighbor.
        peer: NodeId,
        /// The connecting link.
        link: LinkId,
    },
}

/// Aggregate protocol counters across the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdpStats {
    /// Sessions that reached `Operational` (both ends count one each).
    pub sessions_established: u64,
    /// Sessions torn down by hold-timer expiry.
    pub session_downs: u64,
    /// Label mappings accepted into a LIB.
    pub mappings_accepted: u64,
    /// Withdraws processed.
    pub withdraws_processed: u64,
    /// Mappings discarded because the path vector contained the receiver.
    pub loop_rejections: u64,
}

/// Per-node protocol counters, exported as telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct LdpNodeStats {
    /// PDUs of any kind received.
    pub pdus_rx: u64,
    /// Mappings accepted into the LIB.
    pub mappings_rx: u64,
    /// Withdraws processed.
    pub withdraws_rx: u64,
    /// Releases received.
    pub releases_rx: u64,
    /// Mappings rejected by path-vector loop detection.
    pub loop_rejections: u64,
    /// Sessions this node saw reach `Operational`.
    pub session_ups: u64,
    /// Sessions this node tore down.
    pub session_downs: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Down,
    Operational,
}

#[derive(Debug)]
struct Peer {
    link: LinkId,
    cost: u32,
    state: SessionState,
    last_hello_rx: Option<u64>,
    last_rx: Option<u64>,
}

#[derive(Debug, Clone)]
struct RemoteBinding {
    label: Label,
    cost: u64,
    path: Vec<u32>,
}

/// The route a node currently holds for a FEC.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    /// This node originated the FEC: it is the egress.
    Egress,
    /// Reachable via a neighbor's mapping.
    Via {
        nh: NodeId,
        out_label: Label,
        cost: u64,
        path: Vec<u32>,
    },
}

#[derive(Debug)]
struct LocalBinding {
    label: Label,
    route: Option<Route>,
    /// `(cost, path)` as last advertised to peers; `None` when the FEC
    /// is currently withdrawn (or never advertised).
    advertised: Option<(u64, Vec<u32>)>,
}

#[derive(Debug)]
struct LdpNode {
    id: NodeId,
    role: RouterRole,
    next_label: u32,
    labels_left: u32,
    peers: BTreeMap<NodeId, Peer>,
    origin: BTreeSet<FecKey>,
    /// Label information base: liberally retained remote bindings.
    lib: BTreeMap<FecKey, BTreeMap<NodeId, RemoteBinding>>,
    local: BTreeMap<FecKey, LocalBinding>,
    stats: LdpNodeStats,
}

enum AdvAction {
    None,
    Advertise,
    Withdraw(Label),
}

struct RecomputeOutcome {
    fib_changed: bool,
    adv: AdvAction,
}

impl LdpNode {
    /// Allocates this node's label for `fec` if it has none yet.
    fn ensure_local(&mut self, fec: FecKey) -> &mut LocalBinding {
        let (next_label, left) = (&mut self.next_label, &mut self.labels_left);
        self.local.entry(fec).or_insert_with(|| {
            assert!(*left > 0, "node label range exhausted");
            *left -= 1;
            let label = Label::new(*next_label).expect("allocated label in range");
            *next_label += 1;
            LocalBinding {
                label,
                route: None,
                advertised: None,
            }
        })
    }

    /// Recomputes the route for `fec` from the LIB and reports whether
    /// the FIB-relevant part changed and what, if anything, must be
    /// (re-)advertised.
    fn recompute(&mut self, fec: FecKey) -> RecomputeOutcome {
        let new_route = if self.origin.contains(&fec) {
            Some(Route::Egress)
        } else {
            let mut best: Option<(u64, NodeId)> = None;
            if let Some(bindings) = self.lib.get(&fec) {
                for (&pid, b) in bindings {
                    let Some(peer) = self.peers.get(&pid) else {
                        continue;
                    };
                    if peer.state != SessionState::Operational {
                        continue;
                    }
                    let cand = b.cost + peer.cost as u64;
                    // BTreeMap iteration is ascending, so on a cost tie
                    // the lowest neighbor id wins by `<` alone.
                    if best.is_none_or(|(c, _)| cand < c) {
                        best = Some((cand, pid));
                    }
                }
            }
            best.map(|(cost, nh)| {
                let b = &self.lib[&fec][&nh];
                Route::Via {
                    nh,
                    out_label: b.label,
                    cost,
                    path: b.path.clone(),
                }
            })
        };

        if new_route.is_some() {
            self.ensure_local(fec);
        }
        let Some(lb) = self.local.get_mut(&fec) else {
            // Never routable and never allocated: nothing to do.
            return RecomputeOutcome {
                fib_changed: false,
                adv: AdvAction::None,
            };
        };

        let fib_part = |r: &Option<Route>| match r {
            None => None,
            Some(Route::Egress) => Some((None, None)),
            Some(Route::Via { nh, out_label, .. }) => Some((Some(*nh), Some(*out_label))),
        };
        let fib_changed = fib_part(&lb.route) != fib_part(&new_route);

        let new_adv = match &new_route {
            None => None,
            Some(Route::Egress) => Some((0, vec![self.id])),
            Some(Route::Via { cost, path, .. }) => {
                let mut p = Vec::with_capacity(path.len() + 1);
                p.push(self.id);
                p.extend_from_slice(path);
                Some((*cost, p))
            }
        };
        let adv = if new_adv == lb.advertised {
            AdvAction::None
        } else if new_adv.is_some() {
            AdvAction::Advertise
        } else {
            AdvAction::Withdraw(lb.label)
        };
        lb.route = new_route;
        lb.advertised = new_adv;
        RecomputeOutcome { fib_changed, adv }
    }

    fn operational_peers(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| p.state == SessionState::Operational)
            .map(|(&id, _)| id)
            .collect()
    }
}

/// The whole distributed control plane: one protocol instance per node,
/// advanced lock-step by the caller's clock.
#[derive(Debug)]
pub struct LdpFabric {
    cfg: LdpConfig,
    nodes: BTreeMap<NodeId, LdpNode>,
    /// FEC → CoS policy, static configuration shared by all LERs (the
    /// wire protocol does not carry CoS; like the FEC definitions
    /// themselves it is provisioned out of band).
    fec_cos: BTreeMap<FecKey, CosBits>,
    msg_seq: u32,
    stats: LdpStats,
    last_fib_change_ns: u64,
    dirty: BTreeSet<NodeId>,
}

/// Width of each node's private label range. The data-plane next-hop
/// table is keyed by the *outgoing* label alone, so two neighbors must
/// never hand out the same numeric label: each node allocates from its
/// own slice of the 20-bit space.
const LABEL_RANGE: u32 = 2048;

impl LdpFabric {
    /// Builds a fabric over `topo` with every adjacency known (sessions
    /// all start down; nothing is advertised until they form).
    pub fn new(topo: &Topology, cfg: LdpConfig) -> Self {
        let mut order: Vec<NodeId> = topo.nodes().iter().map(|n| n.id).collect();
        order.sort_unstable();
        let mut nodes = BTreeMap::new();
        for (index, &id) in order.iter().enumerate() {
            let base = Label::FIRST_UNRESERVED.value() + index as u32 * LABEL_RANGE;
            assert!(
                base + LABEL_RANGE <= Label::MAX,
                "label space exhausted by {} nodes",
                order.len()
            );
            let mut peers = BTreeMap::new();
            for &(nbr, link) in topo.neighbors(id) {
                let spec = topo.link(link).expect("adjacency references known link");
                peers.insert(
                    nbr,
                    Peer {
                        link,
                        cost: spec.cost,
                        state: SessionState::Down,
                        last_hello_rx: None,
                        last_rx: None,
                    },
                );
            }
            nodes.insert(
                id,
                LdpNode {
                    id,
                    role: topo.node(id).expect("node exists").role,
                    next_label: base,
                    labels_left: LABEL_RANGE,
                    peers,
                    origin: BTreeSet::new(),
                    lib: BTreeMap::new(),
                    local: BTreeMap::new(),
                    stats: LdpNodeStats::default(),
                },
            );
        }
        Self {
            cfg,
            nodes,
            fec_cos: BTreeMap::new(),
            msg_seq: 0,
            stats: LdpStats::default(),
            last_fib_change_ns: 0,
            dirty: BTreeSet::new(),
        }
    }

    /// The configured timers.
    pub fn config(&self) -> LdpConfig {
        self.cfg
    }

    /// Declares `egress` the originator of `prefix`: it binds a label
    /// immediately and advertises the FEC once sessions form. `cos` is
    /// the class ingress LERs will mark packets of this FEC with.
    pub fn originate(&mut self, egress: NodeId, prefix: Prefix, cos: CosBits) {
        let fec = (prefix.addr, prefix.len);
        self.fec_cos.entry(fec).or_insert(cos);
        let node = self.nodes.get_mut(&egress).expect("egress node exists");
        if node.origin.insert(fec) {
            let out = node.recompute(fec);
            if out.fib_changed {
                self.dirty.insert(egress);
            }
            // No sessions can be up yet at origination time, so the
            // advertisement (if any) reaches peers via session-up replay.
        }
    }

    fn next_msg_id(&mut self) -> u32 {
        self.msg_seq += 1;
        self.msg_seq
    }

    fn push_send(&mut self, sends: &mut Vec<LdpSend>, from: NodeId, to: NodeId, msg: LdpMessage) {
        let msg_id = self.next_msg_id();
        sends.push(LdpSend {
            from,
            to,
            pdu: LdpPdu {
                lsr_id: from,
                msg_id,
                message: msg,
            },
        });
    }

    /// Applies a recompute outcome: marks the node dirty for
    /// reprogramming and broadcasts the advertisement change to every
    /// operational peer.
    fn apply_recompute(
        &mut self,
        now: u64,
        id: NodeId,
        fec: FecKey,
        out: RecomputeOutcome,
        sends: &mut Vec<LdpSend>,
    ) {
        if out.fib_changed {
            self.dirty.insert(id);
            self.last_fib_change_ns = self.last_fib_change_ns.max(now);
        }
        match out.adv {
            AdvAction::None => {}
            AdvAction::Advertise => {
                let node = &self.nodes[&id];
                let lb = &node.local[&fec];
                let (cost, path) = lb.advertised.clone().expect("advertise implies a route");
                let label = lb.label;
                for pid in node.operational_peers() {
                    self.push_send(
                        sends,
                        id,
                        pid,
                        LdpMessage::LabelMapping {
                            fec: LdpFec {
                                addr: fec.0,
                                len: fec.1,
                            },
                            label,
                            cost,
                            path: path.clone(),
                        },
                    );
                }
            }
            AdvAction::Withdraw(label) => {
                for pid in self.nodes[&id].operational_peers() {
                    self.push_send(
                        sends,
                        id,
                        pid,
                        LdpMessage::LabelWithdraw {
                            fec: LdpFec {
                                addr: fec.0,
                                len: fec.1,
                            },
                            label,
                        },
                    );
                }
            }
        }
    }

    fn session_down(
        &mut self,
        now: u64,
        id: NodeId,
        pid: NodeId,
        sends: &mut Vec<LdpSend>,
        events: &mut Vec<LdpEvent>,
    ) {
        let node = self.nodes.get_mut(&id).expect("node exists");
        let peer = node.peers.get_mut(&pid).expect("peer exists");
        peer.state = SessionState::Down;
        peer.last_hello_rx = None;
        node.stats.session_downs += 1;
        let link = peer.link;
        // Purge everything learned from the dead peer, then recompute
        // the affected FECs (withdraws/remaps cascade from here).
        let affected: Vec<FecKey> = node
            .lib
            .iter_mut()
            .filter_map(|(&fec, bindings)| bindings.remove(&pid).map(|_| fec))
            .collect();
        self.stats.session_downs += 1;
        events.push(LdpEvent::SessionDown {
            at: id,
            peer: pid,
            link,
        });
        for fec in affected {
            let out = self.nodes.get_mut(&id).expect("node exists").recompute(fec);
            self.apply_recompute(now, id, fec, out, sends);
        }
    }

    /// Advances every node's timers to `now`: emits hellos, initiates
    /// and refreshes sessions, and expires the silent ones. Call once
    /// per [`LdpConfig::hello_interval_ns`].
    pub fn tick(&mut self, now: u64) -> (Vec<LdpSend>, Vec<LdpEvent>) {
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            let node = &self.nodes[&id];
            let mut keepalives = Vec::new();
            let mut inits = Vec::new();
            let mut downs = Vec::new();
            let mut hellos = Vec::new();
            for (&pid, peer) in &node.peers {
                hellos.push(pid);
                match peer.state {
                    SessionState::Operational => {
                        if now.saturating_sub(peer.last_rx.unwrap_or(0)) > self.cfg.hold_ns {
                            downs.push(pid);
                        } else {
                            keepalives.push(pid);
                        }
                    }
                    SessionState::Down => {
                        let fresh = peer
                            .last_hello_rx
                            .is_some_and(|h| now.saturating_sub(h) <= self.cfg.hold_ns);
                        if id < pid && fresh {
                            inits.push(pid);
                        }
                    }
                }
            }
            for pid in hellos {
                let hold_ns = self.cfg.hold_ns;
                self.push_send(&mut sends, id, pid, LdpMessage::Hello { hold_ns });
            }
            for pid in inits {
                let keepalive_ns = self.cfg.hold_ns;
                self.push_send(
                    &mut sends,
                    id,
                    pid,
                    LdpMessage::Initialization { keepalive_ns },
                );
            }
            for pid in keepalives {
                self.push_send(&mut sends, id, pid, LdpMessage::KeepAlive);
            }
            for pid in downs {
                self.session_down(now, id, pid, &mut sends, &mut events);
            }
        }
        (sends, events)
    }

    /// Session-up bookkeeping at `id` for neighbor `pid`: replay every
    /// routable local binding to the new peer.
    fn session_up(
        &mut self,
        id: NodeId,
        pid: NodeId,
        echo_init: bool,
        sends: &mut Vec<LdpSend>,
        events: &mut Vec<LdpEvent>,
    ) {
        let node = self.nodes.get_mut(&id).expect("node exists");
        let peer = node.peers.get_mut(&pid).expect("peer exists");
        peer.state = SessionState::Operational;
        node.stats.session_ups += 1;
        let link = peer.link;
        self.stats.sessions_established += 1;
        events.push(LdpEvent::SessionUp {
            at: id,
            peer: pid,
            link,
        });
        if echo_init {
            let keepalive_ns = self.cfg.hold_ns;
            self.push_send(sends, id, pid, LdpMessage::Initialization { keepalive_ns });
        }
        self.push_send(sends, id, pid, LdpMessage::KeepAlive);
        let replay: Vec<(FecKey, Label, u64, Vec<u32>)> = self.nodes[&id]
            .local
            .iter()
            .filter_map(|(&fec, lb)| {
                lb.advertised
                    .clone()
                    .map(|(cost, path)| (fec, lb.label, cost, path))
            })
            .collect();
        for (fec, label, cost, path) in replay {
            self.push_send(
                sends,
                id,
                pid,
                LdpMessage::LabelMapping {
                    fec: LdpFec {
                        addr: fec.0,
                        len: fec.1,
                    },
                    label,
                    cost,
                    path,
                },
            );
        }
    }

    /// Delivers one PDU from `from` to `to` at time `now` and returns
    /// the PDUs and events it provoked. PDUs from non-adjacent senders
    /// are ignored.
    pub fn deliver(
        &mut self,
        now: u64,
        from: NodeId,
        to: NodeId,
        pdu: &LdpPdu,
    ) -> (Vec<LdpSend>, Vec<LdpEvent>) {
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let Some(node) = self.nodes.get_mut(&to) else {
            return (sends, events);
        };
        let Some(peer) = node.peers.get_mut(&from) else {
            return (sends, events);
        };
        peer.last_rx = Some(now);
        node.stats.pdus_rx += 1;
        let operational = peer.state == SessionState::Operational;
        match &pdu.message {
            LdpMessage::Hello { .. } => {
                peer.last_hello_rx = Some(now);
            }
            LdpMessage::KeepAlive => {}
            LdpMessage::Initialization { .. } => {
                if !operational {
                    // The passive (higher-id) side still owes the echo.
                    self.session_up(to, from, to > from, &mut sends, &mut events);
                }
            }
            LdpMessage::LabelMapping {
                fec,
                label,
                cost,
                path,
            } => {
                let fec_key = (fec.addr, fec.len);
                if !operational {
                    // Raced a session teardown; the mapping will be
                    // replayed if the session re-forms.
                } else if path.contains(&to) {
                    node.stats.loop_rejections += 1;
                    self.stats.loop_rejections += 1;
                    // A looping advertisement supersedes any older
                    // binding from this peer.
                    if let Some(b) = node.lib.get_mut(&fec_key) {
                        b.remove(&from);
                    }
                    let out = node.recompute(fec_key);
                    self.push_send(
                        &mut sends,
                        to,
                        from,
                        LdpMessage::LabelRelease {
                            fec: *fec,
                            label: *label,
                        },
                    );
                    self.apply_recompute(now, to, fec_key, out, &mut sends);
                } else {
                    node.stats.mappings_rx += 1;
                    self.stats.mappings_accepted += 1;
                    node.lib.entry(fec_key).or_default().insert(
                        from,
                        RemoteBinding {
                            label: *label,
                            cost: *cost,
                            path: path.clone(),
                        },
                    );
                    let out = node.recompute(fec_key);
                    self.apply_recompute(now, to, fec_key, out, &mut sends);
                }
            }
            LdpMessage::LabelWithdraw { fec, label } => {
                let fec_key = (fec.addr, fec.len);
                node.stats.withdraws_rx += 1;
                self.stats.withdraws_processed += 1;
                if let Some(b) = node.lib.get_mut(&fec_key) {
                    b.remove(&from);
                }
                let out = node.recompute(fec_key);
                self.push_send(
                    &mut sends,
                    to,
                    from,
                    LdpMessage::LabelRelease {
                        fec: *fec,
                        label: *label,
                    },
                );
                self.apply_recompute(now, to, fec_key, out, &mut sends);
            }
            LdpMessage::LabelRelease { .. } => {
                node.stats.releases_rx += 1;
            }
        }
        (sends, events)
    }

    /// Renders `node`'s converged protocol state in the exact
    /// [`NodeConfig`] shape the centralized solver produces, ready for
    /// `Node::reprogram`.
    pub fn config_for(&self, node: NodeId) -> NodeConfig {
        let mut cfg = NodeConfig::default();
        let Some(n) = self.nodes.get(&node) else {
            return cfg;
        };
        let mut seen_next_hops = BTreeSet::new();
        for (&(addr, len), lb) in &n.local {
            let prefix = Prefix::new(addr, len);
            match &lb.route {
                None => {}
                Some(Route::Egress) => {
                    cfg.bindings.push(BindingEntry {
                        node,
                        level: 2,
                        key: lb.label.value() as u64,
                        new_label: Label::IPV4_EXPLICIT_NULL,
                        op: LabelOp::Pop,
                    });
                    cfg.ip_routes.push(IpRoute {
                        node,
                        prefix,
                        next: Hop::Local,
                    });
                }
                Some(Route::Via { nh, out_label, .. }) => {
                    cfg.bindings.push(BindingEntry {
                        node,
                        level: 2,
                        key: lb.label.value() as u64,
                        new_label: *out_label,
                        op: LabelOp::Swap,
                    });
                    if seen_next_hops.insert((out_label.value(), *nh)) {
                        cfg.next_hops.push(NextHopEntry {
                            node,
                            label: Some(*out_label),
                            next: Hop::Node(*nh),
                        });
                    }
                    if n.role == RouterRole::Ler {
                        let cos = self
                            .fec_cos
                            .get(&(addr, len))
                            .copied()
                            .unwrap_or(CosBits::BEST_EFFORT);
                        cfg.fecs.push(FecEntry {
                            node,
                            prefix,
                            push_label: *out_label,
                            cos,
                        });
                        if len == 32 {
                            cfg.bindings.push(BindingEntry {
                                node,
                                level: 1,
                                key: addr as u64,
                                new_label: *out_label,
                                op: LabelOp::Push,
                            });
                        }
                    }
                }
            }
        }
        cfg
    }

    /// Nodes whose FIB-relevant state changed since the last call —
    /// these need `reprogram`ming.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let d: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        d
    }

    /// Every `(node, fec)` pair that currently holds a route. Used to
    /// detect when reconvergence has restored reachability.
    pub fn routed_pairs(&self) -> BTreeSet<(NodeId, FecKey)> {
        let mut out = BTreeSet::new();
        for (&id, n) in &self.nodes {
            for (&fec, lb) in &n.local {
                if lb.route.is_some() {
                    out.insert((id, fec));
                }
            }
        }
        out
    }

    /// Time of the most recent FIB-relevant change anywhere.
    pub fn last_fib_change_ns(&self) -> u64 {
        self.last_fib_change_ns
    }

    /// Aggregate protocol counters.
    pub fn stats(&self) -> LdpStats {
        self.stats
    }

    /// Per-node counters, ascending by node id.
    pub fn node_stats(&self) -> impl Iterator<Item = (NodeId, &LdpNodeStats)> {
        self.nodes.iter().map(|(&id, n)| (id, &n.stats))
    }

    /// All node ids in the fabric, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::LinkSpec;

    fn line3() -> Topology {
        // 0 --- 1 --- 2
        let mut t = Topology::new();
        t.add_node(0, RouterRole::Ler, "a");
        t.add_node(1, RouterRole::Lsr, "m");
        t.add_node(2, RouterRole::Ler, "b");
        for (a, b) in [(0, 1), (1, 2)] {
            t.add_link(LinkSpec {
                a,
                b,
                cost: 1,
                bandwidth_bps: 1_000_000_000,
                delay_ns: 1000,
            });
        }
        t
    }

    /// Runs the fabric over an ideal zero-latency wire: every send is
    /// delivered immediately and **in order** (links are FIFO — the
    /// engine models serialization, which preserves send order per
    /// channel; the protocol relies on it, e.g. the session `Init` echo
    /// must precede the mapping replay behind it).
    fn converge(fabric: &mut LdpFabric, ticks: u32) {
        use std::collections::VecDeque;
        let dt = fabric.config().hello_interval_ns;
        for i in 0..ticks {
            let now = i as u64 * dt;
            let (sends, _) = fabric.tick(now);
            let mut queue: VecDeque<LdpSend> = sends.into();
            while let Some(s) = queue.pop_front() {
                let (more, _) = fabric.deliver(now, s.from, s.to, &s.pdu);
                queue.extend(more);
            }
        }
    }

    #[test]
    fn sessions_form_and_labels_flow() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        assert!(f.stats().sessions_established >= 4, "both ends, both links");
        // Ingress LER 0 classifies and pushes toward 1.
        let cfg0 = f.config_for(0);
        assert_eq!(cfg0.fecs.len(), 1);
        assert_eq!(
            cfg0.next_hop_for(Some(cfg0.fecs[0].push_label)),
            Some(Hop::Node(1))
        );
        // Transit 1 swaps toward 2; egress 2 pops and delivers.
        let cfg1 = f.config_for(1);
        assert!(cfg1
            .bindings
            .iter()
            .any(|b| b.level == 2 && b.op == LabelOp::Swap));
        let cfg2 = f.config_for(2);
        assert!(cfg2.bindings.iter().any(|b| b.op == LabelOp::Pop));
        assert_eq!(cfg2.ip_route_for(0x0a01_0203), Some(Hop::Local));
        // Labels come from disjoint per-node ranges.
        let l1 = cfg0.fecs[0].push_label.value();
        assert!((Label::FIRST_UNRESERVED.value() + LABEL_RANGE..).contains(&l1));
    }

    #[test]
    fn loop_detection_rejects_own_path() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        // Re-advertisements echo back to the downstream peer and are
        // path-vector-rejected there; that background rate is fine.
        let before = f.stats().loop_rejections;
        // Hand node 1 a forged mapping whose path vector contains 1.
        let pdu = LdpPdu {
            lsr_id: 0,
            msg_id: 9999,
            message: LdpMessage::LabelMapping {
                fec: LdpFec {
                    addr: 0x0a00_0000,
                    len: 8,
                },
                label: Label::new(77).unwrap(),
                cost: 1,
                path: vec![0, 1, 2],
            },
        };
        let (sends, _) = f.deliver(5_000_000, 0, 1, &pdu);
        assert_eq!(f.stats().loop_rejections, before + 1);
        assert!(sends
            .iter()
            .any(|s| matches!(s.pdu.message, LdpMessage::LabelRelease { .. })));
    }

    #[test]
    fn hold_expiry_tears_down_and_withdraws() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        assert!(!f.config_for(0).fecs.is_empty());
        f.take_dirty();
        // Node 0 hears nothing from 1 past the hold time.
        let late = 100_000_000;
        let (sends, events) = f.tick(late);
        assert!(events
            .iter()
            .any(|e| matches!(e, LdpEvent::SessionDown { at: 0, peer: 1, .. })));
        assert!(f.take_dirty().contains(&0));
        assert!(
            f.config_for(0).fecs.is_empty(),
            "route gone with the session"
        );
        // Everything it knew came from that peer, so nothing remains to
        // withdraw to (its only peer is down) — but the FIB change is
        // visible above. A richer assertion runs in the engine tests.
        drop(sends);
    }
}
