#![warn(missing_docs)]
//! In-band distributed label distribution — the `mpls-ldp` control plane.
//!
//! `mpls-control` models the *outcome* of ordered downstream label
//! distribution: an omniscient solver computes paths and bindings appear
//! everywhere instantly. This crate implements the *process*: an
//! LDP-style protocol (RFC 5036 in miniature) whose PDUs travel over the
//! simulated links as ordinary discrete events, so label bindings — and
//! therefore forwarding state — exist only where a message has carried
//! them.
//!
//! The machinery:
//!
//! * **Hello adjacency** — every node multicasts periodic hellos on each
//!   incident link; an adjacency is fresh while hellos keep arriving
//!   within the hold time.
//! * **Session FSM** — over a fresh adjacency the lower-numbered LSR
//!   (active role) sends `Initialization`; the passive side echoes it.
//!   Both ends then hold the session `Operational`, refreshed by
//!   keepalives; silence beyond the hold time tears it down.
//! * **Downstream-unsolicited ordered distribution** — a node advertises
//!   a `LabelMapping` for a FEC only once it has a route for that FEC
//!   itself (it is the egress, or it holds a usable downstream mapping),
//!   so bindings propagate egress-outward in order. Withdraw revokes,
//!   release returns.
//! * **Path-vector loop detection** — mappings accumulate the LSR ids
//!   they traversed; a receiver finding itself in the vector discards
//!   the mapping and returns a `LabelRelease`.
//! * **LIB → FIB derivation** — remote bindings are retained liberally
//!   in a label information base; the best (lowest cumulative cost,
//!   lowest neighbor id on ties) becomes the node's route, and
//!   [`LdpFabric::config_for`] renders the same [`NodeConfig`] shape the
//!   centralized solver produces, feeding the unchanged `mpls-dataplane`
//!   tables.
//!
//! The fabric is deliberately *passive*: [`LdpFabric::tick`] and
//! [`LdpFabric::deliver`] mutate protocol state and return the PDUs to
//! send and the session events that occurred, but scheduling, link state
//! and loss live in the caller (`mpls-net`'s engine). All state is held
//! in `BTreeMap`s and driven only by caller-supplied times, so identical
//! event sequences yield identical fabrics — the property the sharded
//! engine's determinism rests on.

use mpls_control::{
    BindingEntry, FecEntry, Hop, IpRoute, NextHopEntry, NodeConfig, NodeId, RouterRole, Topology,
};
use mpls_dataplane::ftn::Prefix;
use mpls_dataplane::LabelOp;
use mpls_packet::ldp::{LdpFec, LdpMessage, LdpPdu};
use mpls_packet::{CosBits, Label};
use std::collections::{BTreeMap, BTreeSet};

pub use mpls_control::LinkId;

/// A FEC as a sortable key: `(prefix address, prefix length)`.
pub type FecKey = (u32, u8);

/// Notification status: session-scoped traffic arrived with no session
/// up — the sender is wedged on a half-open session and must reset.
pub const STATUS_NO_SESSION: u32 = 1;
/// Notification status: a sequenced PDU arrived out of order (transport
/// loss, duplication or reordering).
pub const STATUS_BAD_SEQUENCE: u32 = 2;
/// Notification status: a PDU failed to decode.
pub const STATUS_MALFORMED: u32 = 3;

/// Protocol timers. All values are nanoseconds of simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdpConfig {
    /// Interval between hello/keepalive ticks.
    pub hello_interval_ns: u64,
    /// Adjacency and session hold time: silence longer than this tears
    /// the session down. Conventionally a few hello intervals.
    pub hold_ns: u64,
    /// Cap on the session re-initialization backoff, as an exponent:
    /// after the n-th unanswered `Initialization` the next attempt waits
    /// `max(hello_interval_ns << min(n, max_backoff_exp), hold_ns)`
    /// (± 25% jitter) — never less than a hold time, since no answer can
    /// arrive faster than the session's own timescale. The first attempt
    /// of a down period is always immediate.
    pub max_backoff_exp: u32,
    /// Seed mixed into the deterministic per-(node, peer, attempt)
    /// backoff jitter, so distinct runs can decorrelate retry storms
    /// while a fixed seed reproduces them exactly.
    pub jitter_seed: u64,
    /// Liberal retention for dead sessions: when non-zero, bindings
    /// learned from a peer whose session drops are kept *stale* for this
    /// long and keep serving traffic (graceful degradation) unless a
    /// fresh alternative exists; zero purges them immediately.
    pub stale_ttl_ns: u64,
}

impl Default for LdpConfig {
    fn default() -> Self {
        Self {
            hello_interval_ns: 1_000_000, // 1 ms
            hold_ns: 3_500_000,           // 3.5 ms
            max_backoff_exp: 5,           // ≤ 32 hello intervals between retries
            jitter_seed: 0,
            stale_ttl_ns: 0, // purge on session loss, as RFC 5036 defaults
        }
    }
}

/// splitmix64 — the same finalizer the engine's decomposed RNG streams
/// use; here it hashes `(seed, node, peer, attempt)` into backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A PDU the fabric wants transmitted from `from` to its neighbor `to`.
#[derive(Debug, Clone)]
pub struct LdpSend {
    /// Originating node.
    pub from: NodeId,
    /// Adjacent destination node.
    pub to: NodeId,
    /// The PDU.
    pub pdu: LdpPdu,
}

/// A session-level event the caller may want to log or time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdpEvent {
    /// A session reached `Operational` between `at` and `peer`.
    SessionUp {
        /// The node reporting the transition.
        at: NodeId,
        /// The neighbor.
        peer: NodeId,
        /// The connecting link.
        link: LinkId,
    },
    /// A session was torn down (hold timer expiry) between `at` and
    /// `peer`.
    SessionDown {
        /// The node reporting the transition.
        at: NodeId,
        /// The neighbor.
        peer: NodeId,
        /// The connecting link.
        link: LinkId,
    },
}

/// Aggregate protocol counters across the fabric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LdpStats {
    /// Sessions that reached `Operational` (both ends count one each).
    pub sessions_established: u64,
    /// Sessions torn down by hold-timer expiry.
    pub session_downs: u64,
    /// Label mappings accepted into a LIB.
    pub mappings_accepted: u64,
    /// Withdraws processed.
    pub withdraws_processed: u64,
    /// Mappings discarded because the path vector contained the receiver.
    pub loop_rejections: u64,
    /// `Initialization` retries beyond the first attempt of a down
    /// period (each one waited out a backoff interval first).
    pub session_retries: u64,
    /// Sequenced PDUs arriving out of order on an operational session
    /// (lost, duplicated or reordered transport) — each one resets the
    /// session, standing in for the TCP connection LDP really rides.
    pub sequence_violations: u64,
    /// PDUs the fabric layer reported as undecodable (truncated or
    /// corrupted on the wire); each resets the session it arrived on.
    pub malformed_pdus: u64,
}

/// Per-node protocol counters, exported as telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct LdpNodeStats {
    /// PDUs of any kind received.
    pub pdus_rx: u64,
    /// Mappings accepted into the LIB.
    pub mappings_rx: u64,
    /// Withdraws processed.
    pub withdraws_rx: u64,
    /// Releases received.
    pub releases_rx: u64,
    /// Mappings rejected by path-vector loop detection.
    pub loop_rejections: u64,
    /// Sessions this node saw reach `Operational`.
    pub session_ups: u64,
    /// Sessions this node tore down.
    pub session_downs: u64,
    /// `Initialization` retries this node sent after a backoff wait.
    pub session_retries: u64,
    /// Out-of-sequence PDUs this node rejected (and reset sessions for).
    pub sequence_violations: u64,
    /// Undecodable PDUs reported against this node's sessions.
    pub malformed_pdus: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Down,
    Operational,
}

#[derive(Debug)]
struct Peer {
    link: LinkId,
    cost: u32,
    state: SessionState,
    last_hello_rx: Option<u64>,
    last_rx: Option<u64>,
    /// Sequence of the next session-scoped PDU sent *to* this peer;
    /// reset to 1 by sending `Initialization`.
    tx_seq: u32,
    /// Sequence of the last session-scoped PDU accepted *from* this
    /// peer; reset by receiving `Initialization`.
    rx_seq: u32,
    /// Consecutive unanswered `Initialization`s this down period.
    init_attempts: u32,
    /// Earliest time the next `Initialization` may be sent.
    next_init_ns: u64,
    /// Epoch stamped into outbound `Initialization`s. Drawn fresh from
    /// the fabric's global message counter at the first attempt of a
    /// down period (0 = "draw on next send"); retries reuse it, so the
    /// receiver can tell a backed-off duplicate from a new session —
    /// the moral equivalent of a TCP initial sequence number.
    tx_epoch: u32,
    /// Epoch of the `Initialization` that formed the current inbound
    /// session; a same-epoch Init while operational is an idempotent
    /// duplicate, not a restart.
    rx_epoch: u32,
}

#[derive(Debug, Clone)]
struct RemoteBinding {
    label: Label,
    cost: u64,
    path: Vec<u32>,
    /// When the binding's session died, if retention is on: the binding
    /// keeps serving until `stale_ttl_ns` later unless refreshed first.
    stale_since: Option<u64>,
}

/// The route a node currently holds for a FEC.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    /// This node originated the FEC: it is the egress.
    Egress,
    /// Reachable via a neighbor's mapping.
    Via {
        nh: NodeId,
        out_label: Label,
        cost: u64,
        path: Vec<u32>,
    },
}

#[derive(Debug)]
struct LocalBinding {
    label: Label,
    route: Option<Route>,
    /// `(cost, path)` as last advertised to peers; `None` when the FEC
    /// is currently withdrawn (or never advertised).
    advertised: Option<(u64, Vec<u32>)>,
}

#[derive(Debug)]
struct LdpNode {
    id: NodeId,
    role: RouterRole,
    next_label: u32,
    labels_left: u32,
    /// False while the node is crashed: it neither ticks nor receives,
    /// and its rendered config is empty (the FIB is cold).
    alive: bool,
    peers: BTreeMap<NodeId, Peer>,
    origin: BTreeSet<FecKey>,
    /// Label information base: liberally retained remote bindings.
    lib: BTreeMap<FecKey, BTreeMap<NodeId, RemoteBinding>>,
    local: BTreeMap<FecKey, LocalBinding>,
    stats: LdpNodeStats,
}

enum AdvAction {
    None,
    Advertise,
    Withdraw(Label),
}

struct RecomputeOutcome {
    fib_changed: bool,
    adv: AdvAction,
}

impl LdpNode {
    /// Allocates this node's label for `fec` if it has none yet.
    fn ensure_local(&mut self, fec: FecKey) -> &mut LocalBinding {
        let (next_label, left) = (&mut self.next_label, &mut self.labels_left);
        self.local.entry(fec).or_insert_with(|| {
            assert!(*left > 0, "node label range exhausted");
            *left -= 1;
            let label = Label::new(*next_label).expect("allocated label in range");
            *next_label += 1;
            LocalBinding {
                label,
                route: None,
                advertised: None,
            }
        })
    }

    /// Recomputes the route for `fec` from the LIB and reports whether
    /// the FIB-relevant part changed and what, if anything, must be
    /// (re-)advertised. A fresh binding (live session, never marked
    /// stale) always beats a stale one; stale bindings are candidates
    /// only under liberal retention and within `stale_ttl`.
    fn recompute(&mut self, fec: FecKey, now: u64, stale_ttl: u64) -> RecomputeOutcome {
        let new_route = if self.origin.contains(&fec) {
            Some(Route::Egress)
        } else {
            let mut best: Option<(u8, u64, NodeId)> = None;
            if let Some(bindings) = self.lib.get(&fec) {
                for (&pid, b) in bindings {
                    let Some(peer) = self.peers.get(&pid) else {
                        continue;
                    };
                    let fresh = peer.state == SessionState::Operational && b.stale_since.is_none();
                    let class = if fresh {
                        0u8
                    } else {
                        match b.stale_since {
                            Some(t) if stale_ttl > 0 && now.saturating_sub(t) <= stale_ttl => 1,
                            _ => continue,
                        }
                    };
                    let cand = b.cost + peer.cost as u64;
                    // BTreeMap iteration is ascending, so on a
                    // (class, cost) tie the lowest neighbor id wins by
                    // `<` alone.
                    if best.is_none_or(|(cl, c, _)| (class, cand) < (cl, c)) {
                        best = Some((class, cand, pid));
                    }
                }
            }
            best.map(|(_, cost, nh)| {
                let b = &self.lib[&fec][&nh];
                Route::Via {
                    nh,
                    out_label: b.label,
                    cost,
                    path: b.path.clone(),
                }
            })
        };

        if new_route.is_some() {
            self.ensure_local(fec);
        }
        let Some(lb) = self.local.get_mut(&fec) else {
            // Never routable and never allocated: nothing to do.
            return RecomputeOutcome {
                fib_changed: false,
                adv: AdvAction::None,
            };
        };

        let fib_part = |r: &Option<Route>| match r {
            None => None,
            Some(Route::Egress) => Some((None, None)),
            Some(Route::Via { nh, out_label, .. }) => Some((Some(*nh), Some(*out_label))),
        };
        let fib_changed = fib_part(&lb.route) != fib_part(&new_route);

        let new_adv = match &new_route {
            None => None,
            Some(Route::Egress) => Some((0, vec![self.id])),
            Some(Route::Via { cost, path, .. }) => {
                let mut p = Vec::with_capacity(path.len() + 1);
                p.push(self.id);
                p.extend_from_slice(path);
                Some((*cost, p))
            }
        };
        let adv = if new_adv == lb.advertised {
            AdvAction::None
        } else if new_adv.is_some() {
            AdvAction::Advertise
        } else {
            AdvAction::Withdraw(lb.label)
        };
        lb.route = new_route;
        lb.advertised = new_adv;
        RecomputeOutcome { fib_changed, adv }
    }

    fn operational_peers(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|(_, p)| p.state == SessionState::Operational)
            .map(|(&id, _)| id)
            .collect()
    }
}

/// The whole distributed control plane: one protocol instance per node,
/// advanced lock-step by the caller's clock.
#[derive(Debug)]
pub struct LdpFabric {
    cfg: LdpConfig,
    nodes: BTreeMap<NodeId, LdpNode>,
    /// FEC → CoS policy, static configuration shared by all LERs (the
    /// wire protocol does not carry CoS; like the FEC definitions
    /// themselves it is provisioned out of band).
    fec_cos: BTreeMap<FecKey, CosBits>,
    msg_seq: u32,
    stats: LdpStats,
    last_fib_change_ns: u64,
    dirty: BTreeSet<NodeId>,
}

/// Width of each node's private label range. The data-plane next-hop
/// table is keyed by the *outgoing* label alone, so two neighbors must
/// never hand out the same numeric label: each node allocates from its
/// own slice of the 20-bit space.
const LABEL_RANGE: u32 = 2048;

impl LdpFabric {
    /// Builds a fabric over `topo` with every adjacency known (sessions
    /// all start down; nothing is advertised until they form).
    pub fn new(topo: &Topology, cfg: LdpConfig) -> Self {
        let mut order: Vec<NodeId> = topo.nodes().iter().map(|n| n.id).collect();
        order.sort_unstable();
        let mut nodes = BTreeMap::new();
        for (index, &id) in order.iter().enumerate() {
            let base = Label::FIRST_UNRESERVED.value() + index as u32 * LABEL_RANGE;
            assert!(
                base + LABEL_RANGE <= Label::MAX,
                "label space exhausted by {} nodes",
                order.len()
            );
            let mut peers = BTreeMap::new();
            for &(nbr, link) in topo.neighbors(id) {
                let spec = topo.link(link).expect("adjacency references known link");
                peers.insert(
                    nbr,
                    Peer {
                        link,
                        cost: spec.cost,
                        state: SessionState::Down,
                        last_hello_rx: None,
                        last_rx: None,
                        tx_seq: 0,
                        rx_seq: 0,
                        init_attempts: 0,
                        next_init_ns: 0,
                        tx_epoch: 0,
                        rx_epoch: 0,
                    },
                );
            }
            nodes.insert(
                id,
                LdpNode {
                    id,
                    role: topo.node(id).expect("node exists").role,
                    next_label: base,
                    labels_left: LABEL_RANGE,
                    alive: true,
                    peers,
                    origin: BTreeSet::new(),
                    lib: BTreeMap::new(),
                    local: BTreeMap::new(),
                    stats: LdpNodeStats::default(),
                },
            );
        }
        Self {
            cfg,
            nodes,
            fec_cos: BTreeMap::new(),
            msg_seq: 0,
            stats: LdpStats::default(),
            last_fib_change_ns: 0,
            dirty: BTreeSet::new(),
        }
    }

    /// The configured timers.
    pub fn config(&self) -> LdpConfig {
        self.cfg
    }

    /// Declares `egress` the originator of `prefix`: it binds a label
    /// immediately and advertises the FEC once sessions form. `cos` is
    /// the class ingress LERs will mark packets of this FEC with.
    pub fn originate(&mut self, egress: NodeId, prefix: Prefix, cos: CosBits) {
        let fec = (prefix.addr, prefix.len);
        let ttl = self.cfg.stale_ttl_ns;
        self.fec_cos.entry(fec).or_insert(cos);
        let node = self.nodes.get_mut(&egress).expect("egress node exists");
        if node.origin.insert(fec) {
            let out = node.recompute(fec, 0, ttl);
            if out.fib_changed {
                self.dirty.insert(egress);
            }
            // No sessions can be up yet at origination time, so the
            // advertisement (if any) reaches peers via session-up replay.
        }
    }

    fn next_msg_id(&mut self) -> u32 {
        self.msg_seq += 1;
        self.msg_seq
    }

    /// Queues a PDU, stamping `msg_id` with the transport sequence LDP
    /// would get from TCP: hellos (link-local UDP) draw from a global
    /// counter and carry no ordering promise; `Initialization` restarts
    /// the per-direction sequence at the session epoch (drawn once per
    /// down period, reused by retries); every other session-scoped
    /// message increments it. The receiver enforces the sequence and
    /// resets the session on any gap, duplicate or reversal.
    fn push_send(&mut self, sends: &mut Vec<LdpSend>, from: NodeId, to: NodeId, msg: LdpMessage) {
        let msg_id = match msg {
            // Hellos ride link-local UDP; notifications must get through
            // precisely when the session sequence is broken. Neither is
            // sequenced.
            LdpMessage::Hello { .. } | LdpMessage::Notification { .. } => self.next_msg_id(),
            LdpMessage::Initialization { .. } => {
                // Draw before borrowing the peer; the global counter is
                // monotone so an unused draw costs nothing but a gap.
                let fresh = self.next_msg_id();
                let peer = self
                    .nodes
                    .get_mut(&from)
                    .and_then(|n| n.peers.get_mut(&to))
                    .expect("send to known peer");
                if peer.tx_epoch == 0 {
                    peer.tx_epoch = fresh;
                }
                peer.tx_seq = peer.tx_epoch;
                peer.tx_epoch
            }
            _ => {
                let peer = self
                    .nodes
                    .get_mut(&from)
                    .and_then(|n| n.peers.get_mut(&to))
                    .expect("send to known peer");
                peer.tx_seq = peer.tx_seq.wrapping_add(1);
                peer.tx_seq
            }
        };
        sends.push(LdpSend {
            from,
            to,
            pdu: LdpPdu {
                lsr_id: from,
                msg_id,
                message: msg,
            },
        });
    }

    /// Applies a recompute outcome: marks the node dirty for
    /// reprogramming and broadcasts the advertisement change to every
    /// operational peer.
    fn apply_recompute(
        &mut self,
        now: u64,
        id: NodeId,
        fec: FecKey,
        out: RecomputeOutcome,
        sends: &mut Vec<LdpSend>,
    ) {
        if out.fib_changed {
            self.dirty.insert(id);
            self.last_fib_change_ns = self.last_fib_change_ns.max(now);
        }
        match out.adv {
            AdvAction::None => {}
            AdvAction::Advertise => {
                let node = &self.nodes[&id];
                let lb = &node.local[&fec];
                let (cost, path) = lb.advertised.clone().expect("advertise implies a route");
                let label = lb.label;
                for pid in node.operational_peers() {
                    self.push_send(
                        sends,
                        id,
                        pid,
                        LdpMessage::LabelMapping {
                            fec: LdpFec {
                                addr: fec.0,
                                len: fec.1,
                            },
                            label,
                            cost,
                            path: path.clone(),
                        },
                    );
                }
            }
            AdvAction::Withdraw(label) => {
                for pid in self.nodes[&id].operational_peers() {
                    self.push_send(
                        sends,
                        id,
                        pid,
                        LdpMessage::LabelWithdraw {
                            fec: LdpFec {
                                addr: fec.0,
                                len: fec.1,
                            },
                            label,
                        },
                    );
                }
            }
        }
    }

    fn session_down(
        &mut self,
        now: u64,
        id: NodeId,
        pid: NodeId,
        sends: &mut Vec<LdpSend>,
        events: &mut Vec<LdpEvent>,
    ) {
        let ttl = self.cfg.stale_ttl_ns;
        let node = self.nodes.get_mut(&id).expect("node exists");
        let peer = node.peers.get_mut(&pid).expect("peer exists");
        peer.state = SessionState::Down;
        peer.last_hello_rx = None;
        // A new down period: backoff restarts and the next
        // Initialization draws a fresh epoch.
        peer.init_attempts = 0;
        peer.next_init_ns = 0;
        peer.tx_epoch = 0;
        node.stats.session_downs += 1;
        let link = peer.link;
        // Purge everything learned from the dead peer — or, under
        // liberal retention, mark it stale so it keeps serving traffic
        // until the TTL or a fresh replacement — then recompute the
        // affected FECs (withdraws/remaps cascade from here).
        let affected: Vec<FecKey> = if ttl > 0 {
            node.lib
                .iter_mut()
                .filter_map(|(&fec, bindings)| {
                    bindings.get_mut(&pid).map(|b| {
                        b.stale_since.get_or_insert(now);
                        fec
                    })
                })
                .collect()
        } else {
            node.lib
                .iter_mut()
                .filter_map(|(&fec, bindings)| bindings.remove(&pid).map(|_| fec))
                .collect()
        };
        self.stats.session_downs += 1;
        events.push(LdpEvent::SessionDown {
            at: id,
            peer: pid,
            link,
        });
        for fec in affected {
            let out = self
                .nodes
                .get_mut(&id)
                .expect("node exists")
                .recompute(fec, now, ttl);
            self.apply_recompute(now, id, fec, out, sends);
        }
    }

    /// Drops stale-retained bindings whose TTL ran out and cascades the
    /// recomputes. No-op unless liberal retention is configured.
    fn expire_stale(&mut self, now: u64, sends: &mut Vec<LdpSend>) {
        let ttl = self.cfg.stale_ttl_ns;
        if ttl == 0 {
            return;
        }
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            let node = self.nodes.get_mut(&id).expect("node exists");
            if !node.alive {
                continue;
            }
            let mut affected = BTreeSet::new();
            for (&fec, bindings) in node.lib.iter_mut() {
                let expired: Vec<NodeId> = bindings
                    .iter()
                    .filter(|(_, b)| b.stale_since.is_some_and(|t| now.saturating_sub(t) > ttl))
                    .map(|(&p, _)| p)
                    .collect();
                for p in expired {
                    bindings.remove(&p);
                    affected.insert(fec);
                }
            }
            for fec in affected {
                let out = self
                    .nodes
                    .get_mut(&id)
                    .expect("node exists")
                    .recompute(fec, now, ttl);
                self.apply_recompute(now, id, fec, out, sends);
            }
        }
    }

    /// Advances every node's timers to `now`: emits hellos, initiates
    /// and refreshes sessions (re-initialization waits out a bounded
    /// exponential backoff), expires the silent ones and ages out
    /// stale-retained bindings. Call once per
    /// [`LdpConfig::hello_interval_ns`]. Crashed nodes are skipped.
    pub fn tick(&mut self, now: u64) -> (Vec<LdpSend>, Vec<LdpEvent>) {
        let mut sends = Vec::new();
        let mut events = Vec::new();
        self.expire_stale(now, &mut sends);
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            let node = &self.nodes[&id];
            if !node.alive {
                continue;
            }
            let mut keepalives = Vec::new();
            let mut inits = Vec::new();
            let mut downs = Vec::new();
            let mut hellos = Vec::new();
            for (&pid, peer) in &node.peers {
                hellos.push(pid);
                match peer.state {
                    SessionState::Operational => {
                        if now.saturating_sub(peer.last_rx.unwrap_or(0)) > self.cfg.hold_ns {
                            downs.push(pid);
                        } else {
                            keepalives.push(pid);
                        }
                    }
                    SessionState::Down => {
                        let fresh = peer
                            .last_hello_rx
                            .is_some_and(|h| now.saturating_sub(h) <= self.cfg.hold_ns);
                        if id < pid && fresh && now >= peer.next_init_ns {
                            inits.push(pid);
                        }
                    }
                }
            }
            for pid in hellos {
                let hold_ns = self.cfg.hold_ns;
                self.push_send(&mut sends, id, pid, LdpMessage::Hello { hold_ns });
            }
            for pid in inits {
                let keepalive_ns = self.cfg.hold_ns;
                self.push_send(
                    &mut sends,
                    id,
                    pid,
                    LdpMessage::Initialization { keepalive_ns },
                );
                // Bounded exponential backoff before the next attempt:
                // hello << attempts, capped, with ±25% deterministic
                // jitter so synchronized retry storms decorrelate while
                // staying a pure function of (seed, node, peer, attempt).
                let (hello, cap, seed) = (
                    self.cfg.hello_interval_ns,
                    self.cfg.max_backoff_exp,
                    self.cfg.jitter_seed,
                );
                let node = self.nodes.get_mut(&id).expect("node exists");
                let peer = node.peers.get_mut(&pid).expect("peer exists");
                peer.init_attempts += 1;
                if peer.init_attempts > 1 {
                    node.stats.session_retries += 1;
                    self.stats.session_retries += 1;
                }
                // Floored at the hold time: an answer cannot be expected
                // sooner than the session's own timescale, and retrying
                // below the round trip would reset freshly formed
                // sessions (the peer sees Initialization while
                // operational and tears down).
                let base = (hello << peer.init_attempts.min(cap)).max(self.cfg.hold_ns);
                let h = splitmix64(
                    seed ^ ((id as u64) << 40) ^ ((pid as u64) << 20) ^ peer.init_attempts as u64,
                );
                let delay = base - base / 4 + h % (base / 2 + 1);
                peer.next_init_ns = now + delay;
            }
            for pid in keepalives {
                self.push_send(&mut sends, id, pid, LdpMessage::KeepAlive);
            }
            for pid in downs {
                self.session_down(now, id, pid, &mut sends, &mut events);
            }
        }
        (sends, events)
    }

    /// Session-up bookkeeping at `id` for neighbor `pid`: replay every
    /// routable local binding to the new peer.
    fn session_up(
        &mut self,
        id: NodeId,
        pid: NodeId,
        echo_init: bool,
        sends: &mut Vec<LdpSend>,
        events: &mut Vec<LdpEvent>,
    ) {
        let node = self.nodes.get_mut(&id).expect("node exists");
        let peer = node.peers.get_mut(&pid).expect("peer exists");
        peer.state = SessionState::Operational;
        peer.init_attempts = 0;
        peer.next_init_ns = 0;
        node.stats.session_ups += 1;
        let link = peer.link;
        self.stats.sessions_established += 1;
        events.push(LdpEvent::SessionUp {
            at: id,
            peer: pid,
            link,
        });
        self.replay_to_peer(id, pid, echo_init, sends);
    }

    /// The send side of a session handshake from `id` to `pid`: the
    /// echo `Initialization` (if this is the passive side), a
    /// `KeepAlive`, and a replay of every advertised local binding.
    /// Also reused verbatim to answer a duplicate (same-epoch)
    /// `Initialization` idempotently, without touching session state.
    fn replay_to_peer(
        &mut self,
        id: NodeId,
        pid: NodeId,
        echo_init: bool,
        sends: &mut Vec<LdpSend>,
    ) {
        if echo_init {
            let keepalive_ns = self.cfg.hold_ns;
            self.push_send(sends, id, pid, LdpMessage::Initialization { keepalive_ns });
        }
        self.push_send(sends, id, pid, LdpMessage::KeepAlive);
        let replay: Vec<(FecKey, Label, u64, Vec<u32>)> = self.nodes[&id]
            .local
            .iter()
            .filter_map(|(&fec, lb)| {
                lb.advertised
                    .clone()
                    .map(|(cost, path)| (fec, lb.label, cost, path))
            })
            .collect();
        for (fec, label, cost, path) in replay {
            self.push_send(
                sends,
                id,
                pid,
                LdpMessage::LabelMapping {
                    fec: LdpFec {
                        addr: fec.0,
                        len: fec.1,
                    },
                    label,
                    cost,
                    path,
                },
            );
        }
    }

    /// Delivers one PDU from `from` to `to` at time `now` and returns
    /// the PDUs and events it provoked. PDUs from non-adjacent senders,
    /// or addressed to a crashed node, are ignored. Session-scoped PDUs
    /// (everything but hello and `Initialization`) must arrive in the
    /// per-direction sequence their `msg_id` encodes; a gap, duplicate
    /// or reversal is a transport violation — the stand-in for a broken
    /// TCP connection — and resets the session, whose re-initialization
    /// then resynchronizes both directions from scratch.
    pub fn deliver(
        &mut self,
        now: u64,
        from: NodeId,
        to: NodeId,
        pdu: &LdpPdu,
    ) -> (Vec<LdpSend>, Vec<LdpEvent>) {
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let ttl = self.cfg.stale_ttl_ns;
        let Some(node) = self.nodes.get_mut(&to) else {
            return (sends, events);
        };
        if !node.alive {
            return (sends, events);
        }
        let Some(peer) = node.peers.get_mut(&from) else {
            return (sends, events);
        };
        peer.last_rx = Some(now);
        node.stats.pdus_rx += 1;
        let operational = peer.state == SessionState::Operational;
        match &pdu.message {
            LdpMessage::Hello { .. } => {
                peer.last_hello_rx = Some(now);
                return (sends, events);
            }
            LdpMessage::Notification { .. } => {
                // The peer declared the session dead; mirror it. Never
                // answered, so notification storms cannot loop.
                if operational {
                    self.session_down(now, to, from, &mut sends, &mut events);
                }
                return (sends, events);
            }
            LdpMessage::Initialization { .. } => {
                if operational && pdu.msg_id == peer.rx_epoch {
                    // A backed-off retry of the very Initialization that
                    // formed this session — its echo outran the retry, or
                    // the echo was lost. Same epoch, same session:
                    // resynchronize the inbound sequence and (on the
                    // passive side only, so duplicates can't ping-pong)
                    // re-echo the handshake. No teardown, no events.
                    peer.rx_seq = pdu.msg_id;
                    if to > from {
                        self.replay_to_peer(to, from, true, &mut sends);
                    }
                    return (sends, events);
                }
                peer.rx_seq = pdu.msg_id;
                peer.rx_epoch = pdu.msg_id;
                if operational {
                    // A *new* epoch while this side still held the
                    // session up: the peer genuinely restarted (or is
                    // recovering from a transport violation). Reset
                    // before re-forming.
                    self.session_down(now, to, from, &mut sends, &mut events);
                }
                self.session_up(to, from, to > from, &mut sends, &mut events);
                return (sends, events);
            }
            _ => {
                if !operational {
                    // Session traffic without a session: the sender is
                    // wedged half-open (it missed our teardown while its
                    // hold timer stayed fresh on hellos). Tell it to
                    // reset; the mapping state is replayed when the
                    // session re-forms.
                    self.push_send(
                        &mut sends,
                        to,
                        from,
                        LdpMessage::Notification {
                            status: STATUS_NO_SESSION,
                        },
                    );
                    return (sends, events);
                }
                let expected = peer.rx_seq.wrapping_add(1);
                if pdu.msg_id != expected {
                    node.stats.sequence_violations += 1;
                    self.stats.sequence_violations += 1;
                    self.session_down(now, to, from, &mut sends, &mut events);
                    self.push_send(
                        &mut sends,
                        to,
                        from,
                        LdpMessage::Notification {
                            status: STATUS_BAD_SEQUENCE,
                        },
                    );
                    return (sends, events);
                }
                peer.rx_seq = expected;
            }
        }
        let node = self.nodes.get_mut(&to).expect("checked above");
        match &pdu.message {
            LdpMessage::KeepAlive => {}
            LdpMessage::LabelMapping {
                fec,
                label,
                cost,
                path,
            } => {
                let fec_key = (fec.addr, fec.len);
                if path.contains(&to) {
                    node.stats.loop_rejections += 1;
                    self.stats.loop_rejections += 1;
                    // A looping advertisement supersedes any older
                    // binding from this peer.
                    if let Some(b) = node.lib.get_mut(&fec_key) {
                        b.remove(&from);
                    }
                    let out = node.recompute(fec_key, now, ttl);
                    self.push_send(
                        &mut sends,
                        to,
                        from,
                        LdpMessage::LabelRelease {
                            fec: *fec,
                            label: *label,
                        },
                    );
                    self.apply_recompute(now, to, fec_key, out, &mut sends);
                } else {
                    node.stats.mappings_rx += 1;
                    self.stats.mappings_accepted += 1;
                    node.lib.entry(fec_key).or_default().insert(
                        from,
                        RemoteBinding {
                            label: *label,
                            cost: *cost,
                            path: path.clone(),
                            stale_since: None,
                        },
                    );
                    let out = node.recompute(fec_key, now, ttl);
                    self.apply_recompute(now, to, fec_key, out, &mut sends);
                }
            }
            LdpMessage::LabelWithdraw { fec, label } => {
                let fec_key = (fec.addr, fec.len);
                node.stats.withdraws_rx += 1;
                self.stats.withdraws_processed += 1;
                if let Some(b) = node.lib.get_mut(&fec_key) {
                    b.remove(&from);
                }
                let out = node.recompute(fec_key, now, ttl);
                self.push_send(
                    &mut sends,
                    to,
                    from,
                    LdpMessage::LabelRelease {
                        fec: *fec,
                        label: *label,
                    },
                );
                self.apply_recompute(now, to, fec_key, out, &mut sends);
            }
            LdpMessage::LabelRelease { .. } => {
                node.stats.releases_rx += 1;
            }
            LdpMessage::Hello { .. }
            | LdpMessage::Notification { .. }
            | LdpMessage::Initialization { .. } => {
                unreachable!("handled above")
            }
        }
        (sends, events)
    }

    /// Reports that a PDU from `from` to `to` failed to decode at the
    /// fabric layer (truncated or corrupted on the wire). The failure is
    /// counted and — because LDP's real transport would have torn the
    /// TCP connection — any operational session with the sender is
    /// reset; re-initialization replays the lost state.
    pub fn note_malformed(
        &mut self,
        now: u64,
        from: NodeId,
        to: NodeId,
    ) -> (Vec<LdpSend>, Vec<LdpEvent>) {
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let Some(node) = self.nodes.get_mut(&to) else {
            return (sends, events);
        };
        if !node.alive {
            return (sends, events);
        }
        let Some(peer) = node.peers.get(&from) else {
            return (sends, events);
        };
        node.stats.malformed_pdus += 1;
        self.stats.malformed_pdus += 1;
        if peer.state == SessionState::Operational {
            self.session_down(now, to, from, &mut sends, &mut events);
            // Tell the sender its transport is broken so it resets too;
            // re-initialization then replays the lost state.
            self.push_send(
                &mut sends,
                to,
                from,
                LdpMessage::Notification {
                    status: STATUS_MALFORMED,
                },
            );
        }
        (sends, events)
    }

    /// Crashes `id`: all protocol state (LIB, local bindings, session
    /// and adjacency state) is lost and the node goes silent. Its
    /// rendered config is empty until it restarts and re-learns — the
    /// cold-FIB window. Origin (FEC provisioning) and the label-range
    /// cursor survive, the latter so a restarted node never re-issues a
    /// label a neighbor may still be forwarding with.
    pub fn crash_node(&mut self, now: u64, id: NodeId) {
        let Some(node) = self.nodes.get_mut(&id) else {
            return;
        };
        if !node.alive {
            return;
        }
        node.alive = false;
        node.lib.clear();
        node.local.clear();
        for peer in node.peers.values_mut() {
            peer.state = SessionState::Down;
            peer.last_hello_rx = None;
            peer.last_rx = None;
            peer.tx_seq = 0;
            peer.rx_seq = 0;
            peer.init_attempts = 0;
            peer.next_init_ns = 0;
            peer.tx_epoch = 0;
            peer.rx_epoch = 0;
        }
        self.dirty.insert(id);
        self.last_fib_change_ns = self.last_fib_change_ns.max(now);
    }

    /// Restarts a crashed `id` with a cold FIB: it re-binds labels for
    /// the FECs it originates and rejoins the protocol on the next tick;
    /// everything else is re-learned from its peers.
    pub fn restart_node(&mut self, now: u64, id: NodeId) {
        let ttl = self.cfg.stale_ttl_ns;
        let Some(node) = self.nodes.get_mut(&id) else {
            return;
        };
        if node.alive {
            return;
        }
        node.alive = true;
        let origins: Vec<FecKey> = node.origin.iter().copied().collect();
        let mut sends = Vec::new();
        for fec in origins {
            let out = self
                .nodes
                .get_mut(&id)
                .expect("node exists")
                .recompute(fec, now, ttl);
            self.apply_recompute(now, id, fec, out, &mut sends);
        }
        debug_assert!(sends.is_empty(), "no sessions can be up at restart");
        self.dirty.insert(id);
        self.last_fib_change_ns = self.last_fib_change_ns.max(now);
    }

    /// Renders `node`'s converged protocol state in the exact
    /// [`NodeConfig`] shape the centralized solver produces, ready for
    /// `Node::reprogram`.
    pub fn config_for(&self, node: NodeId) -> NodeConfig {
        let mut cfg = NodeConfig::default();
        let Some(n) = self.nodes.get(&node) else {
            return cfg;
        };
        if !n.alive {
            // Crashed: the node forwards nothing until it re-learns.
            return cfg;
        }
        let mut seen_next_hops = BTreeSet::new();
        for (&(addr, len), lb) in &n.local {
            let prefix = Prefix::new(addr, len);
            match &lb.route {
                None => {}
                Some(Route::Egress) => {
                    cfg.bindings.push(BindingEntry {
                        node,
                        level: 2,
                        key: lb.label.value() as u64,
                        new_label: Label::IPV4_EXPLICIT_NULL,
                        op: LabelOp::Pop,
                    });
                    cfg.ip_routes.push(IpRoute {
                        node,
                        prefix,
                        next: Hop::Local,
                    });
                }
                Some(Route::Via { nh, out_label, .. }) => {
                    cfg.bindings.push(BindingEntry {
                        node,
                        level: 2,
                        key: lb.label.value() as u64,
                        new_label: *out_label,
                        op: LabelOp::Swap,
                    });
                    if seen_next_hops.insert((out_label.value(), *nh)) {
                        cfg.next_hops.push(NextHopEntry {
                            node,
                            label: Some(*out_label),
                            next: Hop::Node(*nh),
                        });
                    }
                    if n.role == RouterRole::Ler {
                        let cos = self
                            .fec_cos
                            .get(&(addr, len))
                            .copied()
                            .unwrap_or(CosBits::BEST_EFFORT);
                        cfg.fecs.push(FecEntry {
                            node,
                            prefix,
                            push_label: *out_label,
                            cos,
                        });
                        if len == 32 {
                            cfg.bindings.push(BindingEntry {
                                node,
                                level: 1,
                                key: addr as u64,
                                new_label: *out_label,
                                op: LabelOp::Push,
                            });
                        }
                    }
                }
            }
        }
        cfg
    }

    /// Nodes whose FIB-relevant state changed since the last call —
    /// these need `reprogram`ming.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let d: Vec<NodeId> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        d
    }

    /// Every `(node, fec)` pair that currently holds a route. Used to
    /// detect when reconvergence has restored reachability.
    pub fn routed_pairs(&self) -> BTreeSet<(NodeId, FecKey)> {
        let mut out = BTreeSet::new();
        for (&id, n) in &self.nodes {
            for (&fec, lb) in &n.local {
                if lb.route.is_some() {
                    out.insert((id, fec));
                }
            }
        }
        out
    }

    /// Time of the most recent FIB-relevant change anywhere.
    pub fn last_fib_change_ns(&self) -> u64 {
        self.last_fib_change_ns
    }

    /// Aggregate protocol counters.
    pub fn stats(&self) -> LdpStats {
        self.stats
    }

    /// Per-node counters, ascending by node id.
    pub fn node_stats(&self) -> impl Iterator<Item = (NodeId, &LdpNodeStats)> {
        self.nodes.iter().map(|(&id, n)| (id, &n.stats))
    }

    /// All node ids in the fabric, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::LinkSpec;

    fn line3() -> Topology {
        // 0 --- 1 --- 2
        let mut t = Topology::new();
        t.add_node(0, RouterRole::Ler, "a");
        t.add_node(1, RouterRole::Lsr, "m");
        t.add_node(2, RouterRole::Ler, "b");
        for (a, b) in [(0, 1), (1, 2)] {
            t.add_link(LinkSpec {
                a,
                b,
                cost: 1,
                bandwidth_bps: 1_000_000_000,
                delay_ns: 1000,
            });
        }
        t
    }

    /// Runs the fabric over an ideal zero-latency wire: every send is
    /// delivered immediately and **in order** (links are FIFO — the
    /// engine models serialization, which preserves send order per
    /// channel; the protocol relies on it, e.g. the session `Init` echo
    /// must precede the mapping replay behind it).
    fn converge(fabric: &mut LdpFabric, ticks: u32) {
        use std::collections::VecDeque;
        let dt = fabric.config().hello_interval_ns;
        for i in 0..ticks {
            let now = i as u64 * dt;
            let (sends, _) = fabric.tick(now);
            let mut queue: VecDeque<LdpSend> = sends.into();
            while let Some(s) = queue.pop_front() {
                let (more, _) = fabric.deliver(now, s.from, s.to, &s.pdu);
                queue.extend(more);
            }
        }
    }

    #[test]
    fn sessions_form_and_labels_flow() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        assert!(f.stats().sessions_established >= 4, "both ends, both links");
        // Ingress LER 0 classifies and pushes toward 1.
        let cfg0 = f.config_for(0);
        assert_eq!(cfg0.fecs.len(), 1);
        assert_eq!(
            cfg0.next_hop_for(Some(cfg0.fecs[0].push_label)),
            Some(Hop::Node(1))
        );
        // Transit 1 swaps toward 2; egress 2 pops and delivers.
        let cfg1 = f.config_for(1);
        assert!(cfg1
            .bindings
            .iter()
            .any(|b| b.level == 2 && b.op == LabelOp::Swap));
        let cfg2 = f.config_for(2);
        assert!(cfg2.bindings.iter().any(|b| b.op == LabelOp::Pop));
        assert_eq!(cfg2.ip_route_for(0x0a01_0203), Some(Hop::Local));
        // Labels come from disjoint per-node ranges.
        let l1 = cfg0.fecs[0].push_label.value();
        assert!((Label::FIRST_UNRESERVED.value() + LABEL_RANGE..).contains(&l1));
    }

    #[test]
    fn loop_detection_rejects_own_path() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        // Re-advertisements echo back to the downstream peer and are
        // path-vector-rejected there; that background rate is fine.
        let before = f.stats().loop_rejections;
        // Hand node 1 a forged mapping whose path vector contains 1.
        // The forgery must carry the expected transport sequence or the
        // guard resets the session before loop detection ever sees it.
        let next_seq = f.nodes[&1].peers[&0].rx_seq + 1;
        let pdu = LdpPdu {
            lsr_id: 0,
            msg_id: next_seq,
            message: LdpMessage::LabelMapping {
                fec: LdpFec {
                    addr: 0x0a00_0000,
                    len: 8,
                },
                label: Label::new(77).unwrap(),
                cost: 1,
                path: vec![0, 1, 2],
            },
        };
        let (sends, _) = f.deliver(5_000_000, 0, 1, &pdu);
        assert_eq!(f.stats().loop_rejections, before + 1);
        assert!(sends
            .iter()
            .any(|s| matches!(s.pdu.message, LdpMessage::LabelRelease { .. })));
    }

    #[test]
    fn hold_expiry_tears_down_and_withdraws() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        assert!(!f.config_for(0).fecs.is_empty());
        f.take_dirty();
        // Node 0 hears nothing from 1 past the hold time.
        let late = 100_000_000;
        let (sends, events) = f.tick(late);
        assert!(events
            .iter()
            .any(|e| matches!(e, LdpEvent::SessionDown { at: 0, peer: 1, .. })));
        assert!(f.take_dirty().contains(&0));
        assert!(
            f.config_for(0).fecs.is_empty(),
            "route gone with the session"
        );
        // Everything it knew came from that peer, so nothing remains to
        // withdraw to (its only peer is down) — but the FIB change is
        // visible above. A richer assertion runs in the engine tests.
        // (Liberal retention is off by default; see the stale test.)
        drop(sends);
    }

    #[test]
    fn out_of_sequence_pdu_resets_the_session() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        let downs_before = f.stats().session_downs;
        // A duplicated keepalive re-uses an already-consumed sequence.
        let stale_seq = f.nodes[&1].peers[&0].rx_seq;
        let pdu = LdpPdu {
            lsr_id: 0,
            msg_id: stale_seq,
            message: LdpMessage::KeepAlive,
        };
        let (_, events) = f.deliver(5_000_000, 0, 1, &pdu);
        assert_eq!(f.stats().sequence_violations, 1);
        assert_eq!(f.stats().session_downs, downs_before + 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, LdpEvent::SessionDown { at: 1, peer: 0, .. })));
        // The session re-forms on subsequent ticks and the route returns.
        converge(&mut f, 12);
        assert!(
            !f.config_for(0).fecs.is_empty(),
            "resynchronized after reset"
        );
    }

    #[test]
    fn malformed_pdu_counts_and_resets_the_session() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        let downs_before = f.stats().session_downs;
        let (_, events) = f.note_malformed(5_000_000, 2, 1);
        assert_eq!(f.stats().malformed_pdus, 1);
        assert_eq!(f.stats().session_downs, downs_before + 1);
        assert!(events
            .iter()
            .any(|e| matches!(e, LdpEvent::SessionDown { at: 1, peer: 2, .. })));
        // Malformed deliveries on an already-down session only count.
        f.note_malformed(5_100_000, 2, 1);
        assert_eq!(f.stats().malformed_pdus, 2);
        assert_eq!(f.stats().session_downs, downs_before + 1);
    }

    #[test]
    fn reinit_backs_off_exponentially_with_bounded_jitter() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        let hello = f.config().hello_interval_ns;
        // Feed node 0 hellos from 1 but never answer its Initialization:
        // attempts must space out exponentially instead of every tick.
        let mut init_times = Vec::new();
        for i in 0..200u64 {
            let now = i * hello;
            let hello_pdu = LdpPdu {
                lsr_id: 1,
                msg_id: 1,
                message: LdpMessage::Hello { hold_ns: 3_500_000 },
            };
            f.deliver(now, 1, 0, &hello_pdu);
            let (sends, _) = f.tick(now);
            if sends.iter().any(|s| {
                s.from == 0
                    && s.to == 1
                    && matches!(s.pdu.message, LdpMessage::Initialization { .. })
            }) {
                init_times.push(now);
            }
        }
        assert!(
            init_times.len() >= 4,
            "several attempts in 200 ticks: {init_times:?}"
        );
        assert!(
            init_times.len() <= 12,
            "immediate retry is gone: {init_times:?}"
        );
        let gaps: Vec<u64> = init_times.windows(2).map(|w| w[1] - w[0]).collect();
        // Each gap tracks its attempt's base — `hello << n` capped and
        // floored at the hold time — inside the ±25% jitter band (plus
        // one tick of rounding, since sends happen on tick boundaries).
        let cfg = LdpConfig::default();
        for (i, &g) in gaps.iter().enumerate() {
            let n = (i as u32 + 1).min(cfg.max_backoff_exp);
            let base = (hello << n).max(cfg.hold_ns);
            assert!(
                g >= base - base / 4 && g <= base + base / 4 + hello,
                "gap {i} = {g} outside the jitter band of base {base}: {gaps:?}"
            );
        }
        assert!(
            f.stats().session_retries as usize == init_times.len() - 1,
            "retries surfaced in stats"
        );
    }

    #[test]
    fn stale_retention_serves_while_session_is_down_then_expires() {
        let topo = line3();
        let cfg = LdpConfig {
            stale_ttl_ns: 50_000_000,
            ..LdpConfig::default()
        };
        let mut f = LdpFabric::new(&topo, cfg);
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        assert!(!f.config_for(0).fecs.is_empty());
        f.take_dirty();
        // Node 0 hears nothing past the hold time: the session drops but
        // the binding is retained stale and keeps serving.
        let down_at = 10_000_000;
        let (_, events) = f.tick(down_at);
        assert!(events
            .iter()
            .any(|e| matches!(e, LdpEvent::SessionDown { at: 0, peer: 1, .. })));
        assert!(
            !f.config_for(0).fecs.is_empty(),
            "stale binding keeps the route alive"
        );
        // Past the TTL the binding ages out and the route goes with it.
        f.tick(down_at + cfg.stale_ttl_ns + cfg.hello_interval_ns);
        assert!(
            f.config_for(0).fecs.is_empty(),
            "stale binding expired at the TTL"
        );
    }

    #[test]
    fn crash_loses_state_and_restart_relearns() {
        let topo = line3();
        let mut f = LdpFabric::new(&topo, LdpConfig::default());
        f.originate(2, Prefix::new(0x0a00_0000, 8), CosBits::BEST_EFFORT);
        converge(&mut f, 4);
        let old_egress_label = f.config_for(2).bindings[0].key;
        f.crash_node(5_000_000, 2);
        assert!(f.config_for(2).bindings.is_empty(), "FIB cold after crash");
        assert!(f.take_dirty().contains(&2), "engine told to wipe the node");
        // While down it neither ticks nor receives.
        let (sends, _) = f.tick(6_000_000);
        assert!(sends.iter().all(|s| s.from != 2), "crashed node is silent");
        f.restart_node(20_000_000, 2);
        assert!(
            !f.config_for(2).bindings.is_empty(),
            "origin FECs re-bound at restart"
        );
        let new_egress_label = f.config_for(2).bindings[0].key;
        assert_ne!(
            old_egress_label, new_egress_label,
            "restart never re-issues a label neighbors may still use"
        );
        // Sessions re-form and upstream routes return.
        converge(&mut f, 40);
        assert!(!f.config_for(0).fecs.is_empty(), "relearned end to end");
    }
}
