//! `mpls-sim` — run JSON-described MPLS scenarios.
//!
//! ```text
//! mpls-sim run <scenario.json>          execute a scenario, print the report
//! mpls-sim run --json <scenario.json>   ... as machine-readable JSON
//! mpls-sim validate <scenario.json>     parse + signal without running traffic
//! mpls-sim example                      print the bundled example scenario
//! ```

use mpls_cli::{format_report, Scenario};
use std::path::Path;
use std::process::ExitCode;

const EXAMPLE: &str = include_str!("../scenarios/example.json");

fn usage() -> ExitCode {
    eprintln!("usage: mpls-sim <run|validate> <scenario.json> | mpls-sim example");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some(cmd @ ("run" | "validate")) => {
            let json = args.iter().any(|a| a == "--json");
            let Some(path) = args.iter().skip(1).find(|a| *a != "--json") else {
                return usage();
            };
            let scenario = match Scenario::load(Path::new(path)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "validate" {
                match scenario.build_control_plane() {
                    Ok(cp) => {
                        println!(
                            "ok: {} nodes, {} links, {} LSPs signaled",
                            cp.topology().nodes().len(),
                            cp.topology().links().len(),
                            cp.lsp_ids().len()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                match scenario.run() {
                    Ok(report) => {
                        if json {
                            match serde_json::to_string_pretty(&report) {
                                Ok(text) => println!("{text}"),
                                Err(e) => {
                                    eprintln!("error: cannot serialize report: {e}");
                                    return ExitCode::FAILURE;
                                }
                            }
                        } else {
                            println!("simulated {:.1} ms\n", report.elapsed_ns as f64 / 1e6);
                            print!("{}", format_report(&report));
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => usage(),
    }
}
