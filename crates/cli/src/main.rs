//! `mpls-sim` — run JSON-described MPLS scenarios.
//!
//! ```text
//! mpls-sim run <scenario.json>          execute a scenario, print the report
//! mpls-sim run --json <scenario.json>   ... as machine-readable JSON
//! mpls-sim run --metrics-out <path> <scenario.json>
//!                                       ... collect telemetry, write it to
//!                                       <path> (.csv for CSV, else JSON)
//! mpls-sim run --shards <n> <scenario.json>
//!                                       ... execute on <n> engine shards
//!                                       (same report, less wall-clock)
//! mpls-sim run --control <mode> <scenario.json>
//!                                       ... force the control plane:
//!                                       "centralized", "ldp" or "sr"
//! mpls-sim run --engine <kind> <scenario.json>
//!                                       ... force the execution engine:
//!                                       "barrier" or "merge"
//! mpls-sim validate <scenario.json>     parse + signal without running traffic
//! mpls-sim example                      print the bundled example scenario
//! ```

use mpls_cli::{format_report, Scenario};
use mpls_net::{telemetry_to_csv, telemetry_to_json};
use std::path::Path;
use std::process::ExitCode;

const EXAMPLE: &str = include_str!("../scenarios/example.json");

fn usage() -> ExitCode {
    eprintln!(
        "usage: mpls-sim <run|validate> [--json] [--metrics-out <path>] [--shards <n>] \
         [--control <centralized|ldp|sr>] [--engine <barrier|merge>] <scenario.json> | \
         mpls-sim example"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("example") => {
            println!("{EXAMPLE}");
            ExitCode::SUCCESS
        }
        Some(cmd @ ("run" | "validate")) => {
            let mut json = false;
            let mut metrics_out: Option<String> = None;
            let mut shards: Option<usize> = None;
            let mut control: Option<String> = None;
            let mut engine: Option<String> = None;
            let mut path: Option<String> = None;
            let mut rest = args.iter().skip(1);
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--metrics-out" => match rest.next() {
                        Some(p) => metrics_out = Some(p.clone()),
                        None => {
                            eprintln!("error: --metrics-out needs a path");
                            return usage();
                        }
                    },
                    "--shards" => match rest.next().and_then(|n| n.parse::<usize>().ok()) {
                        Some(n) if n >= 1 => shards = Some(n),
                        _ => {
                            eprintln!("error: --shards needs a count >= 1");
                            return usage();
                        }
                    },
                    "--control" => match rest.next() {
                        Some(m) => control = Some(m.clone()),
                        None => {
                            eprintln!("error: --control needs a mode (centralized, ldp or sr)");
                            return usage();
                        }
                    },
                    "--engine" => match rest.next() {
                        Some(k) => engine = Some(k.clone()),
                        None => {
                            eprintln!("error: --engine needs a kind (barrier or merge)");
                            return usage();
                        }
                    },
                    other if path.is_none() => path = Some(other.to_string()),
                    other => {
                        eprintln!("error: unexpected argument {other:?}");
                        return usage();
                    }
                }
            }
            let Some(path) = path else {
                return usage();
            };
            let scenario = match Scenario::load(Path::new(&path)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "validate" {
                match scenario.build_control_plane() {
                    Ok(cp) => {
                        println!(
                            "ok: {} nodes, {} links, {} LSPs signaled",
                            cp.topology().nodes().len(),
                            cp.topology().links().len(),
                            cp.lsp_ids().len()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            } else {
                let result = scenario.run_with_overrides(
                    metrics_out.is_some(),
                    shards,
                    control.as_deref(),
                    engine.as_deref(),
                );
                match result {
                    Ok(report) => {
                        if let Some(out) = &metrics_out {
                            let tel = report
                                .telemetry
                                .as_ref()
                                .expect("telemetry was forced on for --metrics-out");
                            let text = if out.ends_with(".csv") {
                                telemetry_to_csv(tel)
                            } else {
                                telemetry_to_json(tel)
                            };
                            if let Err(e) = std::fs::write(out, text) {
                                eprintln!("error: cannot write {out}: {e}");
                                return ExitCode::FAILURE;
                            }
                            eprintln!("metrics written to {out}");
                        }
                        if json {
                            match serde_json::to_string_pretty(&report) {
                                Ok(text) => println!("{text}"),
                                Err(e) => {
                                    eprintln!("error: cannot serialize report: {e}");
                                    return ExitCode::FAILURE;
                                }
                            }
                        } else {
                            println!("simulated {:.1} ms\n", report.elapsed_ns as f64 / 1e6);
                            print!("{}", format_report(&report));
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        _ => usage(),
    }
}
