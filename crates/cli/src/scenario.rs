//! JSON scenario schema and loader.
//!
//! A scenario file describes a complete experiment: topology, attached
//! prefixes, LSPs and tunnels to signal, traffic flows, router kind,
//! queue discipline, seed and horizon. `mpls-sim run <file>` executes it
//! and prints the per-flow report.

use mpls_control::{ControlPlane, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::policer::PolicerSpec;
use mpls_net::traffic::{FlowSpec, TrafficPattern};
use mpls_net::{QueueDiscipline, RouterKind, Simulation};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::CosBits;
use mpls_router::SwTimingModel;
use serde::Deserialize;

/// Errors while loading or running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// I/O failure reading the file.
    Io(std::io::Error),
    /// Malformed JSON or schema violation.
    Parse(serde_json::Error),
    /// Semantically invalid content.
    Invalid(String),
    /// LSP/tunnel signaling failed.
    Signal(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read scenario: {e}"),
            Self::Parse(e) => write!(f, "cannot parse scenario: {e}"),
            Self::Invalid(m) => write!(f, "invalid scenario: {m}"),
            Self::Signal(m) => write!(f, "signaling failed: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn parse_prefix(s: &str) -> Result<Prefix, ScenarioError> {
    let (addr, len) = s
        .split_once('/')
        .ok_or_else(|| ScenarioError::Invalid(format!("prefix {s:?} missing /len")))?;
    let addr = parse_addr(addr)
        .ok_or_else(|| ScenarioError::Invalid(format!("bad address in {s:?}")))?;
    let len: u8 = len
        .parse()
        .map_err(|_| ScenarioError::Invalid(format!("bad length in {s:?}")))?;
    if len > 32 {
        return Err(ScenarioError::Invalid(format!("/{len} > 32 in {s:?}")));
    }
    Ok(Prefix::new(addr, len))
}

fn parse_ip(s: &str) -> Result<u32, ScenarioError> {
    parse_addr(s).ok_or_else(|| ScenarioError::Invalid(format!("bad address {s:?}")))
}

/// Top-level scenario document.
#[derive(Debug, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Scenario {
    /// Nodes of the topology.
    pub nodes: Vec<NodeDecl>,
    /// Bidirectional links.
    pub links: Vec<LinkDecl>,
    /// Prefixes attached behind LERs (delivered locally).
    #[serde(default)]
    pub attached: Vec<AttachDecl>,
    /// LSPs to signal, in order.
    #[serde(default)]
    pub lsps: Vec<LspDecl>,
    /// Traffic flows.
    #[serde(default)]
    pub flows: Vec<FlowDecl>,
    /// Router implementation.
    #[serde(default)]
    pub router: RouterDecl,
    /// Queue discipline.
    #[serde(default)]
    pub queue: QueueDecl,
    /// RNG seed.
    #[serde(default)]
    pub seed: u64,
    /// Simulated horizon in milliseconds.
    #[serde(default = "default_horizon_ms")]
    pub horizon_ms: u64,
}

fn default_horizon_ms() -> u64 {
    1000
}

/// One node.
#[derive(Debug, Deserialize)]
pub struct NodeDecl {
    /// Node id.
    pub id: u32,
    /// `"ler"` or `"lsr"`.
    pub role: String,
    /// Display name.
    #[serde(default)]
    pub name: Option<String>,
}

/// One bidirectional link.
#[derive(Debug, Deserialize)]
pub struct LinkDecl {
    /// Endpoint A.
    pub a: u32,
    /// Endpoint B.
    pub b: u32,
    /// Routing cost (default 1).
    #[serde(default = "one")]
    pub cost: u32,
    /// Capacity in Mb/s.
    pub bandwidth_mbps: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
}

fn one() -> u32 {
    1
}

/// A locally attached prefix.
#[derive(Debug, Deserialize)]
pub struct AttachDecl {
    /// The owning LER.
    pub node: u32,
    /// Prefix, e.g. `"192.168.1.0/24"`.
    pub prefix: String,
}

/// One LSP request.
#[derive(Debug, Deserialize)]
pub struct LspDecl {
    /// Ingress LER.
    pub ingress: u32,
    /// Egress LER.
    pub egress: u32,
    /// FEC prefix.
    pub fec: String,
    /// CoS 0–7 (default 0).
    #[serde(default)]
    pub cos: u8,
    /// Reserved bandwidth in Mb/s (default 0 = best effort).
    #[serde(default)]
    pub bandwidth_mbps: u64,
    /// Pinned route (node ids), optional.
    #[serde(default)]
    pub explicit_route: Option<Vec<u32>>,
    /// Penultimate-hop popping.
    #[serde(default)]
    pub php: bool,
}

/// One traffic flow.
#[derive(Debug, Deserialize)]
pub struct FlowDecl {
    /// Flow name for the report.
    pub name: String,
    /// Ingress LER.
    pub ingress: u32,
    /// Source address.
    pub src: String,
    /// Destination address.
    pub dst: String,
    /// Payload bytes per packet.
    pub payload_bytes: usize,
    /// IP precedence 0–7 (default 0).
    #[serde(default)]
    pub precedence: u8,
    /// Traffic pattern.
    pub pattern: PatternDecl,
    /// Start time, ms (default 0).
    #[serde(default)]
    pub start_ms: u64,
    /// Stop time, ms.
    pub stop_ms: u64,
    /// Optional edge policer.
    #[serde(default)]
    pub police: Option<PoliceDecl>,
}

/// Traffic pattern declaration.
#[derive(Debug, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PatternDecl {
    /// Constant bit rate.
    Cbr {
        /// Inter-packet gap in microseconds.
        interval_us: u64,
    },
    /// Poisson arrivals.
    Poisson {
        /// Mean inter-packet gap in microseconds.
        mean_interval_us: u64,
    },
    /// Bursty on/off.
    OnOff {
        /// Burst length (µs).
        on_us: u64,
        /// Silence length (µs).
        off_us: u64,
        /// In-burst gap (µs).
        interval_us: u64,
    },
}

/// Edge policer declaration.
#[derive(Debug, Deserialize)]
pub struct PoliceDecl {
    /// Committed rate in Mb/s.
    pub rate_mbps: u64,
    /// Burst tolerance in bytes.
    pub burst_bytes: u64,
}

/// Router implementation declaration.
#[derive(Debug, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RouterDecl {
    /// The cycle-accurate embedded router.
    Embedded {
        /// FPGA clock in MHz (default 50).
        #[serde(default = "fifty")]
        clock_mhz: f64,
    },
    /// Software router with hash lookups.
    SoftwareHash,
    /// Software router with linear lookups.
    SoftwareLinear,
}

fn fifty() -> f64 {
    50.0
}

impl Default for RouterDecl {
    fn default() -> Self {
        RouterDecl::Embedded { clock_mhz: 50.0 }
    }
}

/// Queue discipline declaration.
#[derive(Debug, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum QueueDecl {
    /// Tail-drop FIFO.
    Fifo {
        /// Capacity in packets.
        capacity: usize,
    },
    /// Strict priority by CoS.
    CosPriority {
        /// Capacity per class.
        per_class: usize,
    },
    /// Random early detection.
    Red {
        /// Hard capacity.
        capacity: usize,
        /// Early-drop onset.
        min_th: usize,
        /// Full-drop threshold.
        max_th: usize,
        /// Max drop probability in percent.
        max_p_percent: u8,
    },
}

impl Default for QueueDecl {
    fn default() -> Self {
        QueueDecl::Fifo { capacity: 64 }
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(text).map_err(ScenarioError::Parse)
    }

    /// Loads a scenario from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(ScenarioError::Io)?;
        Self::from_json(&text)
    }

    /// Builds the control plane: topology, attachments, LSPs.
    pub fn build_control_plane(&self) -> Result<ControlPlane, ScenarioError> {
        let mut topo = Topology::new();
        for n in &self.nodes {
            let role = match n.role.to_ascii_lowercase().as_str() {
                "ler" => RouterRole::Ler,
                "lsr" => RouterRole::Lsr,
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "node {}: unknown role {other:?} (use \"ler\" or \"lsr\")",
                        n.id
                    )))
                }
            };
            let name = n.name.clone().unwrap_or_else(|| format!("node-{}", n.id));
            topo.add_node(n.id, role, name);
        }
        for l in &self.links {
            topo.add_link(LinkSpec {
                a: l.a,
                b: l.b,
                cost: l.cost,
                bandwidth_bps: l.bandwidth_mbps * 1_000_000,
                delay_ns: l.delay_us * 1_000,
            });
        }
        let mut cp = ControlPlane::new(topo);
        for a in &self.attached {
            cp.attach_prefix(a.node, parse_prefix(&a.prefix)?);
        }
        for (i, l) in self.lsps.iter().enumerate() {
            let req = LspRequest {
                ingress: l.ingress,
                egress: l.egress,
                fec: parse_prefix(&l.fec)?,
                cos: CosBits::new(l.cos)
                    .map_err(|e| ScenarioError::Invalid(format!("lsp #{i}: {e}")))?,
                bandwidth_bps: l.bandwidth_mbps * 1_000_000,
                explicit_route: l.explicit_route.clone(),
                php: l.php,
            };
            cp.establish_lsp(req)
                .map_err(|e| ScenarioError::Signal(format!("lsp #{i}: {e:?}")))?;
        }
        Ok(cp)
    }

    /// The router kind.
    pub fn router_kind(&self) -> RouterKind {
        match self.router {
            RouterDecl::Embedded { clock_mhz } => RouterKind::Embedded {
                clock: ClockSpec {
                    freq_hz: clock_mhz * 1e6,
                    device: "scenario clock",
                },
            },
            RouterDecl::SoftwareHash => RouterKind::SoftwareHash {
                timing: SwTimingModel::default(),
            },
            RouterDecl::SoftwareLinear => RouterKind::SoftwareLinear {
                timing: SwTimingModel::default(),
            },
        }
    }

    /// The queue discipline.
    pub fn queue_discipline(&self) -> QueueDiscipline {
        match self.queue {
            QueueDecl::Fifo { capacity } => QueueDiscipline::Fifo { capacity },
            QueueDecl::CosPriority { per_class } => QueueDiscipline::CosPriority { per_class },
            QueueDecl::Red {
                capacity,
                min_th,
                max_th,
                max_p_percent,
            } => QueueDiscipline::Red {
                capacity,
                min_th,
                max_th,
                max_p_percent,
            },
        }
    }

    /// Converts the flow declarations.
    pub fn flow_specs(&self) -> Result<Vec<FlowSpec>, ScenarioError> {
        self.flows
            .iter()
            .map(|f| {
                Ok(FlowSpec {
                    name: f.name.clone(),
                    ingress: f.ingress,
                    src_addr: parse_ip(&f.src)?,
                    dst_addr: parse_ip(&f.dst)?,
                    payload_bytes: f.payload_bytes,
                    precedence: f.precedence & 0x7,
                    pattern: match f.pattern {
                        PatternDecl::Cbr { interval_us } => TrafficPattern::Cbr {
                            interval_ns: interval_us * 1_000,
                        },
                        PatternDecl::Poisson { mean_interval_us } => TrafficPattern::Poisson {
                            mean_interval_ns: mean_interval_us * 1_000,
                        },
                        PatternDecl::OnOff {
                            on_us,
                            off_us,
                            interval_us,
                        } => TrafficPattern::OnOff {
                            on_ns: on_us * 1_000,
                            off_ns: off_us * 1_000,
                            interval_ns: interval_us * 1_000,
                        },
                    },
                    start_ns: f.start_ms * 1_000_000,
                    stop_ns: f.stop_ms * 1_000_000,
                    police: f.police.as_ref().map(|p| PolicerSpec {
                        rate_bps: p.rate_mbps * 1_000_000,
                        burst_bytes: p.burst_bytes,
                    }),
                })
            })
            .collect()
    }

    /// Builds and runs the whole scenario.
    pub fn run(&self) -> Result<mpls_net::SimReport, ScenarioError> {
        let cp = self.build_control_plane()?;
        let mut sim = Simulation::build(
            &cp,
            self.router_kind(),
            self.queue_discipline(),
            self.seed,
        );
        for f in self.flow_specs()? {
            sim.add_flow(f);
        }
        // Generous drain margin past the horizon.
        Ok(sim.run(self.horizon_ms * 1_000_000 + 500_000_000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = include_str!("../scenarios/example.json");

    #[test]
    fn example_scenario_parses_and_runs() {
        let sc = Scenario::from_json(EXAMPLE).expect("example parses");
        let report = sc.run().expect("example runs");
        let voip = report.flow("voip").expect("voip flow present");
        assert!(voip.sent > 0);
        assert_eq!(voip.sent, voip.delivered + voip.router_dropped + voip.queue_dropped + voip.policer_dropped);
    }

    #[test]
    fn bad_role_is_rejected() {
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.nodes[0].role = "switch".into();
        assert!(matches!(
            sc.build_control_plane(),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn bad_prefix_is_rejected() {
        assert!(parse_prefix("10.0.0.0").is_err());
        assert!(parse_prefix("10.0.0.0/33").is_err());
        assert!(parse_prefix("10.0.0/8").is_err());
        assert!(parse_prefix("10.0.0.0/8").is_ok());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let bad = r#"{"nodes": [], "links": [], "warp_drive": true}"#;
        assert!(matches!(
            Scenario::from_json(bad),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn defaults_apply() {
        let minimal = r#"{
            "nodes": [{"id": 0, "role": "ler"}, {"id": 1, "role": "ler"}],
            "links": [{"a": 0, "b": 1, "bandwidth_mbps": 100, "delay_us": 100}]
        }"#;
        let sc = Scenario::from_json(minimal).unwrap();
        assert_eq!(sc.horizon_ms, 1000);
        assert!(matches!(sc.router, RouterDecl::Embedded { .. }));
        assert!(matches!(sc.queue, QueueDecl::Fifo { capacity: 64 }));
        let report = sc.run().unwrap();
        assert!(report.flows.is_empty());
    }
}
