//! JSON scenario schema and loader.
//!
//! A scenario file describes a complete experiment: topology, attached
//! prefixes, LSPs and tunnels to signal, traffic flows, router kind,
//! queue discipline, seed and horizon. `mpls-sim run <file>` executes it
//! and prints the per-flow report.

use mpls_control::{ControlPlane, LinkId, LinkSpec, LspRequest, RouterRole, Topology};
use mpls_core::ClockSpec;
use mpls_dataplane::ftn::Prefix;
use mpls_net::policer::PolicerSpec;
use mpls_net::subscriber::{SlaClass, SubscriberModel};
use mpls_net::traffic::{ClosedLoopSpec, FlowSpec, TrafficPattern};
use mpls_net::{
    FaultPlan, LdpConfig, QueueDiscipline, RecoveryMode, RestorationPolicy, RouterKind, Simulation,
    TelemetryConfig,
};
use mpls_packet::ipv4::parse_addr;
use mpls_packet::CosBits;
use mpls_router::SwTimingModel;
use mpls_sr::SrConfig;
use serde::{Deserialize, Serialize};

/// Errors while loading or running a scenario.
#[derive(Debug)]
pub enum ScenarioError {
    /// I/O failure reading the file.
    Io(std::io::Error),
    /// Malformed JSON or schema violation.
    Parse(serde_json::Error),
    /// Semantically invalid content.
    Invalid(String),
    /// LSP/tunnel signaling failed.
    Signal(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read scenario: {e}"),
            Self::Parse(e) => write!(f, "cannot parse scenario: {e}"),
            Self::Invalid(m) => write!(f, "invalid scenario: {m}"),
            Self::Signal(m) => write!(f, "signaling failed: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn parse_prefix(s: &str) -> Result<Prefix, ScenarioError> {
    let (addr, len) = s
        .split_once('/')
        .ok_or_else(|| ScenarioError::Invalid(format!("prefix {s:?} missing /len")))?;
    let addr =
        parse_addr(addr).ok_or_else(|| ScenarioError::Invalid(format!("bad address in {s:?}")))?;
    let len: u8 = len
        .parse()
        .map_err(|_| ScenarioError::Invalid(format!("bad length in {s:?}")))?;
    if len > 32 {
        return Err(ScenarioError::Invalid(format!("/{len} > 32 in {s:?}")));
    }
    Ok(Prefix::new(addr, len))
}

fn parse_ip(s: &str) -> Result<u32, ScenarioError> {
    parse_addr(s).ok_or_else(|| ScenarioError::Invalid(format!("bad address {s:?}")))
}

/// Top-level scenario document.
///
/// Implements `Serialize` as well: the chaos harness shrinks failing
/// scenarios and re-emits them as standalone repro files for
/// `mpls-sim run`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Scenario {
    /// Nodes of the topology. May be empty when a `topology` section
    /// synthesizes the graph instead.
    #[serde(default)]
    pub nodes: Vec<NodeDecl>,
    /// Bidirectional links.
    #[serde(default)]
    pub links: Vec<LinkDecl>,
    /// Parametric topology synthesis: instead of enumerating nodes,
    /// links and LSPs, name a family (`"fat_tree"`, `"ring_of_rings"`)
    /// at a width and an LSP volume, and the streaming generator
    /// derives the whole workload from the scenario seed. Mutually
    /// exclusive with explicit `nodes`/`links`/`lsps`/`attached`.
    #[serde(default)]
    pub topology: Option<TopologyDecl>,
    /// Prefixes attached behind LERs (delivered locally).
    #[serde(default)]
    pub attached: Vec<AttachDecl>,
    /// LSPs to signal, in order.
    #[serde(default)]
    pub lsps: Vec<LspDecl>,
    /// Traffic flows.
    #[serde(default)]
    pub flows: Vec<FlowDecl>,
    /// Subscriber populations, each expanded into one closed-loop flow
    /// per SLA class (diurnal load, flash crowds, per-class CoS and
    /// FCT SLAs). Expanded flows follow the explicit `flows` in id
    /// order and are named `"<population>/<class>"`.
    #[serde(default)]
    pub subscribers: Vec<SubscriberDecl>,
    /// Router implementation.
    #[serde(default)]
    pub router: RouterDecl,
    /// Queue discipline.
    #[serde(default)]
    pub queue: QueueDecl,
    /// Runtime fault injection and restoration policy.
    #[serde(default)]
    pub faults: Option<FaultsDecl>,
    /// Control plane: `"centralized"` (default, the omniscient solver
    /// programs every node before t=0), `"ldp"` (nodes discover labels
    /// in-band by exchanging LDP PDUs over the simulated links), or
    /// `"sr"` (segment routing: per-node SIDs from an SRGB, source
    /// routes compiled at the ingress, no per-LSP transit state;
    /// `--control` overrides).
    #[serde(default)]
    pub control: Option<String>,
    /// LDP protocol timers, used when the control mode is `"ldp"`.
    #[serde(default)]
    pub ldp: Option<LdpDecl>,
    /// Segment-routing knobs, used when the control mode is `"sr"`.
    #[serde(default)]
    pub sr: Option<SrDecl>,
    /// Metrics collection. Omitting the section runs without telemetry
    /// (zero overhead); `--metrics-out` forces it on regardless.
    #[serde(default)]
    pub telemetry: Option<TelemetryDecl>,
    /// RNG seed.
    #[serde(default)]
    pub seed: u64,
    /// Simulated horizon in milliseconds.
    #[serde(default = "default_horizon_ms")]
    pub horizon_ms: u64,
    /// Engine shard count (default 1; `--shards` overrides). The report
    /// is identical at any value — sharding only trades wall-clock time.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Execution engine: `"barrier"` (global epoch barrier, the
    /// default) or `"merge"` (channel-merge scheduler with per-shard
    /// conservative bounds). `--engine` overrides. The report is
    /// byte-identical either way — the engine only trades wall-clock.
    #[serde(default)]
    pub engine: Option<String>,
}

fn default_horizon_ms() -> u64 {
    1000
}

/// The resolved control-plane mode of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlChoice {
    /// The omniscient solver programs every node before t=0.
    Centralized,
    /// Nodes discover labels in-band over LDP sessions.
    Ldp,
    /// Segment routing: compiled source routes, no transit LSP state.
    Sr,
}

/// A synthesized-topology workload (see [`mpls_net::ScaleSpec`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TopologyDecl {
    /// `"fat_tree"` or `"ring_of_rings"`.
    pub family: String,
    /// Fat-tree arity (even; default 4).
    #[serde(default = "default_k")]
    pub k: u32,
    /// LERs under each fat-tree edge switch (default 2).
    #[serde(default = "default_lers_per_edge")]
    pub lers_per_edge: u32,
    /// Backbone gateways for ring-of-rings (default 8).
    #[serde(default = "default_rings")]
    pub rings: u32,
    /// LERs per local ring (default 4).
    #[serde(default = "default_ring_size")]
    pub ring_size: u32,
    /// LSPs to signal, each riding a hierarchical tunnel with PHP.
    pub lsps_total: usize,
    /// Tunnel mesh density (stride classes per anchor; default 2).
    #[serde(default = "default_strides")]
    pub tunnel_strides: u32,
    /// Traffic flows over a sampled subset of the LSPs (default 0).
    #[serde(default)]
    pub flows: usize,
    /// Payload bytes per generated flow packet (default 256).
    #[serde(default = "default_scale_payload")]
    pub payload_bytes: usize,
    /// CBR inter-packet gap per generated flow, µs (default 100).
    #[serde(default = "default_scale_interval_us")]
    pub flow_interval_us: u64,
    /// Generated flows start at this time, ms (default 0).
    #[serde(default)]
    pub flow_start_ms: u64,
    /// Generated flows stop at this time, ms (default 50).
    #[serde(default = "default_scale_stop_ms")]
    pub flow_stop_ms: u64,
    /// Capacity of every synthesized link, Mb/s (default 10000).
    #[serde(default = "default_scale_bw_mbps")]
    pub bandwidth_mbps: u64,
    /// One-way delay of every synthesized link, µs (default 10).
    #[serde(default = "default_scale_delay_us")]
    pub delay_us: u64,
}

fn default_k() -> u32 {
    4
}
fn default_lers_per_edge() -> u32 {
    2
}
fn default_rings() -> u32 {
    8
}
fn default_ring_size() -> u32 {
    4
}
fn default_strides() -> u32 {
    2
}
fn default_scale_payload() -> usize {
    256
}
fn default_scale_interval_us() -> u64 {
    100
}
fn default_scale_stop_ms() -> u64 {
    50
}
fn default_scale_bw_mbps() -> u64 {
    10_000
}
fn default_scale_delay_us() -> u64 {
    10
}

impl TopologyDecl {
    /// Resolves to the streaming generator's spec; `seed` is the
    /// scenario seed, so the whole workload derives from it.
    pub fn to_spec(&self, seed: u64) -> Result<mpls_net::ScaleSpec, ScenarioError> {
        let family = match self.family.to_ascii_lowercase().as_str() {
            "fat_tree" => mpls_net::ScaleFamily::FatTree {
                k: self.k,
                lers_per_edge: self.lers_per_edge,
            },
            "ring_of_rings" => mpls_net::ScaleFamily::RingOfRings {
                rings: self.rings,
                ring_size: self.ring_size,
            },
            other => {
                return Err(ScenarioError::Invalid(format!(
                    "unknown topology family {other:?} (use \"fat_tree\" or \"ring_of_rings\")"
                )))
            }
        };
        Ok(mpls_net::ScaleSpec {
            family,
            lsps_total: self.lsps_total,
            tunnel_strides: self.tunnel_strides,
            flows: self.flows,
            payload_bytes: self.payload_bytes,
            flow_interval_ns: self.flow_interval_us * 1_000,
            flow_start_ns: self.flow_start_ms * 1_000_000,
            flow_stop_ns: self.flow_stop_ms * 1_000_000,
            bandwidth_bps: self.bandwidth_mbps * 1_000_000,
            delay_ns: self.delay_us * 1_000,
            seed,
        })
    }
}

/// One node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeDecl {
    /// Node id.
    pub id: u32,
    /// `"ler"` or `"lsr"`.
    pub role: String,
    /// Display name.
    #[serde(default)]
    pub name: Option<String>,
    /// Shard placement hint (taken modulo the shard count). Unhinted
    /// nodes fill contiguous blocks in declaration order.
    #[serde(default)]
    pub shard: Option<usize>,
}

/// One bidirectional link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkDecl {
    /// Endpoint A.
    pub a: u32,
    /// Endpoint B.
    pub b: u32,
    /// Routing cost (default 1).
    #[serde(default = "one")]
    pub cost: u32,
    /// Capacity in Mb/s.
    pub bandwidth_mbps: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
}

fn one() -> u32 {
    1
}

/// A locally attached prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttachDecl {
    /// The owning LER.
    pub node: u32,
    /// Prefix, e.g. `"192.168.1.0/24"`.
    pub prefix: String,
}

/// One LSP request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LspDecl {
    /// Ingress LER.
    pub ingress: u32,
    /// Egress LER.
    pub egress: u32,
    /// FEC prefix.
    pub fec: String,
    /// CoS 0–7 (default 0).
    #[serde(default)]
    pub cos: u8,
    /// Reserved bandwidth in Mb/s (default 0 = best effort).
    #[serde(default)]
    pub bandwidth_mbps: u64,
    /// Pinned route (node ids), optional.
    #[serde(default)]
    pub explicit_route: Option<Vec<u32>>,
    /// Penultimate-hop popping.
    #[serde(default)]
    pub php: bool,
    /// Pre-signal a link-disjoint standby backup (1:1 path protection).
    #[serde(default)]
    pub protected: bool,
}

/// Fault injection section: scheduled link events, random loss, and the
/// detection/recovery timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultsDecl {
    /// Scheduled link state changes.
    #[serde(default)]
    pub events: Vec<FaultEventDecl>,
    /// Per-link random wire loss.
    #[serde(default)]
    pub loss: Vec<LinkLossDecl>,
    /// Per-link control-PDU chaos windows (loss/duplication/reorder/
    /// corruption of LDP PDUs only; data traffic is untouched).
    #[serde(default)]
    pub pdu_chaos: Vec<PduChaosDecl>,
    /// Failure-detection delay in microseconds (default 1000).
    #[serde(default = "thousand")]
    pub detection_delay_us: u64,
    /// Latency of one signaling attempt in microseconds (default 1000).
    #[serde(default = "thousand")]
    pub resignal_delay_us: u64,
    /// Exponential backoff multiplier between attempts (default 2).
    #[serde(default = "two")]
    pub backoff_factor: u32,
    /// Re-signal attempts after the first (default 8).
    #[serde(default = "eight")]
    pub max_retries: u32,
    /// Hold-down after physical repair, in milliseconds (default 5).
    #[serde(default = "five")]
    pub hold_down_ms: u64,
    /// `"none"`, `"restoration"` or `"protection"` (default
    /// `"restoration"`).
    #[serde(default = "default_recovery")]
    pub recovery: String,
}

impl Default for FaultsDecl {
    /// Matches the serde field defaults (an empty `"faults": {}` section).
    fn default() -> Self {
        Self {
            events: Vec::new(),
            loss: Vec::new(),
            pdu_chaos: Vec::new(),
            detection_delay_us: thousand(),
            resignal_delay_us: thousand(),
            backoff_factor: two(),
            max_retries: eight(),
            hold_down_ms: five(),
            recovery: default_recovery(),
        }
    }
}

fn thousand() -> u64 {
    1000
}
fn two() -> u32 {
    2
}
fn eight() -> u32 {
    8
}
fn five() -> u64 {
    5
}
fn default_recovery() -> String {
    "restoration".into()
}

/// LDP timer section.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LdpDecl {
    /// Hello/keepalive interval in microseconds (default 1000).
    #[serde(default = "thousand")]
    pub hello_interval_us: u64,
    /// Session hold time in microseconds (default 3500). A session with
    /// no PDU received for this long is torn down — this bounds failure
    /// detection.
    #[serde(default = "ldp_hold_us")]
    pub hold_us: u64,
    /// Cap on the re-initialization backoff exponent (default 5): the
    /// n-th unanswered attempt waits
    /// `max(hello_interval << min(n, cap), hold)` with ±25% jitter.
    #[serde(default = "ldp_backoff_exp")]
    pub max_backoff_exp: u32,
    /// Seed for the deterministic backoff jitter (default 0).
    #[serde(default)]
    pub jitter_seed: u64,
    /// Liberal retention TTL in microseconds (default 0 = conservative
    /// retention): bindings from a dead session keep serving traffic
    /// this long unless refreshed first.
    #[serde(default)]
    pub stale_ttl_us: u64,
}

impl Default for LdpDecl {
    /// Matches the serde field defaults (an empty `"ldp": {}` section).
    fn default() -> Self {
        Self {
            hello_interval_us: thousand(),
            hold_us: ldp_hold_us(),
            max_backoff_exp: ldp_backoff_exp(),
            jitter_seed: 0,
            stale_ttl_us: 0,
        }
    }
}

fn ldp_hold_us() -> u64 {
    3500
}
fn ldp_backoff_exp() -> u32 {
    LdpConfig::default().max_backoff_exp
}

/// Segment-routing section: SRGB placement, stack-depth budgets, and
/// the metadata LSEs the ingress appends below the source route.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SrDecl {
    /// First label of the Segment Routing Global Block (default 16000).
    #[serde(default = "sr_srgb_base")]
    pub srgb_base: u32,
    /// Readable Label Depth programmed into every node (default: the
    /// full wire stack).
    #[serde(default = "sr_depth")]
    pub rld: u8,
    /// Maximum labels an ingress pushes at once; longer routes get
    /// loose-hop compressed (default: the full wire stack).
    #[serde(default = "sr_depth")]
    pub max_push_depth: u8,
    /// Append an RFC 6790 ELI/EL entropy pair (default true).
    #[serde(default = "truthy")]
    pub entropy: bool,
    /// Append a minimal MNA network-action sub-stack (default false).
    #[serde(default)]
    pub mna: bool,
}

impl Default for SrDecl {
    /// Matches the serde field defaults (an empty `"sr": {}` section).
    fn default() -> Self {
        Self {
            srgb_base: sr_srgb_base(),
            rld: sr_depth(),
            max_push_depth: sr_depth(),
            entropy: true,
            mna: false,
        }
    }
}

fn sr_srgb_base() -> u32 {
    SrConfig::default().srgb_base
}
fn sr_depth() -> u8 {
    mpls_packet::MAX_STACK_DEPTH as u8
}

/// Telemetry section: turns on the instrument registry for the run and
/// tunes its sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TelemetryDecl {
    /// Collect metrics for this run (default true when the section is
    /// present; a disabled section is handy for A/B-ing a scenario file).
    #[serde(default = "truthy")]
    pub enabled: bool,
    /// Spacing of queue-depth/utilization samples in microseconds
    /// (default 100).
    #[serde(default = "hundred")]
    pub sample_interval_us: u64,
    /// Points per time series before downsampling (default 4096).
    #[serde(default = "default_series_capacity")]
    pub series_capacity: usize,
    /// Trace event capacity (default 1024).
    #[serde(default = "default_event_capacity")]
    pub event_capacity: usize,
}

impl Default for TelemetryDecl {
    /// Matches the serde field defaults (an empty `"telemetry": {}`
    /// section).
    fn default() -> Self {
        Self {
            enabled: truthy(),
            sample_interval_us: hundred(),
            series_capacity: default_series_capacity(),
            event_capacity: default_event_capacity(),
        }
    }
}

fn truthy() -> bool {
    true
}
fn hundred() -> u64 {
    100
}
fn default_series_capacity() -> usize {
    TelemetryConfig::default().series_capacity
}
fn default_event_capacity() -> usize {
    TelemetryConfig::default().event_capacity
}

/// One scheduled link transition.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultEventDecl {
    /// The link between `a` and `b` fails at `at_ms`.
    LinkDown {
        /// When, in milliseconds.
        at_ms: u64,
        /// Endpoint A.
        a: u32,
        /// Endpoint B.
        b: u32,
    },
    /// The link between `a` and `b` is repaired at `at_ms`.
    LinkUp {
        /// When, in milliseconds.
        at_ms: u64,
        /// Endpoint A.
        a: u32,
        /// Endpoint B.
        b: u32,
    },
    /// `node` crashes at `at_ms`: full state loss, sessions torn down,
    /// incident links dark, FIB cold until re-learned.
    NodeDown {
        /// When, in milliseconds.
        at_ms: u64,
        /// The crashing node.
        node: u32,
    },
    /// `node` restarts at `at_ms` and rejoins with a cold FIB.
    NodeUp {
        /// When, in milliseconds.
        at_ms: u64,
        /// The restarting node.
        node: u32,
    },
    /// Control-channel partition on the link between `a` and `b` begins
    /// at `at_ms`: control PDUs drop, data traffic keeps flowing.
    PartitionStart {
        /// When, in milliseconds.
        at_ms: u64,
        /// Endpoint A.
        a: u32,
        /// Endpoint B.
        b: u32,
    },
    /// The control-channel partition between `a` and `b` heals at `at_ms`.
    PartitionEnd {
        /// When, in milliseconds.
        at_ms: u64,
        /// Endpoint A.
        a: u32,
        /// Endpoint B.
        b: u32,
    },
}

/// Random wire loss on one link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkLossDecl {
    /// Endpoint A.
    pub a: u32,
    /// Endpoint B.
    pub b: u32,
    /// Per-packet loss probability (0.0–1.0).
    pub probability: f64,
}

/// One control-PDU chaos window on one link. Each probability is drawn
/// independently per PDU from a seeded per-link stream, so the same
/// scenario always misbehaves identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PduChaosDecl {
    /// Endpoint A.
    pub a: u32,
    /// Endpoint B.
    pub b: u32,
    /// Per-PDU drop probability (0.0–1.0, default 0).
    #[serde(default)]
    pub loss: f64,
    /// Per-PDU duplication probability (default 0).
    #[serde(default)]
    pub duplicate: f64,
    /// Per-PDU reorder (extra-delay) probability (default 0).
    #[serde(default)]
    pub reorder: f64,
    /// Per-PDU byte-corruption probability (default 0).
    #[serde(default)]
    pub corrupt: f64,
    /// Window start, ms (default 0).
    #[serde(default)]
    pub from_ms: u64,
    /// Window end, ms.
    pub until_ms: u64,
}

/// One traffic flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowDecl {
    /// Flow name for the report.
    pub name: String,
    /// Ingress LER.
    pub ingress: u32,
    /// Source address.
    pub src: String,
    /// Destination address.
    pub dst: String,
    /// Payload bytes per packet.
    pub payload_bytes: usize,
    /// IP precedence 0–7 (default 0).
    #[serde(default)]
    pub precedence: u8,
    /// Traffic pattern.
    pub pattern: PatternDecl,
    /// Start time, ms (default 0).
    #[serde(default)]
    pub start_ms: u64,
    /// Stop time, ms.
    pub stop_ms: u64,
    /// Optional edge policer.
    #[serde(default)]
    pub police: Option<PoliceDecl>,
}

/// Traffic pattern declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PatternDecl {
    /// Constant bit rate.
    Cbr {
        /// Inter-packet gap in microseconds.
        interval_us: u64,
    },
    /// Poisson arrivals.
    Poisson {
        /// Mean inter-packet gap in microseconds.
        mean_interval_us: u64,
    },
    /// Bursty on/off.
    OnOff {
        /// Burst length (µs).
        on_us: u64,
        /// Silence length (µs).
        off_us: u64,
        /// In-burst gap (µs).
        interval_us: u64,
    },
    /// Closed-loop congestion-controlled transfers (AIMD window,
    /// ECN-style marks, ack-clocked by reverse-path delivery). Fields
    /// mirror [`ClosedLoopDecl`]; serde's internally-tagged enums
    /// can't wrap a struct, so they are spelled out here.
    ClosedLoop {
        /// Mean transfer-arrival gap (µs) at the diurnal peak.
        #[serde(default = "default_cl_arrival_us")]
        mean_arrival_us: u64,
        /// Smallest transfer size in packets.
        #[serde(default = "default_cl_size_min")]
        size_min_pkts: u64,
        /// Largest transfer size in packets.
        #[serde(default = "default_cl_size_max")]
        size_max_pkts: u64,
        /// Pareto shape α in milli-units.
        #[serde(default = "default_cl_alpha_milli")]
        size_alpha_milli: u32,
        /// Congestion-window ceiling in packets.
        #[serde(default = "default_cl_max_cwnd")]
        max_cwnd: u64,
        /// Retransmission timeout (µs).
        #[serde(default = "default_cl_rto_us")]
        rto_us: u64,
        /// ECN-mark queue-depth threshold (0 disables).
        #[serde(default = "default_cl_ecn_threshold")]
        ecn_threshold: u32,
        /// Minimum emission gap (µs).
        #[serde(default = "default_cl_pacing_us")]
        pacing_us: u64,
        /// Flow-completion-time SLA (ms, 0 disables).
        #[serde(default)]
        sla_fct_ms: u64,
        /// Diurnal period (ms, 0 disables).
        #[serde(default)]
        diurnal_period_ms: u64,
        /// Trough rate, percent of peak.
        #[serde(default = "default_hundred_u8")]
        diurnal_trough_pct: u8,
        /// Flash-crowd start (ms).
        #[serde(default)]
        flash_start_ms: u64,
        /// Flash-crowd length (ms, 0 disables).
        #[serde(default)]
        flash_duration_ms: u64,
        /// Flash rate multiplier, percent.
        #[serde(default = "default_hundred_u32")]
        flash_multiplier_pct: u32,
    },
}

/// Knobs for a closed-loop pattern; every field except the arrival
/// rate defaults to the library's [`ClosedLoopSpec`] defaults.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClosedLoopDecl {
    /// Mean transfer-arrival gap (µs) at the diurnal peak.
    #[serde(default = "default_cl_arrival_us")]
    pub mean_arrival_us: u64,
    /// Smallest transfer size in packets.
    #[serde(default = "default_cl_size_min")]
    pub size_min_pkts: u64,
    /// Largest transfer size in packets (bounded-Pareto upper cut).
    #[serde(default = "default_cl_size_max")]
    pub size_max_pkts: u64,
    /// Pareto shape α in milli-units (1200 = α 1.2, heavy-tailed).
    #[serde(default = "default_cl_alpha_milli")]
    pub size_alpha_milli: u32,
    /// Congestion-window ceiling in packets.
    #[serde(default = "default_cl_max_cwnd")]
    pub max_cwnd: u64,
    /// Retransmission timeout (µs).
    #[serde(default = "default_cl_rto_us")]
    pub rto_us: u64,
    /// Queue depth at which packets are ECN-marked (0 disables).
    #[serde(default = "default_cl_ecn_threshold")]
    pub ecn_threshold: u32,
    /// Minimum gap between a flow's back-to-back emissions (µs).
    #[serde(default = "default_cl_pacing_us")]
    pub pacing_us: u64,
    /// Flow-completion-time SLA (ms, 0 disables).
    #[serde(default)]
    pub sla_fct_ms: u64,
    /// Diurnal rate-curve period (ms, 0 disables).
    #[serde(default)]
    pub diurnal_period_ms: u64,
    /// Arrival rate at the diurnal trough, percent of peak.
    #[serde(default = "default_hundred_u8")]
    pub diurnal_trough_pct: u8,
    /// Flash-crowd window start (ms).
    #[serde(default)]
    pub flash_start_ms: u64,
    /// Flash-crowd window length (ms, 0 disables).
    #[serde(default)]
    pub flash_duration_ms: u64,
    /// Arrival-rate multiplier inside the flash window, percent.
    #[serde(default = "default_hundred_u32")]
    pub flash_multiplier_pct: u32,
}

fn default_cl_arrival_us() -> u64 {
    2_000
}
fn default_cl_size_min() -> u64 {
    4
}
fn default_cl_size_max() -> u64 {
    256
}
fn default_cl_alpha_milli() -> u32 {
    1_200
}
fn default_cl_max_cwnd() -> u64 {
    32
}
fn default_cl_rto_us() -> u64 {
    20_000
}
fn default_cl_ecn_threshold() -> u32 {
    16
}
fn default_cl_pacing_us() -> u64 {
    2
}
fn default_hundred_u8() -> u8 {
    100
}
fn default_hundred_u32() -> u32 {
    100
}

impl Default for ClosedLoopDecl {
    fn default() -> Self {
        Self {
            mean_arrival_us: default_cl_arrival_us(),
            size_min_pkts: default_cl_size_min(),
            size_max_pkts: default_cl_size_max(),
            size_alpha_milli: default_cl_alpha_milli(),
            max_cwnd: default_cl_max_cwnd(),
            rto_us: default_cl_rto_us(),
            ecn_threshold: default_cl_ecn_threshold(),
            pacing_us: default_cl_pacing_us(),
            sla_fct_ms: 0,
            diurnal_period_ms: 0,
            diurnal_trough_pct: 100,
            flash_start_ms: 0,
            flash_duration_ms: 0,
            flash_multiplier_pct: 100,
        }
    }
}

impl ClosedLoopDecl {
    fn to_spec(self) -> ClosedLoopSpec {
        ClosedLoopSpec {
            mean_arrival_ns: self.mean_arrival_us * 1_000,
            size_min_pkts: self.size_min_pkts,
            size_max_pkts: self.size_max_pkts,
            size_alpha_milli: self.size_alpha_milli,
            max_cwnd: self.max_cwnd,
            rto_ns: self.rto_us * 1_000,
            ecn_threshold: self.ecn_threshold,
            pacing_ns: self.pacing_us * 1_000,
            sla_fct_ns: self.sla_fct_ms * 1_000_000,
            diurnal_period_ns: self.diurnal_period_ms * 1_000_000,
            diurnal_trough_pct: self.diurnal_trough_pct,
            flash_start_ns: self.flash_start_ms * 1_000_000,
            flash_duration_ns: self.flash_duration_ms * 1_000_000,
            flash_multiplier_pct: self.flash_multiplier_pct,
        }
    }
}

/// One subscriber population: a count of subscribers behind an ingress
/// LER, split into SLA classes, each class expanded into one aggregate
/// closed-loop flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscriberDecl {
    /// Population name; expanded flows are `"<name>/<class>"`.
    pub name: String,
    /// Ingress LER.
    pub ingress: u32,
    /// Source address for the population's traffic.
    pub src: String,
    /// Destination address.
    pub dst: String,
    /// Population size.
    pub subscribers: u64,
    /// Mean per-subscriber think time between transfers (ms) at the
    /// diurnal peak.
    #[serde(default = "default_think_ms")]
    pub mean_think_ms: u64,
    /// Shared closed-loop knobs (transfer sizes, congestion control,
    /// diurnal curve, flash crowd). `mean_arrival_us` and `sla_fct_ms`
    /// here are ignored: the arrival rate comes from the population
    /// and the SLA from each class.
    #[serde(default)]
    pub base: ClosedLoopDecl,
    /// Service tiers; empty means the built-in three-tier
    /// residential mix (gold/silver/bronze).
    #[serde(default)]
    pub classes: Vec<ClassDecl>,
    /// Start time, ms (default 0).
    #[serde(default)]
    pub start_ms: u64,
    /// Stop time, ms.
    pub stop_ms: u64,
}

fn default_think_ms() -> u64 {
    1_000
}

/// One SLA class of a subscriber population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// IP precedence 0–7 (default 0) — the CoS hook.
    #[serde(default)]
    pub precedence: u8,
    /// Share of the population in this class, percent.
    pub weight_pct: u32,
    /// Flow-completion-time SLA (ms, 0 disables).
    #[serde(default)]
    pub sla_fct_ms: u64,
    /// Payload bytes per packet for this class.
    pub payload_bytes: usize,
}

/// Edge policer declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoliceDecl {
    /// Committed rate in Mb/s.
    pub rate_mbps: u64,
    /// Burst tolerance in bytes.
    pub burst_bytes: u64,
}

/// Router implementation declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum RouterDecl {
    /// The cycle-accurate embedded router.
    Embedded {
        /// FPGA clock in MHz (default 50).
        #[serde(default = "fifty")]
        clock_mhz: f64,
    },
    /// Software router with hash lookups.
    SoftwareHash,
    /// Software router with linear lookups.
    SoftwareLinear,
    /// Software fast path: hash FIB with canonical (linear-equivalent)
    /// probe counts plus a per-ingress flow cache. Reports are
    /// byte-identical to `software_linear`; only the host runs faster.
    /// `MPLS_SIM_FLOW_CACHE=0` disables the cache,
    /// `MPLS_SIM_DIFF_LOOKUP=1` cross-checks every lookup against a
    /// shadow linear table.
    SoftwareFast,
}

fn fifty() -> f64 {
    50.0
}

impl Default for RouterDecl {
    fn default() -> Self {
        RouterDecl::Embedded { clock_mhz: 50.0 }
    }
}

/// Queue discipline declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum QueueDecl {
    /// Tail-drop FIFO.
    Fifo {
        /// Capacity in packets.
        capacity: usize,
    },
    /// Strict priority by CoS.
    CosPriority {
        /// Capacity per class.
        per_class: usize,
    },
    /// Random early detection.
    Red {
        /// Hard capacity.
        capacity: usize,
        /// Early-drop onset.
        min_th: usize,
        /// Full-drop threshold.
        max_th: usize,
        /// Max drop probability in percent.
        max_p_percent: u8,
    },
}

impl Default for QueueDecl {
    fn default() -> Self {
        QueueDecl::Fifo { capacity: 64 }
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(text).map_err(ScenarioError::Parse)
    }

    /// Loads a scenario from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(ScenarioError::Io)?;
        Self::from_json(&text)
    }

    /// Builds the control plane: topology, attachments, LSPs.
    pub fn build_control_plane(&self) -> Result<ControlPlane, ScenarioError> {
        if let Some(t) = &self.topology {
            if !self.nodes.is_empty() || !self.links.is_empty() {
                return Err(ScenarioError::Invalid(
                    "a topology section synthesizes the graph; drop explicit nodes/links".into(),
                ));
            }
            if !self.lsps.is_empty() || !self.attached.is_empty() {
                return Err(ScenarioError::Invalid(
                    "a topology section synthesizes the workload; drop explicit lsps/attached"
                        .into(),
                ));
            }
            let w = t
                .to_spec(self.seed)?
                .build()
                .map_err(|e| ScenarioError::Signal(format!("scale workload: {e:?}")))?;
            return Ok(w.cp);
        }
        if self.nodes.is_empty() {
            return Err(ScenarioError::Invalid(
                "scenario needs nodes or a topology section".into(),
            ));
        }
        let mut topo = Topology::new();
        for n in &self.nodes {
            let role = match n.role.to_ascii_lowercase().as_str() {
                "ler" => RouterRole::Ler,
                "lsr" => RouterRole::Lsr,
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "node {}: unknown role {other:?} (use \"ler\" or \"lsr\")",
                        n.id
                    )))
                }
            };
            let name = n.name.clone().unwrap_or_else(|| format!("node-{}", n.id));
            topo.add_node(n.id, role, name);
        }
        for l in &self.links {
            topo.add_link(LinkSpec {
                a: l.a,
                b: l.b,
                cost: l.cost,
                bandwidth_bps: l.bandwidth_mbps * 1_000_000,
                delay_ns: l.delay_us * 1_000,
            });
        }
        let mut cp = ControlPlane::new(topo);
        for a in &self.attached {
            cp.attach_prefix(a.node, parse_prefix(&a.prefix)?);
        }
        for (i, l) in self.lsps.iter().enumerate() {
            let req = LspRequest {
                ingress: l.ingress,
                egress: l.egress,
                fec: parse_prefix(&l.fec)?,
                cos: CosBits::new(l.cos)
                    .map_err(|e| ScenarioError::Invalid(format!("lsp #{i}: {e}")))?,
                bandwidth_bps: l.bandwidth_mbps * 1_000_000,
                explicit_route: l.explicit_route.clone(),
                php: l.php,
            };
            let id = cp
                .establish_lsp(req)
                .map_err(|e| ScenarioError::Signal(format!("lsp #{i}: {e:?}")))?;
            if l.protected {
                cp.protect_lsp(id)
                    .map_err(|e| ScenarioError::Signal(format!("lsp #{i} backup: {e:?}")))?;
            }
        }
        Ok(cp)
    }

    /// Translates the `faults` section against the built control plane
    /// (link endpoints resolve to link ids there).
    pub fn fault_plan(&self, cp: &ControlPlane) -> Result<Option<FaultPlan>, ScenarioError> {
        let Some(f) = &self.faults else {
            return Ok(None);
        };
        let mode = match f.recovery.to_ascii_lowercase().as_str() {
            "none" => RecoveryMode::None,
            "restoration" => RecoveryMode::Restoration,
            "protection" => RecoveryMode::Protection,
            other => {
                return Err(ScenarioError::Invalid(format!(
                    "unknown recovery {other:?} (use \"none\", \"restoration\" or \"protection\")"
                )))
            }
        };
        let link_of = |a: u32, b: u32| -> Result<LinkId, ScenarioError> {
            cp.topology()
                .link_between(a, b)
                .ok_or_else(|| ScenarioError::Invalid(format!("no link between {a} and {b}")))
        };
        let mut plan = FaultPlan::new(RestorationPolicy {
            detection_delay_ns: f.detection_delay_us * 1_000,
            resignal_delay_ns: f.resignal_delay_us * 1_000,
            backoff_factor: f.backoff_factor,
            max_retries: f.max_retries,
            hold_down_ns: f.hold_down_ms * 1_000_000,
            mode,
        });
        let node_of = |n: u32| -> Result<u32, ScenarioError> {
            if cp.topology().node(n).is_some() {
                Ok(n)
            } else {
                Err(ScenarioError::Invalid(format!("no node {n}")))
            }
        };
        for ev in &f.events {
            match *ev {
                FaultEventDecl::LinkDown { at_ms, a, b } => {
                    plan.link_down(at_ms * 1_000_000, link_of(a, b)?);
                }
                FaultEventDecl::LinkUp { at_ms, a, b } => {
                    plan.link_up(at_ms * 1_000_000, link_of(a, b)?);
                }
                FaultEventDecl::NodeDown { at_ms, node } => {
                    plan.node_down(at_ms * 1_000_000, node_of(node)?);
                }
                FaultEventDecl::NodeUp { at_ms, node } => {
                    plan.node_up(at_ms * 1_000_000, node_of(node)?);
                }
                FaultEventDecl::PartitionStart { at_ms, a, b } => {
                    // Window builders demand start < end; scheduled
                    // endpoints arrive separately here, so push the raw
                    // events instead.
                    plan.partition_start(at_ms * 1_000_000, link_of(a, b)?);
                }
                FaultEventDecl::PartitionEnd { at_ms, a, b } => {
                    plan.partition_end(at_ms * 1_000_000, link_of(a, b)?);
                }
            }
        }
        for l in &f.loss {
            if !(0.0..=1.0).contains(&l.probability) {
                return Err(ScenarioError::Invalid(format!(
                    "loss probability {} out of [0, 1]",
                    l.probability
                )));
            }
            plan.random_loss(link_of(l.a, l.b)?, l.probability);
        }
        for c in &f.pdu_chaos {
            for (name, p) in [
                ("loss", c.loss),
                ("duplicate", c.duplicate),
                ("reorder", c.reorder),
                ("corrupt", c.corrupt),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ScenarioError::Invalid(format!(
                        "pdu_chaos {name} probability {p} out of [0, 1]"
                    )));
                }
            }
            if c.from_ms >= c.until_ms {
                return Err(ScenarioError::Invalid(format!(
                    "pdu_chaos window [{}, {}) is empty",
                    c.from_ms, c.until_ms
                )));
            }
            plan.pdu_chaos(mpls_net::PduChaos {
                link: link_of(c.a, c.b)?,
                loss: c.loss,
                duplicate: c.duplicate,
                reorder: c.reorder,
                corrupt: c.corrupt,
                from_ns: c.from_ms * 1_000_000,
                until_ns: c.until_ms * 1_000_000,
            });
        }
        Ok(Some(plan))
    }

    /// The router kind.
    pub fn router_kind(&self) -> RouterKind {
        match self.router {
            RouterDecl::Embedded { clock_mhz } => RouterKind::Embedded {
                clock: ClockSpec {
                    freq_hz: clock_mhz * 1e6,
                    device: "scenario clock",
                },
            },
            RouterDecl::SoftwareHash => RouterKind::SoftwareHash {
                timing: SwTimingModel::default(),
            },
            RouterDecl::SoftwareLinear => RouterKind::SoftwareLinear {
                timing: SwTimingModel::default(),
            },
            RouterDecl::SoftwareFast => RouterKind::SoftwareFast {
                timing: SwTimingModel::default(),
                cache: true,
            },
        }
    }

    /// The queue discipline.
    pub fn queue_discipline(&self) -> QueueDiscipline {
        match self.queue {
            QueueDecl::Fifo { capacity } => QueueDiscipline::Fifo { capacity },
            QueueDecl::CosPriority { per_class } => QueueDiscipline::CosPriority { per_class },
            QueueDecl::Red {
                capacity,
                min_th,
                max_th,
                max_p_percent,
            } => QueueDiscipline::Red {
                capacity,
                min_th,
                max_th,
                max_p_percent,
            },
        }
    }

    /// Converts the flow declarations; subscriber-population flows
    /// follow the explicit ones, then generated flows from a
    /// `topology` section. The order fixes flow ids, and with them
    /// RNG streams and canonical event keys.
    pub fn flow_specs(&self) -> Result<Vec<FlowSpec>, ScenarioError> {
        let mut flows = self.explicit_flow_specs()?;
        for s in &self.subscribers {
            let classes = if s.classes.is_empty() {
                SlaClass::residential_mix()
            } else {
                s.classes
                    .iter()
                    .map(|c| SlaClass {
                        name: c.name.clone(),
                        precedence: c.precedence & 0x7,
                        weight_pct: c.weight_pct,
                        sla_fct_ns: c.sla_fct_ms * 1_000_000,
                        payload_bytes: c.payload_bytes,
                    })
                    .collect()
            };
            let model = SubscriberModel {
                name: s.name.clone(),
                subscribers: s.subscribers,
                mean_think_ns: s.mean_think_ms * 1_000_000,
                base: s.base.to_spec(),
                classes,
            };
            flows.extend(model.flows(
                s.ingress,
                parse_ip(&s.src)?,
                parse_ip(&s.dst)?,
                s.start_ms * 1_000_000,
                s.stop_ms * 1_000_000,
            ));
        }
        if let Some(t) = &self.topology {
            flows.extend(t.to_spec(self.seed)?.flow_specs());
        }
        Ok(flows)
    }

    fn explicit_flow_specs(&self) -> Result<Vec<FlowSpec>, ScenarioError> {
        self.flows
            .iter()
            .map(|f| {
                Ok(FlowSpec {
                    name: f.name.clone(),
                    ingress: f.ingress,
                    src_addr: parse_ip(&f.src)?,
                    dst_addr: parse_ip(&f.dst)?,
                    payload_bytes: f.payload_bytes,
                    precedence: f.precedence & 0x7,
                    pattern: match f.pattern {
                        PatternDecl::Cbr { interval_us } => TrafficPattern::Cbr {
                            interval_ns: interval_us * 1_000,
                        },
                        PatternDecl::Poisson { mean_interval_us } => TrafficPattern::Poisson {
                            mean_interval_ns: mean_interval_us * 1_000,
                        },
                        PatternDecl::OnOff {
                            on_us,
                            off_us,
                            interval_us,
                        } => TrafficPattern::OnOff {
                            on_ns: on_us * 1_000,
                            off_ns: off_us * 1_000,
                            interval_ns: interval_us * 1_000,
                        },
                        PatternDecl::ClosedLoop {
                            mean_arrival_us,
                            size_min_pkts,
                            size_max_pkts,
                            size_alpha_milli,
                            max_cwnd,
                            rto_us,
                            ecn_threshold,
                            pacing_us,
                            sla_fct_ms,
                            diurnal_period_ms,
                            diurnal_trough_pct,
                            flash_start_ms,
                            flash_duration_ms,
                            flash_multiplier_pct,
                        } => TrafficPattern::ClosedLoop(
                            ClosedLoopDecl {
                                mean_arrival_us,
                                size_min_pkts,
                                size_max_pkts,
                                size_alpha_milli,
                                max_cwnd,
                                rto_us,
                                ecn_threshold,
                                pacing_us,
                                sla_fct_ms,
                                diurnal_period_ms,
                                diurnal_trough_pct,
                                flash_start_ms,
                                flash_duration_ms,
                                flash_multiplier_pct,
                            }
                            .to_spec(),
                        ),
                    },
                    start_ns: f.start_ms * 1_000_000,
                    stop_ns: f.stop_ms * 1_000_000,
                    police: f.police.as_ref().map(|p| PolicerSpec {
                        rate_bps: p.rate_mbps * 1_000_000,
                        burst_bytes: p.burst_bytes,
                    }),
                })
            })
            .collect()
    }

    /// The telemetry configuration for this run: `Some` when the
    /// scenario's `telemetry` section enables it or `force` is set
    /// (`--metrics-out`), `None` for a zero-overhead run.
    pub fn telemetry_config(&self, force: bool) -> Option<TelemetryConfig> {
        let defaults = TelemetryDecl::default();
        let decl = match &self.telemetry {
            // A disabled section still carries tuning; `force` overrides
            // only the switch.
            Some(t) if t.enabled || force => t,
            Some(_) => return None,
            None if force => &defaults,
            None => return None,
        };
        Some(TelemetryConfig {
            sample_interval_ns: decl.sample_interval_us * 1_000,
            series_capacity: decl.series_capacity,
            event_capacity: decl.event_capacity,
        })
    }

    /// Resolves the control mode: the `control_override` (the
    /// `--control` flag) beats the scenario's `control` field, which
    /// defaults to `"centralized"`.
    pub fn control_mode(
        &self,
        control_override: Option<&str>,
    ) -> Result<ControlChoice, ScenarioError> {
        let mode = control_override
            .or(self.control.as_deref())
            .unwrap_or("centralized");
        match mode.to_ascii_lowercase().as_str() {
            "centralized" => Ok(ControlChoice::Centralized),
            "ldp" => Ok(ControlChoice::Ldp),
            "sr" => Ok(ControlChoice::Sr),
            other => Err(ScenarioError::Invalid(format!(
                "unknown control mode {other:?} (use \"centralized\", \"ldp\" or \"sr\")"
            ))),
        }
    }

    /// Whether the resolved control mode is `"ldp"` (see
    /// [`Self::control_mode`]).
    pub fn uses_ldp(&self, control_override: Option<&str>) -> Result<bool, ScenarioError> {
        Ok(self.control_mode(control_override)? == ControlChoice::Ldp)
    }

    /// The segment-routing configuration (scenario `sr` section or
    /// defaults).
    pub fn sr_config(&self) -> SrConfig {
        let decl = self.sr.clone().unwrap_or_default();
        SrConfig {
            srgb_base: decl.srgb_base,
            rld: decl.rld,
            max_push_depth: decl.max_push_depth,
            entropy: decl.entropy,
            mna: decl.mna,
        }
    }

    /// The LDP timer configuration (scenario `ldp` section or defaults).
    pub fn ldp_config(&self) -> LdpConfig {
        let decl = self.ldp.clone().unwrap_or_default();
        LdpConfig {
            hello_interval_ns: decl.hello_interval_us * 1_000,
            hold_ns: decl.hold_us * 1_000,
            max_backoff_exp: decl.max_backoff_exp,
            jitter_seed: decl.jitter_seed,
            stale_ttl_ns: decl.stale_ttl_us * 1_000,
        }
    }

    /// Builds and runs the whole scenario. Telemetry is collected when
    /// the scenario's `telemetry` section asks for it.
    pub fn run(&self) -> Result<mpls_net::SimReport, ScenarioError> {
        self.run_with(false, None, None, None)
    }

    /// Like [`Self::run`], but collects telemetry even without a
    /// `telemetry` section (the `--metrics-out` path).
    pub fn run_with_telemetry(&self) -> Result<mpls_net::SimReport, ScenarioError> {
        self.run_with(true, None, None, None)
    }

    /// Like [`Self::run`], with the command-line overrides applied:
    /// `force_telemetry` for `--metrics-out`, `shards` for `--shards`
    /// (which beats the scenario's own `shards` field), `control` for
    /// `--control` (which beats the scenario's `control` field), and
    /// `engine` for `--engine` (which beats the scenario's `engine`
    /// field).
    pub fn run_with_overrides(
        &self,
        force_telemetry: bool,
        shards: Option<usize>,
        control: Option<&str>,
        engine: Option<&str>,
    ) -> Result<mpls_net::SimReport, ScenarioError> {
        self.run_with(force_telemetry, shards, control, engine)
    }

    fn run_with(
        &self,
        force_telemetry: bool,
        shards_override: Option<usize>,
        control_override: Option<&str>,
        engine_override: Option<&str>,
    ) -> Result<mpls_net::SimReport, ScenarioError> {
        let cp = self.build_control_plane()?;
        let mut sim =
            Simulation::build(&cp, self.router_kind(), self.queue_discipline(), self.seed);
        if let Some(shards) = shards_override.or(self.shards) {
            if shards == 0 {
                return Err(ScenarioError::Invalid("shards must be >= 1".into()));
            }
            sim.set_shards(shards);
        }
        if let Some(name) = engine_override.or(self.engine.as_deref()) {
            let kind = mpls_net::EngineKind::parse(name).ok_or_else(|| {
                ScenarioError::Invalid(format!(
                    "unknown engine {name:?} (expected \"barrier\" or \"merge\")"
                ))
            })?;
            sim.set_engine(kind);
        }
        for n in &self.nodes {
            if let Some(hint) = n.shard {
                sim.shard_hint(n.id, hint);
            }
        }
        match self.control_mode(control_override)? {
            ControlChoice::Centralized => {}
            ControlChoice::Ldp => sim.enable_ldp(self.ldp_config()),
            ControlChoice::Sr => sim.enable_sr(self.sr_config()),
        }
        if let Some(plan) = self.fault_plan(&cp)? {
            sim.set_fault_plan(plan);
        }
        for f in self.flow_specs()? {
            sim.add_flow(f);
        }
        // Generous drain margin past the horizon.
        let horizon = self.horizon_ms * 1_000_000 + 500_000_000;
        match self.telemetry_config(force_telemetry) {
            Some(config) => Ok(sim.with_telemetry(config).run(horizon)),
            None => Ok(sim.run(horizon)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = include_str!("../scenarios/example.json");

    #[test]
    fn example_scenario_parses_and_runs() {
        let sc = Scenario::from_json(EXAMPLE).expect("example parses");
        let report = sc.run().expect("example runs");
        let voip = report.flow("voip").expect("voip flow present");
        assert!(voip.sent > 0);
        assert_eq!(
            voip.sent,
            voip.delivered + voip.router_dropped + voip.queue_dropped + voip.policer_dropped
        );
    }

    #[test]
    fn bad_role_is_rejected() {
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        sc.nodes[0].role = "switch".into();
        assert!(matches!(
            sc.build_control_plane(),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn bad_prefix_is_rejected() {
        assert!(parse_prefix("10.0.0.0").is_err());
        assert!(parse_prefix("10.0.0.0/33").is_err());
        assert!(parse_prefix("10.0.0/8").is_err());
        assert!(parse_prefix("10.0.0.0/8").is_ok());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let bad = r#"{"nodes": [], "links": [], "warp_drive": true}"#;
        assert!(matches!(
            Scenario::from_json(bad),
            Err(ScenarioError::Parse(_))
        ));
    }

    /// Figure-1 style two-path topology with a mid-run outage on the fast
    /// path. Restoration moves the LSP to the slow path; losses are
    /// confined to the outage and land in the link-drop counters.
    const FAULTY: &str = r#"{
        "nodes": [
            {"id": 0, "role": "ler"}, {"id": 1, "role": "ler"},
            {"id": 2, "role": "lsr"}, {"id": 3, "role": "lsr"},
            {"id": 4, "role": "lsr"}, {"id": 5, "role": "lsr"}
        ],
        "links": [
            {"a": 0, "b": 2, "bandwidth_mbps": 1000, "delay_us": 500},
            {"a": 2, "b": 3, "bandwidth_mbps": 1000, "delay_us": 500},
            {"a": 3, "b": 1, "bandwidth_mbps": 1000, "delay_us": 500},
            {"a": 0, "b": 4, "bandwidth_mbps": 100, "delay_us": 2000, "cost": 3},
            {"a": 4, "b": 5, "bandwidth_mbps": 100, "delay_us": 2000, "cost": 3},
            {"a": 5, "b": 1, "bandwidth_mbps": 100, "delay_us": 2000, "cost": 3}
        ],
        "lsps": [{"ingress": 0, "egress": 1, "fec": "192.168.1.0/24"}],
        "flows": [{
            "name": "cbr", "ingress": 0,
            "src": "10.0.0.10", "dst": "192.168.1.10",
            "payload_bytes": 500,
            "pattern": {"kind": "cbr", "interval_us": 100},
            "stop_ms": 20
        }],
        "faults": {
            "events": [
                {"kind": "link_down", "at_ms": 5, "a": 2, "b": 3},
                {"kind": "link_up", "at_ms": 12, "a": 2, "b": 3}
            ],
            "detection_delay_us": 500,
            "resignal_delay_us": 500,
            "recovery": "restoration"
        },
        "seed": 11,
        "horizon_ms": 40
    }"#;

    #[test]
    fn fault_scenario_restores_and_accounts_losses() {
        let sc = Scenario::from_json(FAULTY).expect("fault scenario parses");
        let report = sc.run().expect("fault scenario runs");
        let s = report.flow("cbr").expect("flow present");
        assert!(s.sent > 0);
        assert!(s.link_dropped > 0, "outage should drop packets");
        assert_eq!(
            s.sent,
            s.delivered
                + s.router_dropped
                + s.queue_dropped
                + s.policer_dropped
                + s.link_dropped
                + s.loss_dropped
        );
        assert_eq!(report.faults.len(), 1, "one fault record");
        let rec = &report.faults[0];
        assert_eq!(rec.down_ns, 5_000_000);
        assert_eq!(rec.detected_ns, Some(5_500_000));
        assert!(rec.restored_ns.is_some(), "LSP re-signaled onto south path");
        assert_eq!(rec.packets_lost, s.link_dropped);
    }

    #[test]
    fn bad_fault_sections_are_rejected() {
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        let cp = sc.build_control_plane().unwrap();
        sc.faults.as_mut().unwrap().recovery = "prayer".into();
        assert!(matches!(sc.fault_plan(&cp), Err(ScenarioError::Invalid(_))));
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        sc.faults.as_mut().unwrap().events[0] = FaultEventDecl::LinkDown {
            at_ms: 1,
            a: 0,
            b: 3,
        };
        assert!(matches!(sc.fault_plan(&cp), Err(ScenarioError::Invalid(_))));
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        sc.faults.as_mut().unwrap().loss.push(LinkLossDecl {
            a: 2,
            b: 3,
            probability: 1.5,
        });
        assert!(matches!(sc.fault_plan(&cp), Err(ScenarioError::Invalid(_))));
    }

    #[test]
    fn telemetry_section_enables_collection() {
        let mut sc = Scenario::from_json(EXAMPLE).unwrap();
        assert!(sc.telemetry_config(false).is_none(), "off by default");
        // --metrics-out forces it on with defaults.
        let forced = sc.telemetry_config(true).unwrap();
        assert_eq!(forced.sample_interval_ns, 100_000);

        sc.telemetry = Some(TelemetryDecl {
            sample_interval_us: 50,
            ..TelemetryDecl::default()
        });
        let cfg = sc.telemetry_config(false).unwrap();
        assert_eq!(cfg.sample_interval_ns, 50_000);
        let report = sc.run().unwrap();
        let tel = report.telemetry.expect("section turns telemetry on");
        assert!(tel.counter("flow.voip.sent").unwrap() > 0.0);
        assert!(tel
            .series
            .iter()
            .any(|s| s.name.ends_with(".queue_depth") && !s.points.is_empty()));

        // A disabled section keeps the run clean unless forced.
        sc.telemetry.as_mut().unwrap().enabled = false;
        assert!(sc.telemetry_config(false).is_none());
        let cfg = sc.telemetry_config(true).unwrap();
        assert_eq!(cfg.sample_interval_ns, 50_000, "tuning survives forcing");
        let report = sc.run().unwrap();
        assert!(report.telemetry.is_none());
        let report = sc.run_with_telemetry().unwrap();
        assert!(report.telemetry.is_some());
    }

    #[test]
    fn shard_overrides_do_not_change_the_report() {
        let sc = Scenario::from_json(FAULTY).unwrap();
        let baseline =
            serde_json::to_string(&sc.run_with_overrides(false, Some(1), None, None).unwrap())
                .unwrap();
        for shards in [2, 4] {
            let sharded = serde_json::to_string(
                &sc.run_with_overrides(false, Some(shards), None, None)
                    .unwrap(),
            )
            .unwrap();
            assert_eq!(baseline, sharded, "--shards {shards} diverged");
        }
        // The scenario's own field works too, and 0 is rejected.
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        sc.shards = Some(2);
        assert_eq!(
            baseline,
            serde_json::to_string(&sc.run().unwrap()).unwrap(),
            "scenario shards field diverged"
        );
        sc.shards = Some(0);
        assert!(matches!(sc.run(), Err(ScenarioError::Invalid(_))));
        // Hints relocate nodes without changing results either.
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        sc.shards = Some(2);
        for (i, n) in sc.nodes.iter_mut().enumerate() {
            n.shard = Some(i % 2);
        }
        assert_eq!(
            baseline,
            serde_json::to_string(&sc.run().unwrap()).unwrap(),
            "shard hints diverged"
        );
    }

    #[test]
    fn control_mode_resolves_and_runs_ldp() {
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        assert!(!sc.uses_ldp(None).unwrap(), "centralized by default");
        assert!(sc.uses_ldp(Some("ldp")).unwrap(), "--control wins");
        assert!(sc.uses_ldp(Some("warlock")).is_err());
        sc.control = Some("ldp".into());
        assert!(sc.uses_ldp(None).unwrap(), "scenario field works");
        assert!(!sc.uses_ldp(Some("centralized")).unwrap(), "override wins");

        // Give the protocol room to converge before traffic starts, then
        // let it reconverge around FAULTY's north-path outage.
        sc.flows[0].start_ms = 10;
        sc.flows[0].stop_ms = 40;
        sc.horizon_ms = 60;
        let report = sc.run().expect("ldp scenario runs");
        assert_eq!(report.control.mode, "ldp");
        let conv = report.control.convergence_ns.expect("converged");
        assert!(conv < 10_000_000, "{conv}");
        assert!(report.control.sessions_established >= 6);
        assert_eq!(report.faults.len(), 1);
        assert!(
            report.faults[0].restored_ns.is_some(),
            "withdraw wave rerouted traffic"
        );
        let s = report.flow("cbr").unwrap();
        assert!(s.delivered > 0);

        // The same run under the centralized override must converge
        // before t=0 (no control summary beyond the mode).
        let central = sc
            .run_with_overrides(false, None, Some("centralized"), None)
            .unwrap();
        assert_eq!(central.control.mode, "centralized");
        assert!(central.control.convergence_ns.is_none());
        assert!(central.fibs.is_none());
    }

    const SR_FABRIC: &str = include_str!("../scenarios/sr_fabric.json");

    #[test]
    fn sr_control_mode_resolves() {
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        assert_eq!(
            sc.control_mode(None).unwrap(),
            ControlChoice::Centralized,
            "centralized by default"
        );
        assert_eq!(sc.control_mode(Some("sr")).unwrap(), ControlChoice::Sr);
        assert!(!sc.uses_ldp(Some("sr")).unwrap(), "sr is not ldp");
        sc.control = Some("sr".into());
        assert_eq!(sc.control_mode(None).unwrap(), ControlChoice::Sr);
        assert_eq!(
            sc.control_mode(Some("ldp")).unwrap(),
            ControlChoice::Ldp,
            "override wins"
        );
        assert!(sc.control_mode(Some("rsvp")).is_err());
    }

    #[test]
    fn sr_section_parses_and_defaults() {
        let sc = Scenario::from_json(SR_FABRIC).unwrap();
        let cfg = sc.sr_config();
        assert_eq!(cfg.max_push_depth, 3, "section field applies");
        assert_eq!(cfg.srgb_base, 16_000, "defaults fill the rest");
        assert!(cfg.entropy);
        assert!(!cfg.mna);
        // Unknown keys in the section are schema violations.
        let bad = SR_FABRIC.replace("\"max_push_depth\": 3", "\"stack_budget\": 3");
        assert!(matches!(
            Scenario::from_json(&bad),
            Err(ScenarioError::Parse(_))
        ));
    }

    /// The bundled SR scenario delivers everything over the diamond,
    /// spreads flows across both equal-cost paths via the entropy
    /// label, and reports byte-identically at any shard count and
    /// under both engines (the CI smoke job re-checks this from the
    /// built binary).
    #[test]
    fn sr_scenario_runs_and_is_shard_invariant() {
        let sc = Scenario::from_json(SR_FABRIC).expect("sr scenario parses");
        let report = sc.run().expect("sr scenario runs");
        assert_eq!(report.control.mode, "sr");
        assert!(!report.flows.is_empty());
        for (spec, s) in &report.flows {
            assert_eq!(s.delivered, s.sent, "flow {} lost traffic", spec.name);
            assert!(s.sent > 0);
        }
        let ecmp: u64 = report.routers.values().map(|r| r.ecmp_decisions).sum();
        assert!(ecmp > 0, "loose-hop diamond must exercise ECMP");
        let baseline = serde_json::to_string(&report).unwrap();
        for shards in [2, 4] {
            for engine in ["barrier", "merge"] {
                let run = sc
                    .run_with_overrides(false, Some(shards), None, Some(engine))
                    .unwrap();
                assert_eq!(
                    baseline,
                    serde_json::to_string(&run).unwrap(),
                    "{shards} shards / {engine} diverged"
                );
            }
        }
    }

    const CLOSED_LOOP: &str = include_str!("../scenarios/closed_loop.json");

    #[test]
    fn closed_loop_pattern_defaults_fill_in() {
        let d: ClosedLoopDecl = serde_json::from_str(r#"{"kind": "closed_loop"}"#).unwrap();
        let spec = d.to_spec();
        assert_eq!(spec, ClosedLoopSpec::default());
        // Partial overrides keep the rest at library defaults.
        let d: ClosedLoopDecl =
            serde_json::from_str(r#"{"kind": "closed_loop", "max_cwnd": 8, "sla_fct_ms": 5}"#)
                .unwrap();
        let spec = d.to_spec();
        assert_eq!(spec.max_cwnd, 8);
        assert_eq!(spec.sla_fct_ns, 5_000_000);
        assert_eq!(spec.rto_ns, ClosedLoopSpec::default().rto_ns);
    }

    #[test]
    fn subscribers_expand_to_per_class_flows() {
        let sc = Scenario::from_json(CLOSED_LOOP).expect("closed-loop scenario parses");
        let flows = sc.flow_specs().expect("flows convert");
        // 2 explicit + 3 residential-mix classes.
        assert_eq!(flows.len(), 5);
        let names: Vec<&str> = flows.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "web",
                "background",
                "metro/gold",
                "metro/silver",
                "metro/bronze"
            ]
        );
        let TrafficPattern::ClosedLoop(gold) = flows[2].pattern else {
            panic!("subscriber flows are closed-loop");
        };
        assert_eq!(flows[2].precedence, 5);
        assert_eq!(gold.sla_fct_ns, 20_000_000);
        assert_eq!(gold.flash_multiplier_pct, 300);
        // 2000 subs, 10% gold share, 400ms think => 2ms aggregate gap.
        assert_eq!(gold.mean_arrival_ns, 2_000_000);
    }

    #[test]
    fn closed_loop_scenario_runs_and_is_shard_invariant() {
        let sc = Scenario::from_json(CLOSED_LOOP).expect("closed-loop scenario parses");
        let report = sc.run().expect("closed-loop scenario runs");
        let mut started = 0;
        let mut completed = 0;
        for (spec, s) in &report.flows {
            assert_eq!(
                s.sent,
                s.delivered
                    + s.router_dropped
                    + s.queue_dropped
                    + s.policer_dropped
                    + s.link_dropped
                    + s.loss_dropped,
                "flow {} leaks packets",
                spec.name
            );
            if matches!(spec.pattern, TrafficPattern::ClosedLoop(_)) {
                started += s.transfers_started;
                completed += s.transfers_completed;
                assert_eq!(s.fct_hist.count(), s.transfers_completed);
            }
        }
        assert!(started > 0, "closed-loop sources must start transfers");
        assert!(completed > 0, "some transfers must finish");
        let web = report.flow("web").expect("web flow present");
        assert!(web.cwnd_peak > 1, "window must open past slow-start");
        assert!(
            web.cwnd_cuts > 0 || web.retransmits > 0,
            "the outage window must provoke a congestion response"
        );
        let baseline = serde_json::to_string(&report).unwrap();
        for shards in [2, 4] {
            for engine in ["barrier", "merge"] {
                let run = sc
                    .run_with_overrides(false, Some(shards), None, Some(engine))
                    .unwrap();
                assert_eq!(
                    baseline,
                    serde_json::to_string(&run).unwrap(),
                    "{shards} shards / {engine} diverged"
                );
            }
        }
    }

    #[test]
    fn ldp_timer_section_parses() {
        let mut sc = Scenario::from_json(FAULTY).unwrap();
        let cfg = sc.ldp_config();
        assert_eq!(cfg.hello_interval_ns, 1_000_000);
        assert_eq!(cfg.hold_ns, 3_500_000);
        sc.ldp = Some(LdpDecl {
            hello_interval_us: 200,
            hold_us: 700,
            stale_ttl_us: 1_500,
            ..LdpDecl::default()
        });
        let cfg = sc.ldp_config();
        assert_eq!(cfg.hello_interval_ns, 200_000);
        assert_eq!(cfg.hold_ns, 700_000);
        assert_eq!(cfg.stale_ttl_ns, 1_500_000);
        assert_eq!(cfg.max_backoff_exp, LdpConfig::default().max_backoff_exp);
    }

    #[test]
    fn telemetry_rejects_unknown_fields() {
        let mut doc: String = EXAMPLE.trim_end().into();
        doc.truncate(doc.rfind('}').unwrap());
        doc.push_str(", \"telemetry\": {\"cadence\": 5}}");
        assert!(matches!(
            Scenario::from_json(&doc),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn software_fast_router_parses_and_builds() {
        let minimal = r#"{
            "nodes": [{"id": 0, "role": "ler"}, {"id": 1, "role": "ler"}],
            "links": [{"a": 0, "b": 1, "bandwidth_mbps": 100, "delay_us": 100}],
            "router": {"kind": "software_fast"}
        }"#;
        let sc = Scenario::from_json(minimal).unwrap();
        assert!(matches!(sc.router, RouterDecl::SoftwareFast));
        assert!(matches!(
            sc.router_kind(),
            mpls_net::RouterKind::SoftwareFast { .. }
        ));
        sc.run().unwrap();
    }

    #[test]
    fn defaults_apply() {
        let minimal = r#"{
            "nodes": [{"id": 0, "role": "ler"}, {"id": 1, "role": "ler"}],
            "links": [{"a": 0, "b": 1, "bandwidth_mbps": 100, "delay_us": 100}]
        }"#;
        let sc = Scenario::from_json(minimal).unwrap();
        assert_eq!(sc.horizon_ms, 1000);
        assert!(matches!(sc.router, RouterDecl::Embedded { .. }));
        assert!(matches!(sc.queue, QueueDecl::Fifo { capacity: 64 }));
        let report = sc.run().unwrap();
        assert!(report.flows.is_empty());
    }

    #[test]
    fn topology_section_synthesizes_and_runs() {
        let doc = r#"{
            "topology": {
                "family": "fat_tree",
                "lsps_total": 128,
                "flows": 4,
                "flow_stop_ms": 2
            },
            "seed": 11,
            "horizon_ms": 20
        }"#;
        let sc = Scenario::from_json(doc).unwrap();
        let cp = sc.build_control_plane().unwrap();
        // k=4 default: 4 core + 8 agg + 8 edge + 16 LERs.
        assert_eq!(cp.topology().nodes().len(), 36);
        assert_eq!(cp.lsp_ids().len(), 128);
        let flows = sc.flow_specs().unwrap();
        assert_eq!(flows.len(), 4);
        let report = sc.run().unwrap();
        for f in &report.flows {
            assert_eq!(f.1.delivered, f.1.sent, "flow {} lost traffic", f.0.name);
            assert!(f.1.sent > 0);
        }
        // Byte-identical at any shard count, as everywhere else.
        let base = serde_json::to_string(&report).unwrap();
        let sharded = sc.run_with_overrides(false, Some(4), None, None).unwrap();
        assert_eq!(base, serde_json::to_string(&sharded).unwrap());
    }

    #[test]
    fn topology_section_rejects_explicit_graphs() {
        let doc = r#"{
            "nodes": [{"id": 0, "role": "ler"}],
            "links": [],
            "topology": {"family": "ring_of_rings", "lsps_total": 1}
        }"#;
        let sc = Scenario::from_json(doc).unwrap();
        assert!(matches!(
            sc.build_control_plane(),
            Err(ScenarioError::Invalid(_))
        ));
        let empty = Scenario::from_json("{}").unwrap();
        assert!(matches!(
            empty.build_control_plane(),
            Err(ScenarioError::Invalid(_))
        ));
    }
}
