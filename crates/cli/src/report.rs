//! Plain-text report rendering for scenario runs.

use mpls_net::SimReport;

/// Formats the per-flow report plus link utilization as aligned text.
pub fn format_report(report: &SimReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "engine: {}, {} shard{} ({} rounds, {} events), control: {}",
        report.engine.kind.name(),
        report.engine.shards,
        if report.engine.shards == 1 { "" } else { "s" },
        report.engine.epochs,
        report.engine.total_events(),
        report.control.mode,
    ));
    if let Some(conv) = report.control.convergence_ns {
        out.push_str(&format!(" (converged in {:.2} ms)", conv as f64 / 1e6));
    }
    out.push('\n');
    // Fast-path diagnostics live in non-serialized counters (reports
    // must stay byte-identical across lookup strategies), so the only
    // place they surface is this human-readable rendering.
    let (lookups, hits, misses) = report
        .routers
        .values()
        .fold((0u64, 0u64, 0u64), |(l, h, m), s| {
            (l + s.fib_lookups, h + s.cache_hits, m + s.cache_misses)
        });
    if hits + misses > 0 {
        let hit_rate = hits as f64 / (hits + misses) as f64 * 100.0;
        out.push_str(&format!(
            "  fast path: {lookups} FIB lookups, {hits} cache hits / {misses} misses \
             ({hit_rate:.1}% hit rate)\n"
        ));
    }
    if report.control.mode == "ldp" {
        out.push_str(&format!(
            "  ldp: {} sessions up, {} expired, {} PDUs sent ({} delivered, {} lost), \
             {} loop rejections\n",
            report.control.sessions_established,
            report.control.session_downs,
            report.control.pdus_sent,
            report.control.pdus_delivered,
            report.control.pdus_lost,
            report.control.loop_rejections,
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>8} {:>12} {:>12} {:>12} {:>10}\n",
        "flow", "sent", "delivered", "loss%", "delay p50", "delay p99", "jitter µs", "Mb/s"
    ));
    for (spec, s) in &report.flows {
        let (p50, _, p99) = s.delay_hist.percentiles();
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>8.2} {:>9.1} µs {:>9.1} µs {:>12.2} {:>10.2}\n",
            spec.name,
            s.sent,
            s.delivered,
            s.loss_rate() * 100.0,
            p50 / 1000.0,
            p99 / 1000.0,
            s.mean_jitter_ns() / 1000.0,
            s.throughput_bps() / 1e6,
        ));
    }
    // Closed-loop flows carry a second life beyond the packet counters:
    // transfers, completion times, and the congestion-window reaction.
    if report.flows.iter().any(|(_, s)| s.transfers_started > 0) {
        out.push('\n');
        out.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>6} {:>6} {:>6} {:>10} {:>9}\n",
            "closed-loop",
            "xfers",
            "fct p50",
            "fct p99",
            "retx",
            "ecn",
            "cuts",
            "peak cwnd",
            "sla viol"
        ));
        for (spec, s) in &report.flows {
            if s.transfers_started == 0 {
                continue;
            }
            let (p50, _, p99) = s.fct_hist.percentiles();
            out.push_str(&format!(
                "{:<12} {:>12} {:>9.2} ms {:>9.2} ms {:>6} {:>6} {:>6} {:>10} {:>9}\n",
                spec.name,
                format!("{}/{}", s.transfers_completed, s.transfers_started),
                p50 / 1e6,
                p99 / 1e6,
                s.retransmits,
                s.ecn_marks,
                s.cwnd_cuts,
                s.cwnd_peak,
                s.sla_violations,
            ));
        }
    }
    out.push('\n');
    out.push_str("links (utilization > 1%):\n");
    for l in &report.links {
        if l.utilization > 0.01 {
            out.push_str(&format!(
                "  {} -> {}: {:>5.1}% utilized, {} pkts, {} queue drops\n",
                l.from,
                l.to,
                l.utilization * 100.0,
                l.transmitted,
                l.drops
            ));
        }
    }
    if !report.faults.is_empty() {
        out.push('\n');
        out.push_str("faults:\n");
        for f in &report.faults {
            let restored = match f.time_to_restore_ns() {
                Some(ns) => format!("restored in {:.2} ms", ns as f64 / 1e6),
                None => "never restored".to_string(),
            };
            out.push_str(&format!(
                "  link {}: down at {:.2} ms, {}, {} pkts lost ({:?})\n",
                f.link,
                f.down_ns as f64 / 1e6,
                restored,
                f.packets_lost,
                f.mode,
            ));
        }
    }
    if let Some(tel) = &report.telemetry {
        out.push('\n');
        out.push_str(&format!(
            "telemetry: {} counters, {} histograms, {} series, {} events\n",
            tel.counters.len(),
            tel.histograms.len(),
            tel.series.len(),
            tel.events.len(),
        ));
        let deepest = tel
            .series
            .iter()
            .filter(|s| s.name.ends_with(".queue_depth"))
            .filter_map(|s| {
                s.points
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
                    .map(|peak| (s.name.clone(), peak))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((name, peak)) = deepest {
            out.push_str(&format!("  peak queue depth: {peak:.0} pkts on {name}\n"));
        }
        for h in &tel.histograms {
            if let Some(name) = h.name.strip_suffix(".delay_ns") {
                if let (Some(p50), Some(p99)) = (h.p50, h.p99) {
                    out.push_str(&format!(
                        "  {name}: delay p50 ≤ {:.1} µs, p99 ≤ {:.1} µs ({} samples)\n",
                        p50 as f64 / 1000.0,
                        p99 as f64 / 1000.0,
                        h.total,
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn report_contains_flow_rows_and_links() {
        let sc = Scenario::from_json(include_str!("../scenarios/example.json")).unwrap();
        let report = sc.run().unwrap();
        let text = format_report(&report);
        assert!(text.contains("voip"));
        assert!(text.contains("bulk"));
        assert!(text.contains("->"));
        assert!(text.contains("utilized"));
        assert!(!text.contains("faults:"), "no fault section without faults");
        assert!(text.contains("control: centralized"));
        // Shard count follows MPLS_SIM_SHARDS and the kind follows
        // MPLS_SIM_ENGINE, so only assert the shape.
        assert!(text.starts_with("engine: "));
        assert!(text.contains("rounds"));
        assert!(!text.contains("ldp:"), "no ldp block on centralized runs");
    }

    #[test]
    fn report_shows_closed_loop_counters() {
        let plain = format_report(
            &Scenario::from_json(include_str!("../scenarios/example.json"))
                .unwrap()
                .run()
                .unwrap(),
        );
        assert!(
            !plain.contains("closed-loop"),
            "no closed-loop block for open-loop scenarios"
        );
        let sc = Scenario::from_json(include_str!("../scenarios/closed_loop.json")).unwrap();
        let text = format_report(&sc.run().unwrap());
        assert!(text.contains("closed-loop"), "missing block:\n{text}");
        assert!(text.contains("fct p99"));
        assert!(text.contains("metro/gold"));
        assert!(
            !text
                .lines()
                .any(|l| l.starts_with("background") && l.contains("ms")),
            "open-loop flows stay out of the closed-loop table"
        );
    }

    #[test]
    fn report_shows_fast_path_diagnostics() {
        let mut sc = Scenario::from_json(include_str!("../scenarios/example.json")).unwrap();
        let plain = format_report(&sc.run().unwrap());
        assert!(
            !plain.contains("fast path:"),
            "no fast-path block for the embedded router"
        );
        sc.router = crate::scenario::RouterDecl::SoftwareFast;
        let text = format_report(&sc.run().unwrap());
        // The cache can be globally disabled by env; only assert the
        // block when it is live.
        if std::env::var("MPLS_SIM_FLOW_CACHE").map_or(true, |v| v != "0") {
            assert!(text.contains("fast path:"), "missing diagnostics:\n{text}");
            assert!(text.contains("hit rate"));
        }
    }

    #[test]
    fn report_summarizes_ldp_control() {
        let mut sc = Scenario::from_json(include_str!("../scenarios/example.json")).unwrap();
        sc.control = Some("ldp".into());
        for f in &mut sc.flows {
            f.start_ms = 10;
            f.stop_ms += 10;
        }
        sc.horizon_ms += 10;
        let text = format_report(&sc.run().unwrap());
        assert!(text.contains("control: ldp (converged in"));
        assert!(text.contains("sessions up"));
        assert!(text.contains("PDUs sent"));
    }

    #[test]
    fn report_summarizes_telemetry() {
        let mut sc = Scenario::from_json(include_str!("../scenarios/example.json")).unwrap();
        let plain = format_report(&sc.run().unwrap());
        assert!(!plain.contains("telemetry:"), "no block without telemetry");
        sc.telemetry = Some(Default::default());
        let text = format_report(&sc.run().unwrap());
        assert!(text.contains("telemetry:"));
        assert!(text.contains("peak queue depth"));
        assert!(text.contains("lsp.voip: delay p50"));
    }

    #[test]
    fn report_lists_fault_records() {
        let mut sc = Scenario::from_json(include_str!("../scenarios/example.json")).unwrap();
        sc.faults = Some(crate::scenario::FaultsDecl {
            events: vec![
                crate::scenario::FaultEventDecl::LinkDown {
                    at_ms: 5,
                    a: 2,
                    b: 3,
                },
                crate::scenario::FaultEventDecl::LinkUp {
                    at_ms: 10,
                    a: 2,
                    b: 3,
                },
            ],
            ..Default::default()
        });
        let report = sc.run().unwrap();
        let text = format_report(&report);
        assert!(text.contains("faults:"));
        assert!(text.contains("pkts lost"));
    }
}
