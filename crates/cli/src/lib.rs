#![warn(missing_docs)]
//! Library half of the `mpls-sim` command-line tool: the JSON scenario
//! schema ([`scenario::Scenario`]) and the report formatter, kept in a
//! lib so integration tests and other tools can reuse them.

pub mod report;
pub mod scenario;

pub use report::format_report;
pub use scenario::{ControlChoice, Scenario, ScenarioError};
