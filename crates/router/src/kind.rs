//! Router-model selection behind one constructor.
//!
//! Callers pick a [`RouterKind`] and get back a boxed [`MplsForwarder`]
//! without matching on router internals — the simulator, benches and CLI
//! all build nodes through [`RouterKind::build`], so adding a router
//! model is a change to this crate alone.

use crate::forwarding::MplsForwarder;
use crate::{EmbeddedRouter, SoftwareRouter, SwTimingModel};
use mpls_control::{NodeConfig, NodeId, RouterRole};
use mpls_core::ClockSpec;

/// Which router implementation populates a node.
#[derive(Debug, Clone, Copy)]
pub enum RouterKind {
    /// The embedded (hardware-model) router at a given clock.
    Embedded {
        /// FPGA clock.
        clock: ClockSpec,
    },
    /// Software router with hash-map lookups.
    SoftwareHash {
        /// Latency model.
        timing: SwTimingModel,
    },
    /// Software router with linear-scan lookups.
    SoftwareLinear {
        /// Latency model.
        timing: SwTimingModel,
    },
    /// Software fast path: open-addressed hash FIB reporting canonical
    /// (linear-equivalent) probe counts, plus a per-ingress flow cache.
    /// Produces a byte-identical report to [`RouterKind::SoftwareLinear`]
    /// while looking up in O(1) host time. The cache can be switched off
    /// with `MPLS_SIM_FLOW_CACHE=0` (the report does not change either
    /// way); `MPLS_SIM_DIFF_LOOKUP=1` cross-checks every lookup against
    /// a shadow linear table.
    SoftwareFast {
        /// Latency model.
        timing: SwTimingModel,
        /// Per-ingress flow cache on top of the hash FIB. The report is
        /// byte-identical either way; `MPLS_SIM_FLOW_CACHE=0` force-
        /// disables it globally.
        cache: bool,
    },
}

/// False only when `MPLS_SIM_FLOW_CACHE=0`: the flow cache is on by
/// default for [`RouterKind::SoftwareFast`].
fn flow_cache_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("MPLS_SIM_FLOW_CACHE").map_or(true, |v| v != "0"))
}

impl RouterKind {
    /// Instantiates a router of this kind for `node`, programmed with
    /// `config`.
    pub fn build(
        &self,
        node: NodeId,
        role: RouterRole,
        config: &NodeConfig,
    ) -> Box<dyn MplsForwarder + Send> {
        match *self {
            RouterKind::Embedded { clock } => {
                Box::new(EmbeddedRouter::new(node, role, config, clock))
            }
            RouterKind::SoftwareHash { timing } => {
                Box::new(SoftwareRouter::<mpls_dataplane::HashTable>::new(
                    node, role, config, timing,
                ))
            }
            RouterKind::SoftwareLinear { timing } => {
                Box::new(SoftwareRouter::<mpls_dataplane::LinearTable>::new(
                    node, role, config, timing,
                ))
            }
            RouterKind::SoftwareFast { timing, cache } => {
                Box::new(SoftwareRouter::<mpls_dataplane::HashFib>::with_options(
                    node,
                    role,
                    config,
                    timing,
                    cache && flow_cache_enabled(),
                ))
            }
        }
    }
}
