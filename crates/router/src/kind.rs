//! Router-model selection behind one constructor.
//!
//! Callers pick a [`RouterKind`] and get back a boxed [`MplsForwarder`]
//! without matching on router internals — the simulator, benches and CLI
//! all build nodes through [`RouterKind::build`], so adding a router
//! model is a change to this crate alone.

use crate::forwarding::MplsForwarder;
use crate::{EmbeddedRouter, SoftwareRouter, SwTimingModel};
use mpls_control::{NodeConfig, NodeId, RouterRole};
use mpls_core::ClockSpec;

/// Which router implementation populates a node.
#[derive(Debug, Clone, Copy)]
pub enum RouterKind {
    /// The embedded (hardware-model) router at a given clock.
    Embedded {
        /// FPGA clock.
        clock: ClockSpec,
    },
    /// Software router with hash-map lookups.
    SoftwareHash {
        /// Latency model.
        timing: SwTimingModel,
    },
    /// Software router with linear-scan lookups.
    SoftwareLinear {
        /// Latency model.
        timing: SwTimingModel,
    },
}

impl RouterKind {
    /// Instantiates a router of this kind for `node`, programmed with
    /// `config`.
    pub fn build(
        &self,
        node: NodeId,
        role: RouterRole,
        config: &NodeConfig,
    ) -> Box<dyn MplsForwarder + Send> {
        match *self {
            RouterKind::Embedded { clock } => {
                Box::new(EmbeddedRouter::new(node, role, config, clock))
            }
            RouterKind::SoftwareHash { timing } => {
                Box::new(SoftwareRouter::<mpls_dataplane::HashTable>::new(
                    node, role, config, timing,
                ))
            }
            RouterKind::SoftwareLinear { timing } => {
                Box::new(SoftwareRouter::<mpls_dataplane::LinearTable>::new(
                    node, role, config, timing,
                ))
            }
        }
    }
}
