//! The embedded MPLS router: the Fig. 6 pipeline around the cycle-accurate
//! hardware label stack modifier.
//!
//! Per-packet cost in clock cycles, all charged at the configured clock:
//!
//! * load: one `user push` (3 cycles) per arriving label-stack entry —
//!   "the ingress packet processing \[module\] is used to deliver the label
//!   stack and a packet identifier to the label stack modifier";
//! * update: the measured `update stack` cost (search + operation);
//! * unload: one `user pop` (3 cycles) per resulting entry, which also
//!   leaves the modifier's stack empty for the next packet;
//! * slow path: a `write label pair` (3 cycles) the first time a FEC-
//!   classified flow is seen, installing its exact level-1 pair (the
//!   hardware cannot longest-prefix match, so the ingress runs the
//!   level-1 memory as a flow cache).

use crate::forwarding::{Action, DiscardCause, Forwarding, MplsForwarder, RouterStats};
use crate::pipeline::{RouterTables, SrPick};
use mpls_control::{Hop, NodeConfig, NodeId, RouterRole, SrPolicyEntry};
use mpls_core::modifier::Outcome;
use mpls_core::{ClockSpec, DiscardReason, IbOperation, LabelStackModifier, Level, RouterType};
use mpls_dataplane::LabelOp;
use mpls_packet::sr::{self, MnaNas};
use mpls_packet::{label::LabelStackEntry, CosBits, LabelStack, MplsPacket, EMBEDDED_STACK_DEPTH};
use std::collections::HashSet;

/// Maps control-plane operations onto the hardware encoding.
fn to_ib_op(op: LabelOp) -> IbOperation {
    match op {
        LabelOp::Nop => IbOperation::Nop,
        LabelOp::Push => IbOperation::Push,
        LabelOp::Pop => IbOperation::Pop,
        LabelOp::Swap => IbOperation::Swap,
    }
}

/// Maps hardware discard reasons onto router-level causes.
fn to_cause(r: DiscardReason) -> DiscardCause {
    match r {
        DiscardReason::NoEntryFound => DiscardCause::NoEntryFound,
        DiscardReason::TtlExpired => DiscardCause::TtlExpired,
        DiscardReason::InconsistentOperation => DiscardCause::InconsistentOperation,
    }
}

/// An MPLS router whose label operations run on the embedded hardware
/// model.
#[derive(Debug, Clone)]
pub struct EmbeddedRouter {
    node: NodeId,
    rtype: RouterType,
    modifier: LabelStackModifier,
    tables: RouterTables,
    clock: ClockSpec,
    /// Exact packet identifiers already present in level 1.
    installed_flows: HashSet<u32>,
    stats: RouterStats,
}

/// Programs a fresh modifier and flow cache from a node configuration.
fn program(rtype: RouterType, config: &NodeConfig) -> (LabelStackModifier, HashSet<u32>) {
    let mut modifier = LabelStackModifier::new(rtype);
    modifier.reset();
    let mut installed_flows = HashSet::new();
    for b in &config.bindings {
        let level = match b.level {
            1 => Level::L1,
            2 => Level::L2,
            _ => Level::L3,
        };
        let r = modifier.write_pair(level, b.key, b.new_label, to_ib_op(b.op));
        debug_assert_eq!(r.outcome, Outcome::Done, "info base overflow at setup");
        if level == Level::L1 {
            installed_flows.insert(b.key as u32);
        }
    }
    (modifier, installed_flows)
}

impl EmbeddedRouter {
    /// Builds a router for `node` with `role`, programming the information
    /// base from the control plane's `config`.
    pub fn new(node: NodeId, role: RouterRole, config: &NodeConfig, clock: ClockSpec) -> Self {
        let rtype = match role {
            RouterRole::Ler => RouterType::Ler,
            RouterRole::Lsr => RouterType::Lsr,
        };
        let (modifier, installed_flows) = program(rtype, config);
        Self {
            node,
            rtype,
            modifier,
            tables: RouterTables::from_config(config),
            clock,
            installed_flows,
            stats: RouterStats::default(),
        }
    }

    /// The hardware modifier, for inspection.
    pub fn modifier(&self) -> &LabelStackModifier {
        &self.modifier
    }

    /// The configured clock.
    pub fn clock(&self) -> ClockSpec {
        self.clock
    }

    fn finish(&mut self, cycles: u64, action: Action) -> Forwarding {
        let latency_ns = self.clock.cycles_to_duration(cycles).as_nanos() as u64;
        self.stats.total_cycles += cycles;
        self.stats.total_latency_ns += latency_ns;
        match &action {
            Action::Forward { .. } => self.stats.forwarded += 1,
            Action::Deliver(_) => self.stats.delivered += 1,
            Action::Discard(cause) => {
                self.stats.discarded += 1;
                self.stats.by_cause.record(*cause);
            }
        }
        Forwarding { action, latency_ns }
    }

    fn note_pick(&mut self, pick: SrPick) {
        match pick {
            SrPick::Ecmp => self.stats.ecmp_decisions += 1,
            SrPick::RldViolation => self.stats.rld_violations += 1,
            SrPick::Single => {}
        }
    }

    /// Segment-routing ingress. The embedded pipeline can hold at most
    /// [`EMBEDDED_STACK_DEPTH`] entries, so only source routes compressed
    /// to fit the entry registers can be assembled here — a deeper stack
    /// is an inconsistent operation for this hardware, exactly the cost
    /// boundary the RLD model captures. The assembled stack is delivered
    /// through the ingress module at one `user push` (3 cycles) per entry.
    fn sr_ingress(&mut self, mut packet: MplsPacket, policy: &SrPolicyEntry) -> Forwarding {
        if packet.ip.ttl == 0 {
            return self.finish(0, Action::Discard(DiscardCause::TtlExpired));
        }
        let (cos, ttl) = (policy.cos, packet.ip.ttl);
        let mut entries: Vec<LabelStackEntry> = policy
            .sids
            .iter()
            .map(|&sid| LabelStackEntry::new(sid, cos, false, ttl))
            .collect();
        if policy.mna {
            let nas = MnaNas::new(1, policy.sids.len() as u32).expect("opcode 1 is in range");
            entries.extend(nas.entries(cos, ttl));
        }
        if policy.entropy {
            let el = sr::entropy_label(packet.ip.src, packet.ip.dst);
            entries.extend(sr::entropy_entries(el, cos, ttl));
        }
        if entries.len() > EMBEDDED_STACK_DEPTH {
            return self.finish(0, Action::Discard(DiscardCause::InconsistentOperation));
        }
        let depth = entries.len() as u64;
        let stack = LabelStack::from_entries(&entries).expect("depth checked above");
        packet.splice_stack(stack);
        self.stats.peak_stack_depth = self.stats.peak_stack_depth.max(depth);
        let cycles = 3 * depth;
        self.stats.stage_cycles.load += cycles;
        let dst = packet.ip.dst;
        let top = packet.stack.top().map(|e| e.label);
        let (res, pick) = self
            .tables
            .resolve_egress_on(top, dst, packet.stack.entries());
        self.note_pick(pick);
        match res {
            Ok(Hop::Node(next)) => self.finish(cycles, Action::Forward { next, packet }),
            Ok(Hop::Local) => self.finish(cycles, Action::Deliver(packet)),
            Err(cause) => self.finish(cycles, Action::Discard(cause)),
        }
    }

    /// The MPLS fast/slow path for a packet that must traverse the
    /// modifier.
    fn mpls_path(
        &mut self,
        mut packet: MplsPacket,
        push_cos: CosBits,
        cycles_in: u64,
    ) -> Forwarding {
        let mut cycles = cycles_in;
        let dst = packet.ip.dst;

        // Ingress packet processing: deliver the label stack to the
        // modifier, bottom entry first so the hardware stack ends up in
        // packet order.
        debug_assert_eq!(self.modifier.stack_depth(), 0, "modifier not drained");
        for e in packet.stack.entries().iter().rev() {
            let r = self.modifier.user_push(*e);
            debug_assert_eq!(r.outcome, Outcome::Done);
            cycles += r.cycles;
            self.stats.stage_cycles.load += r.cycles;
        }

        // The stack update itself.
        let r = self.modifier.update_stack(dst, push_cos, packet.ip.ttl);
        cycles += r.cycles;
        self.stats.stage_cycles.update += r.cycles;
        let outcome = r.outcome;
        if let Outcome::Discarded(reason) = outcome {
            return self.finish(cycles, Action::Discard(to_cause(reason)));
        }

        // Egress packet processing: drain the modifier and splice the new
        // stack into the packet.
        let mut top_first = Vec::with_capacity(self.modifier.stack_depth());
        while self.modifier.stack_depth() > 0 {
            let r = self.modifier.user_pop();
            cycles += r.cycles;
            self.stats.stage_cycles.unload += r.cycles;
            match r.outcome {
                Outcome::Popped(e) => top_first.push(e),
                other => unreachable!("pop of non-empty stack returned {other:?}"),
            }
        }
        let new_stack =
            LabelStack::from_entries(&top_first).expect("hardware stack within depth bounds");
        packet.splice_stack(new_stack);

        let top = packet.stack.top().map(|e| e.label);
        // A metadata indicator on top means the last transport segment
        // ended here: strip the sub-stack and route the bare packet.
        if top.is_some_and(sr::is_metadata_indicator) {
            packet.splice_stack(LabelStack::new());
            return match self.tables.resolve_egress(None, dst) {
                Ok(Hop::Node(next)) => self.finish(cycles, Action::Forward { next, packet }),
                Ok(Hop::Local) => self.finish(cycles, Action::Deliver(packet)),
                Err(cause) => self.finish(cycles, Action::Discard(cause)),
            };
        }
        let (res, pick) = self
            .tables
            .resolve_egress_on(top, dst, packet.stack.entries());
        self.note_pick(pick);
        match res {
            Ok(Hop::Node(next)) => self.finish(cycles, Action::Forward { next, packet }),
            Ok(Hop::Local) => self.finish(cycles, Action::Deliver(packet)),
            Err(cause) => self.finish(cycles, Action::Discard(cause)),
        }
    }
}

impl MplsForwarder for EmbeddedRouter {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn handle(&mut self, packet: MplsPacket) -> Forwarding {
        self.stats.packets_in += 1;
        self.stats.peak_stack_depth = self
            .stats
            .peak_stack_depth
            .max(packet.stack.entries().len() as u64);
        let dst = packet.ip.dst;

        // The entry registers hold EMBEDDED_STACK_DEPTH entries; a deeper
        // arriving stack cannot be loaded and is discarded before it
        // touches the modifier (no cycles spent).
        if packet.stack.entries().len() > EMBEDDED_STACK_DEPTH {
            return self.finish(0, Action::Discard(DiscardCause::InconsistentOperation));
        }

        if packet.stack.is_empty() {
            // Unlabeled arrival: local delivery and plain IP transit skip
            // the modifier entirely.
            match self.tables.ip_route(dst) {
                Some(Hop::Local) => return self.finish(0, Action::Deliver(packet)),
                Some(Hop::Node(next)) => return self.finish(0, Action::Forward { next, packet }),
                None => {}
            }
            // Ingress classification: find the FEC, install the exact
            // level-1 pair on first sight (slow path), then run the
            // hardware push.
            // Segment-routing ingress assembles the whole source route.
            if let Some(policy) = self.tables.sr_classify(dst) {
                let policy = policy.clone();
                return self.sr_ingress(packet, &policy);
            }
            let Some((push_label, cos)) = self.tables.classify(dst) else {
                return self.finish(0, Action::Discard(DiscardCause::NoRoute));
            };
            // TTL 0 cannot survive the hardware push (`VerifyInfo` kills
            // it), so discard before the slow path runs: a dead packet
            // must neither occupy a level-1 flow slot nor — when the
            // table is full — be misreported as `FlowTableFull`. This
            // mirrors the software router's check; the labeled TTL rules
            // stay inside the modifier, whose search-first order the
            // golden waveforms pin.
            if packet.ip.ttl == 0 {
                return self.finish(0, Action::Discard(DiscardCause::TtlExpired));
            }
            let mut cycles = 0;
            if !self.installed_flows.contains(&dst) {
                let r =
                    self.modifier
                        .write_pair(Level::L1, dst as u64, push_label, IbOperation::Push);
                cycles += r.cycles;
                self.stats.stage_cycles.slow_path += r.cycles;
                if r.outcome == Outcome::WriteRejected {
                    return self.finish(cycles, Action::Discard(DiscardCause::FlowTableFull));
                }
                self.installed_flows.insert(dst);
                self.stats.flow_installs += 1;
            }
            return self.mpls_path(packet, cos, cycles);
        }

        self.mpls_path(packet, CosBits::BEST_EFFORT, 0)
    }

    fn stats(&self) -> RouterStats {
        self.stats
    }

    fn reprogram(&mut self, config: &NodeConfig) {
        // Rebuild the information base and flow cache from scratch —
        // stale level-1 flow entries must not survive a reroute, or they
        // would keep pushing labels of a torn-down LSP. Statistics carry
        // over: reconvergence does not reset counters, and the hardware
        // performance counter block (if attached) survives the rebuild.
        let perf = self.modifier.take_perf();
        let (modifier, installed_flows) = program(self.rtype, config);
        self.modifier = modifier;
        self.modifier.set_perf(perf);
        self.installed_flows = installed_flows;
        self.tables = RouterTables::from_config(config);
    }

    fn enable_perf(&mut self) {
        self.modifier.enable_perf();
    }

    fn core_perf(&self) -> Option<&mpls_core::CorePerf> {
        self.modifier.perf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{ControlPlane, LspRequest, Topology};
    use mpls_dataplane::ftn::Prefix;
    use mpls_packet::ipv4::parse_addr;
    use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, Label, MacAddr};

    fn packet_to_ttl(dst: &str, ttl: u8) -> MplsPacket {
        MplsPacket::ipv4(
            EthernetFrame {
                dst: MacAddr::from_node(0, 0),
                src: MacAddr::from_node(9, 0),
                ethertype: EtherType::Ipv4,
            },
            Ipv4Header::new(
                parse_addr("10.9.0.1").unwrap(),
                parse_addr(dst).unwrap(),
                Ipv4Header::PROTO_UDP,
                ttl,
                16,
            ),
            bytes::Bytes::from_static(&[0u8; 16]),
        )
    }

    fn packet_to(dst: &str) -> MplsPacket {
        packet_to_ttl(dst, 64)
    }

    fn lsp_setup() -> (ControlPlane, u32) {
        let mut cp = ControlPlane::new(Topology::figure1_example());
        let id = cp
            .establish_lsp(LspRequest::best_effort(
                0,
                1,
                Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
            ))
            .unwrap();
        (cp, id)
    }

    #[test]
    fn ingress_labels_a_packet_with_flow_install() {
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        let out = r.handle(packet_to("192.168.1.5"));
        match out.action {
            Action::Forward { next, packet } => {
                assert_eq!(next, 2);
                assert_eq!(packet.stack.depth(), 1);
                assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[0]);
                assert_eq!(packet.eth.ethertype, EtherType::MplsUnicast);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(r.stats().flow_installs, 1);
        // First packet: write pair (3) + update (search hit k=1: 8, +6
        // push-on-empty) + unload one entry (3) = 20 cycles.
        assert_eq!(r.stats().total_cycles, 3 + 8 + 6 + 3);
        assert_eq!(out.latency_ns, 20 * 20);

        // Second packet of the flow skips the slow path.
        let out2 = r.handle(packet_to("192.168.1.5"));
        assert!(matches!(out2.action, Action::Forward { .. }));
        assert_eq!(r.stats().flow_installs, 1);
        assert_eq!(out2.latency_ns, 17 * 20);
    }

    #[test]
    fn transit_swaps() {
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            2,
            RouterRole::Lsr,
            &cp.config_for(2),
            ClockSpec::STRATIX_50MHZ,
        );
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(lsp.hop_labels[0], CosBits::BEST_EFFORT, 63)
            .unwrap();
        p.splice_stack(s);
        let out = r.handle(p);
        match out.action {
            Action::Forward { next, packet } => {
                assert_eq!(next, 3);
                assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[1]);
                assert_eq!(packet.stack.top().unwrap().ttl, 62);
            }
            other => panic!("expected forward, got {other:?}"),
        }
        // load 3 + update (8 + 6) + unload 3
        assert_eq!(r.stats().total_cycles, 3 + 8 + 6 + 3);
    }

    #[test]
    fn egress_pops_and_delivers() {
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            1,
            RouterRole::Ler,
            &cp.config_for(1),
            ClockSpec::STRATIX_50MHZ,
        );
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(lsp.hop_labels[2], CosBits::BEST_EFFORT, 61)
            .unwrap();
        p.splice_stack(s);
        let out = r.handle(p);
        match out.action {
            Action::Deliver(packet) => {
                assert!(packet.stack.is_empty());
                assert_eq!(packet.eth.ethertype, EtherType::Ipv4);
            }
            other => panic!("expected deliver, got {other:?}"),
        }
    }

    #[test]
    fn unroutable_unlabeled_packet_discards() {
        let (cp, _) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        let out = r.handle(packet_to("172.16.0.1"));
        assert_eq!(out.action, Action::Discard(DiscardCause::NoRoute));
        assert_eq!(out.latency_ns, 0);
    }

    #[test]
    fn unknown_label_discards_via_hardware_miss() {
        let (cp, _) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            2,
            RouterRole::Lsr,
            &cp.config_for(2),
            ClockSpec::STRATIX_50MHZ,
        );
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(Label::new(99_999).unwrap(), CosBits::BEST_EFFORT, 63)
            .unwrap();
        p.splice_stack(s);
        let out = r.handle(p);
        assert_eq!(out.action, Action::Discard(DiscardCause::NoEntryFound));
        // The modifier must be drained for the next packet even after a
        // discard (the discard path resets the stack).
        assert_eq!(r.modifier().stack_depth(), 0);
    }

    #[test]
    fn ttl_expiry_discards_at_transit() {
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            2,
            RouterRole::Lsr,
            &cp.config_for(2),
            ClockSpec::STRATIX_50MHZ,
        );
        for ttl in [0u8, 1] {
            let mut p = packet_to("192.168.1.5");
            let mut s = LabelStack::new();
            s.push_parts(lsp.hop_labels[0], CosBits::BEST_EFFORT, ttl)
                .unwrap();
            p.splice_stack(s);
            let out = r.handle(p);
            assert_eq!(
                out.action,
                Action::Discard(DiscardCause::TtlExpired),
                "ttl {ttl}: must expire before the swap is applied"
            );
        }
    }

    #[test]
    fn ttl_expiry_discards_at_php_pop() {
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            1,
            RouterRole::Ler,
            &cp.config_for(1),
            ClockSpec::STRATIX_50MHZ,
        );
        for ttl in [0u8, 1] {
            let mut p = packet_to("192.168.1.5");
            let mut s = LabelStack::new();
            s.push_parts(lsp.hop_labels[2], CosBits::BEST_EFFORT, ttl)
                .unwrap();
            p.splice_stack(s);
            let out = r.handle(p);
            assert_eq!(
                out.action,
                Action::Discard(DiscardCause::TtlExpired),
                "ttl {ttl}: must expire before the pop exposes the payload"
            );
        }
    }

    #[test]
    fn ttl_zero_at_ingress_discards_before_flow_install() {
        // Regression (ISSUE 5): the slow path used to install the level-1
        // flow *before* any TTL check, so a dead packet polluted the flow
        // table (and, with the table full, was misreported as
        // FlowTableFull instead of TtlExpired).
        let (cp, _) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        let out = r.handle(packet_to_ttl("192.168.1.5", 0));
        assert_eq!(out.action, Action::Discard(DiscardCause::TtlExpired));
        assert_eq!(out.latency_ns, 0, "no modifier interaction at all");
        let s = r.stats();
        assert_eq!(s.flow_installs, 0, "a dead packet must not install a flow");
        assert_eq!(s.stage_cycles.slow_path, 0);
        // The flow table is unpolluted: a live packet still installs and
        // forwards normally.
        let out = r.handle(packet_to("192.168.1.5"));
        assert!(matches!(out.action, Action::Forward { .. }));
        assert_eq!(r.stats().flow_installs, 1);
    }

    #[test]
    fn ttl_one_survives_ingress_push() {
        // TTL 1 is alive at the push point (the hardware writes the
        // control-path TTL verbatim); it dies at the *next* hop's swap.
        let (cp, id) = lsp_setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        let out = r.handle(packet_to_ttl("192.168.1.5", 1));
        match out.action {
            Action::Forward { packet, .. } => {
                assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[0]);
                assert_eq!(packet.stack.top().unwrap().ttl, 1);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn discards_are_attributed_by_cause() {
        let (cp, _) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        r.handle(packet_to("172.16.0.1")); // NoRoute
        r.handle(packet_to("172.16.0.2")); // NoRoute
        let s = r.stats();
        assert_eq!(s.by_cause.get(DiscardCause::NoRoute), 2);
        assert_eq!(s.by_cause.total(), s.discarded);
    }

    #[test]
    fn stage_cycles_partition_total_cycles() {
        let (cp, _) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        r.handle(packet_to("192.168.1.5"));
        let s = r.stats();
        // First packet: slow path 3, update 8+6, unload 3, no load (the
        // packet arrived unlabeled).
        assert_eq!(s.stage_cycles.slow_path, 3);
        assert_eq!(s.stage_cycles.update, 14);
        assert_eq!(s.stage_cycles.unload, 3);
        assert_eq!(s.stage_cycles.load, 0);
        assert_eq!(s.stage_cycles.total(), s.total_cycles);

        r.handle(packet_to("192.168.1.5"));
        let s = r.stats();
        assert_eq!(s.stage_cycles.total(), s.total_cycles, "stays a partition");
        assert_eq!(s.stage_cycles.slow_path, 3, "second packet hits fast path");
    }

    #[test]
    fn perf_block_survives_reprogram() {
        let (cp, id) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        r.enable_perf();
        r.handle(packet_to("192.168.1.5"));
        let hits_before = r.core_perf().expect("perf enabled").search_hits;
        assert!(hits_before > 0, "the update stack searched level 1");

        let mut cp2 = cp.clone();
        cp2.teardown_lsp(id).unwrap();
        let mut req =
            LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
        req.explicit_route = Some(vec![0, 4, 5, 1]);
        cp2.establish_lsp(req).unwrap();
        r.reprogram(&cp2.config_for(0));

        r.handle(packet_to("192.168.1.5"));
        let p = r.core_perf().expect("perf survived reprogram");
        assert!(p.search_hits > hits_before, "counters kept accumulating");
    }

    #[test]
    fn reprogram_swaps_state_and_keeps_stats() {
        let (cp, id) = lsp_setup();
        let mut r = EmbeddedRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            ClockSpec::STRATIX_50MHZ,
        );
        assert!(matches!(
            r.handle(packet_to("192.168.1.5")).action,
            Action::Forward { next: 2, .. }
        ));
        let before = r.stats();
        assert_eq!(before.flow_installs, 1);

        // Re-signal the LSP over the pinned southern path and reprogram.
        let mut cp2 = cp.clone();
        cp2.teardown_lsp(id).unwrap();
        let mut req =
            LspRequest::best_effort(0, 1, Prefix::new(parse_addr("192.168.1.0").unwrap(), 24));
        req.explicit_route = Some(vec![0, 4, 5, 1]);
        cp2.establish_lsp(req).unwrap();
        r.reprogram(&cp2.config_for(0));

        // Same flow now heads south through node 4, via a fresh slow-path
        // install (the stale flow-cache entry did not survive).
        let out = r.handle(packet_to("192.168.1.5"));
        assert!(matches!(out.action, Action::Forward { next: 4, .. }));
        let after = r.stats();
        assert_eq!(after.flow_installs, 2);
        assert!(after.packets_in > before.packets_in, "stats preserved");
    }
}
