//! The forwarding interface both router models implement, and the
//! per-router statistics the experiments report.

use mpls_control::NodeId;
use mpls_packet::MplsPacket;
use serde::{Deserialize, Serialize};

/// Why a router dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscardCause {
    /// The data plane found no matching table entry.
    NoEntryFound,
    /// TTL expired in the data plane.
    TtlExpired,
    /// Inconsistent operation (nop entry, overflowing push, role
    /// violation).
    InconsistentOperation,
    /// The stack update succeeded but no next hop is programmed for the
    /// resulting top label.
    NoNextHop,
    /// An unlabeled packet matched neither a local route nor a FEC.
    NoRoute,
    /// The hardware level-1 flow table is full and the flow cannot be
    /// installed.
    FlowTableFull,
}

impl core::fmt::Display for DiscardCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::NoEntryFound => "no entry found",
            Self::TtlExpired => "TTL expired",
            Self::InconsistentOperation => "inconsistent operation",
            Self::NoNextHop => "no next hop for outgoing label",
            Self::NoRoute => "no route for unlabeled packet",
            Self::FlowTableFull => "hardware flow table full",
        })
    }
}

/// What the router decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send the (rewritten) packet to an adjacent node.
    Forward {
        /// The next hop.
        next: NodeId,
        /// The packet with its new label stack spliced in.
        packet: MplsPacket,
    },
    /// Deliver to the locally attached layer-2 network (egress).
    Deliver(MplsPacket),
    /// Drop.
    Discard(DiscardCause),
}

/// A forwarding decision with its data-plane cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forwarding {
    /// The decision.
    pub action: Action,
    /// Time the packet spent in the data plane, in nanoseconds. For the
    /// embedded router this is exact (cycles x clock period); for the
    /// software router it comes from the calibrated timing model.
    pub latency_ns: u64,
}

/// Counters every router keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Packets handed to the router.
    pub packets_in: u64,
    /// Packets forwarded to a next hop.
    pub forwarded: u64,
    /// Packets delivered locally.
    pub delivered: u64,
    /// Packets discarded.
    pub discarded: u64,
    /// Total data-plane latency accumulated (ns).
    pub total_latency_ns: u64,
    /// Hardware only: total clock cycles spent.
    pub total_cycles: u64,
    /// Hardware only: slow-path flow installations performed.
    pub flow_installs: u64,
}

impl RouterStats {
    /// Mean per-packet latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.packets_in == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / self.packets_in as f64
        }
    }
}

/// A packet-at-a-time MPLS router.
pub trait MplsForwarder {
    /// The node this router instantiates.
    fn node_id(&self) -> NodeId;

    /// Processes one packet.
    fn handle(&mut self, packet: MplsPacket) -> Forwarding;

    /// Statistics so far.
    fn stats(&self) -> RouterStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_latency() {
        let mut s = RouterStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        s.packets_in = 4;
        s.total_latency_ns = 1000;
        assert_eq!(s.mean_latency_ns(), 250.0);
    }

    #[test]
    fn discard_cause_display() {
        assert_eq!(DiscardCause::NoNextHop.to_string(), "no next hop for outgoing label");
    }
}
