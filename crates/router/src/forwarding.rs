//! The forwarding interface both router models implement, and the
//! per-router statistics the experiments report.

use mpls_control::{NodeConfig, NodeId};
use mpls_core::CorePerf;
use mpls_packet::MplsPacket;
use serde::{Deserialize, Serialize};

/// Why a packet was dropped.
///
/// The first six causes are router data-plane discards; the last two are
/// link-level losses accounted by the network simulator (a packet steered
/// onto or caught in flight on a dead channel, and random wire loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiscardCause {
    /// The data plane found no matching table entry.
    NoEntryFound,
    /// TTL expired in the data plane.
    TtlExpired,
    /// Inconsistent operation (nop entry, overflowing push, role
    /// violation).
    InconsistentOperation,
    /// The stack update succeeded but no next hop is programmed for the
    /// resulting top label.
    NoNextHop,
    /// An unlabeled packet matched neither a local route nor a FEC.
    NoRoute,
    /// The hardware level-1 flow table is full and the flow cannot be
    /// installed.
    FlowTableFull,
    /// The packet was steered onto (or was in flight on) a failed link.
    LinkDown,
    /// Random loss on the wire (bit errors / a lossy link).
    LinkLoss,
}

impl DiscardCause {
    /// Every cause, in counter order.
    pub const ALL: [DiscardCause; 8] = [
        Self::NoEntryFound,
        Self::TtlExpired,
        Self::InconsistentOperation,
        Self::NoNextHop,
        Self::NoRoute,
        Self::FlowTableFull,
        Self::LinkDown,
        Self::LinkLoss,
    ];
}

impl core::fmt::Display for DiscardCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::NoEntryFound => "no entry found",
            Self::TtlExpired => "TTL expired",
            Self::InconsistentOperation => "inconsistent operation",
            Self::NoNextHop => "no next hop for outgoing label",
            Self::NoRoute => "no route for unlabeled packet",
            Self::FlowTableFull => "hardware flow table full",
            Self::LinkDown => "link down",
            Self::LinkLoss => "random link loss",
        })
    }
}

/// A per-cause drop breakdown: one counter per [`DiscardCause`].
///
/// Named fields (rather than an array) keep the JSON reports
/// self-describing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CauseCounts {
    /// [`DiscardCause::NoEntryFound`] drops.
    pub no_entry_found: u64,
    /// [`DiscardCause::TtlExpired`] drops.
    pub ttl_expired: u64,
    /// [`DiscardCause::InconsistentOperation`] drops.
    pub inconsistent_operation: u64,
    /// [`DiscardCause::NoNextHop`] drops.
    pub no_next_hop: u64,
    /// [`DiscardCause::NoRoute`] drops.
    pub no_route: u64,
    /// [`DiscardCause::FlowTableFull`] drops.
    pub flow_table_full: u64,
    /// [`DiscardCause::LinkDown`] drops.
    pub link_down: u64,
    /// [`DiscardCause::LinkLoss`] drops.
    pub link_loss: u64,
}

impl CauseCounts {
    fn slot_mut(&mut self, cause: DiscardCause) -> &mut u64 {
        match cause {
            DiscardCause::NoEntryFound => &mut self.no_entry_found,
            DiscardCause::TtlExpired => &mut self.ttl_expired,
            DiscardCause::InconsistentOperation => &mut self.inconsistent_operation,
            DiscardCause::NoNextHop => &mut self.no_next_hop,
            DiscardCause::NoRoute => &mut self.no_route,
            DiscardCause::FlowTableFull => &mut self.flow_table_full,
            DiscardCause::LinkDown => &mut self.link_down,
            DiscardCause::LinkLoss => &mut self.link_loss,
        }
    }

    /// Counts one drop for `cause`.
    pub fn record(&mut self, cause: DiscardCause) {
        *self.slot_mut(cause) += 1;
    }

    /// The counter for `cause`.
    pub fn get(&self, cause: DiscardCause) -> u64 {
        match cause {
            DiscardCause::NoEntryFound => self.no_entry_found,
            DiscardCause::TtlExpired => self.ttl_expired,
            DiscardCause::InconsistentOperation => self.inconsistent_operation,
            DiscardCause::NoNextHop => self.no_next_hop,
            DiscardCause::NoRoute => self.no_route,
            DiscardCause::FlowTableFull => self.flow_table_full,
            DiscardCause::LinkDown => self.link_down,
            DiscardCause::LinkLoss => self.link_loss,
        }
    }

    /// Sum over all causes.
    pub fn total(&self) -> u64 {
        DiscardCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// `(cause, count)` pairs in counter order.
    pub fn iter(&self) -> impl Iterator<Item = (DiscardCause, u64)> + '_ {
        DiscardCause::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Adds another breakdown's counts into this one (merging partial
    /// accountings kept by parallel engine shards).
    pub fn merge(&mut self, other: &CauseCounts) {
        for &c in DiscardCause::ALL.iter() {
            *self.slot_mut(c) += other.get(c);
        }
    }
}

/// What the router decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send the (rewritten) packet to an adjacent node.
    Forward {
        /// The next hop.
        next: NodeId,
        /// The packet with its new label stack spliced in.
        packet: MplsPacket,
    },
    /// Deliver to the locally attached layer-2 network (egress).
    Deliver(MplsPacket),
    /// Drop.
    Discard(DiscardCause),
}

/// A forwarding decision with its data-plane cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Forwarding {
    /// The decision.
    pub action: Action,
    /// Time the packet spent in the data plane, in nanoseconds. For the
    /// embedded router this is exact (cycles x clock period); for the
    /// software router it comes from the calibrated timing model.
    pub latency_ns: u64,
}

/// Cycles attributed to each stage of the embedded router's pipeline
/// (Fig. 6): hardware only, zero for the software router, in the spirit of
/// the per-stage counters programmable switch pipelines expose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCycles {
    /// Ingress packet processing: `user push` of each arriving entry.
    pub load: u64,
    /// The stack update itself (search + label operation).
    pub update: u64,
    /// Egress packet processing: `user pop` draining the modifier.
    pub unload: u64,
    /// Slow-path `write label pair` flow installations.
    pub slow_path: u64,
}

impl StageCycles {
    /// Sum over all stages; equals `RouterStats::total_cycles` for the
    /// embedded router.
    pub fn total(&self) -> u64 {
        self.load + self.update + self.unload + self.slow_path
    }

    /// `(stage, cycles)` pairs in pipeline order, the shape telemetry
    /// scrapes.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        [
            ("load", self.load),
            ("update", self.update),
            ("unload", self.unload),
            ("slow_path", self.slow_path),
        ]
        .into_iter()
    }
}

/// Counters every router keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Packets handed to the router.
    pub packets_in: u64,
    /// Packets forwarded to a next hop.
    pub forwarded: u64,
    /// Packets delivered locally.
    pub delivered: u64,
    /// Packets discarded.
    pub discarded: u64,
    /// Discards broken down by cause; `by_cause.total() == discarded`.
    pub by_cause: CauseCounts,
    /// Total data-plane latency accumulated (ns).
    pub total_latency_ns: u64,
    /// Hardware only: total clock cycles spent.
    pub total_cycles: u64,
    /// Hardware only: slow-path flow installations performed.
    pub flow_installs: u64,
    /// Hardware only: `total_cycles` broken down by pipeline stage.
    pub stage_cycles: StageCycles,
    /// Deepest label stack observed on any packet handled here (arriving
    /// depth or an SR ingress push, whichever is larger).
    pub peak_stack_depth: u64,
    /// Equal-cost fan-outs that could not be entropy-hashed because the
    /// entropy pair sat beyond this node's readable label depth.
    pub rld_violations: u64,
    /// Entropy-hashed ECMP next-hop decisions taken.
    pub ecmp_decisions: u64,
    /// FIB lookups actually executed (cache hits excluded). Diagnostics
    /// only, never serialized: reports must stay byte-identical across
    /// lookup strategies, and this is exactly the counter that tells the
    /// paths apart.
    #[serde(skip)]
    pub fib_lookups: u64,
    /// Flow-cache hits (fast path only; see `fib_lookups` for why this is
    /// not serialized).
    #[serde(skip)]
    pub cache_hits: u64,
    /// Flow-cache misses (fast path only).
    #[serde(skip)]
    pub cache_misses: u64,
}

impl RouterStats {
    /// Mean per-packet latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.packets_in == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / self.packets_in as f64
        }
    }
}

/// A packet-at-a-time MPLS router.
pub trait MplsForwarder {
    /// The node this router instantiates.
    fn node_id(&self) -> NodeId;

    /// Processes one packet.
    fn handle(&mut self, packet: MplsPacket) -> Forwarding;

    /// Processes one packet that arrived on `port` (a channel index, or
    /// a synthetic source port). Routers with a per-ingress flow cache
    /// key on the port; the default ignores it.
    fn handle_on_port(&mut self, packet: MplsPacket, port: u64) -> Forwarding {
        let _ = port;
        self.handle(packet)
    }

    /// Statistics so far.
    fn stats(&self) -> RouterStats;

    /// Replaces the router's forwarding state with `config` (a head end
    /// converging on re-signaled or failed-over LSPs) while preserving
    /// its statistics.
    fn reprogram(&mut self, config: &NodeConfig);

    /// Enables hardware-style performance counters (per-FSM-state cycles,
    /// search-depth histogram), if the implementation has any. Default:
    /// no-op for routers without such hardware.
    fn enable_perf(&mut self) {}

    /// The hardware counter block, if enabled and present. Telemetry
    /// scrapes this at end of run.
    fn core_perf(&self) -> Option<&CorePerf> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_latency() {
        let mut s = RouterStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        s.packets_in = 4;
        s.total_latency_ns = 1000;
        assert_eq!(s.mean_latency_ns(), 250.0);
    }

    #[test]
    fn discard_cause_display() {
        assert_eq!(
            DiscardCause::NoNextHop.to_string(),
            "no next hop for outgoing label"
        );
        assert_eq!(DiscardCause::LinkDown.to_string(), "link down");
    }

    #[test]
    fn each_cause_increments_its_own_counter() {
        // Every variant must land in its own slot: recording cause c once
        // yields get(c) == 1 and zero everywhere else.
        for &cause in &DiscardCause::ALL {
            let mut counts = CauseCounts::default();
            counts.record(cause);
            for &other in &DiscardCause::ALL {
                let expect = u64::from(other == cause);
                assert_eq!(counts.get(other), expect, "{cause:?} leaked into {other:?}");
            }
            assert_eq!(counts.total(), 1);
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut counts = CauseCounts::default();
        for (i, &cause) in DiscardCause::ALL.iter().enumerate() {
            for _ in 0..=i {
                counts.record(cause);
            }
        }
        // 1 + 2 + ... + 8 recordings.
        assert_eq!(counts.total(), (1..=8).sum::<u64>());
        let by_iter: u64 = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(by_iter, counts.total());
        assert_eq!(counts.get(DiscardCause::NoEntryFound), 1);
        assert_eq!(counts.get(DiscardCause::LinkLoss), 8);
    }
}
