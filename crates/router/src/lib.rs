#![warn(missing_docs)]
//! MPLS router models implementing the paper's Fig. 6 architecture.
//!
//! "The architecture consists of two packet processing \[modules\], and a
//! separate \[module\] to modify the label stack": the **ingress packet
//! processing** extracts the label stack and packet identifier, the
//! **label stack modifier** (hardware — `mpls-core`) rewrites the stack,
//! and the **egress packet processing** splices the new stack into the
//! packet. Routing functionality (here: the tables produced by
//! `mpls-control`) programs the information base.
//!
//! Two interchangeable routers implement [`MplsForwarder`]:
//!
//! * [`EmbeddedRouter`] — hosts the cycle-accurate label stack modifier;
//!   per-packet latency is the exact cycle count at a configurable clock.
//!   Because the hardware can only match exact 32-bit packet identifiers,
//!   its ingress runs a *flow cache*: the first packet of a flow takes a
//!   software-assisted slow path that installs the exact level-1 pair
//!   (one `write label pair` = 3 cycles), and subsequent packets hit in
//!   hardware.
//! * [`SoftwareRouter`] — the all-software baseline over
//!   `mpls-dataplane`, with a calibrated per-packet + per-probe latency
//!   model.

pub mod embedded;
pub mod forwarding;
pub mod kind;
pub mod pipeline;
pub mod software;

pub use embedded::EmbeddedRouter;
pub use forwarding::{
    Action, CauseCounts, DiscardCause, Forwarding, MplsForwarder, RouterStats, StageCycles,
};
pub use kind::RouterKind;
pub use pipeline::RouterTables;
pub use software::{SoftwareRouter, SwTimingModel};
