//! Shared ingress/egress packet-processing state.
//!
//! Both router models surround their label stack engine with the same
//! tables: FEC classification for unlabeled arrivals (the ingress side of
//! Fig. 6), and the next-hop/IP-route tables the egress side consults
//! after the stack update.

use crate::forwarding::DiscardCause;
use mpls_control::{Hop, NodeConfig, NodeId, SrPolicyEntry};
use mpls_dataplane::ftn::{Prefix, PrefixFtn};
use mpls_dataplane::LabelBinding;
use mpls_packet::label::LabelStackEntry;
use mpls_packet::sr::{self, EntropyScan};
use mpls_packet::{CosBits, Label};
use std::collections::HashMap;

/// How an egress resolution picked its next hop — the router folds this
/// into its per-node SR counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrPick {
    /// No equal-cost fan-out was involved (or fan-out of one).
    Single,
    /// An entropy-hashed ECMP decision was made.
    Ecmp,
    /// Fan-out existed but the entropy pair sat below this node's
    /// readable label depth: fell back to the canonical member.
    RldViolation,
}

/// The packet-processing tables derived from a [`NodeConfig`].
#[derive(Debug, Clone, Default)]
pub struct RouterTables {
    /// FEC classification: prefix -> (push label, cos).
    ftn: PrefixFtn,
    /// CoS per FEC prefix (PrefixFtn stores the binding; CoS kept aside).
    fec_cos: HashMap<(u32, u8), CosBits>,
    /// Outgoing top label -> next hop.
    next_hops: HashMap<Option<u32>, Hop>,
    /// Unlabeled routes, most specific first.
    ip_routes: Vec<(Prefix, Hop)>,
    /// Segment-routing ingress policies, most specific prefix first.
    sr_policies: Vec<SrPolicyEntry>,
    /// Equal-cost fan-out per outgoing top label (SR control plane).
    ecmp: HashMap<u32, Vec<NodeId>>,
    /// Readable label depth for the entropy scan.
    rld: usize,
}

impl RouterTables {
    /// Builds the tables from a control-plane node configuration.
    pub fn from_config(cfg: &NodeConfig) -> Self {
        let mut t = Self {
            rld: cfg.rld.map(usize::from).unwrap_or(usize::MAX),
            ..Self::default()
        };
        for fec in &cfg.fecs {
            t.ftn.insert(
                fec.prefix,
                LabelBinding::new(fec.push_label, mpls_dataplane::LabelOp::Push),
            );
            t.fec_cos.insert((fec.prefix.addr, fec.prefix.len), fec.cos);
        }
        for nh in &cfg.next_hops {
            t.next_hops.insert(nh.label.map(Label::value), nh.next);
        }
        for r in &cfg.ip_routes {
            t.ip_routes.push((r.prefix, r.next));
        }
        t.ip_routes.sort_by_key(|r| std::cmp::Reverse(r.0.len));
        t.sr_policies = cfg.sr_policies.clone();
        t.sr_policies
            .sort_by_key(|p| std::cmp::Reverse(p.prefix.len));
        for e in &cfg.ecmp {
            t.ecmp.insert(e.label.value(), e.nexts.clone());
        }
        t
    }

    /// Classifies an unlabeled packet's destination: the FEC's first-hop
    /// label and CoS, if any LSP covers it.
    pub fn classify(&self, dst: u32) -> Option<(Label, CosBits)> {
        let (prefix, binding) = self.ftn.lookup(dst)?;
        let cos = self
            .fec_cos
            .get(&(prefix.addr, prefix.len))
            .copied()
            .unwrap_or(CosBits::BEST_EFFORT);
        Some((binding.new_label, cos))
    }

    /// Longest-prefix IP route for an unlabeled packet.
    pub fn ip_route(&self, dst: u32) -> Option<Hop> {
        self.ip_routes
            .iter()
            .find(|(p, _)| p.contains(dst))
            .map(|&(_, h)| h)
    }

    /// Next hop after the stack update, keyed by the new top label
    /// (`None` = unlabeled).
    pub fn next_hop(&self, top: Option<Label>) -> Option<Hop> {
        self.next_hops.get(&top.map(Label::value)).copied()
    }

    /// Resolves the post-update step shared by both routers: where does a
    /// packet whose stack now has `top` go, given its IP destination?
    pub fn resolve_egress(&self, top: Option<Label>, dst: u32) -> Result<Hop, DiscardCause> {
        if let Some(hop) = self.next_hop(top) {
            return Ok(hop);
        }
        if top.is_none() {
            // Popped to empty: fall through to IP routing.
            if let Some(hop) = self.ip_route(dst) {
                return Ok(hop);
            }
        }
        Err(DiscardCause::NoNextHop)
    }

    /// Longest-prefix segment-routing ingress policy for a destination.
    pub fn sr_classify(&self, dst: u32) -> Option<&SrPolicyEntry> {
        self.sr_policies.iter().find(|p| p.prefix.contains(dst))
    }

    /// This node's readable label depth (entropy scan window).
    pub fn rld(&self) -> usize {
        self.rld
    }

    /// Egress resolution with equal-cost fan-out: when the new top label
    /// has an ECMP entry with more than one member, the member is picked
    /// by hashing the entropy label — if one is readable within this
    /// node's RLD. Otherwise falls back to [`Self::resolve_egress`].
    ///
    /// `entries` is the post-update stack, top first.
    pub fn resolve_egress_on(
        &self,
        top: Option<Label>,
        dst: u32,
        entries: &[LabelStackEntry],
    ) -> (Result<Hop, DiscardCause>, SrPick) {
        if let Some(l) = top {
            if let Some(nexts) = self.ecmp.get(&l.value()) {
                if nexts.len() > 1 {
                    return match sr::find_entropy(entries, self.rld) {
                        EntropyScan::Found(el) => {
                            let next = nexts[sr::ecmp_index(el.value(), nexts.len())];
                            (Ok(Hop::Node(next)), SrPick::Ecmp)
                        }
                        EntropyScan::BeyondRld => (Ok(Hop::Node(nexts[0])), SrPick::RldViolation),
                        EntropyScan::Absent => (Ok(Hop::Node(nexts[0])), SrPick::Single),
                    };
                }
            }
        }
        (self.resolve_egress(top, dst), SrPick::Single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{BindingEntry, FecEntry, IpRoute, NextHopEntry};
    use mpls_dataplane::LabelOp;

    fn lbl(v: u32) -> Label {
        Label::new(v).unwrap()
    }

    fn sample_config() -> NodeConfig {
        NodeConfig {
            bindings: vec![BindingEntry {
                node: 1,
                level: 2,
                key: 40,
                new_label: lbl(41),
                op: LabelOp::Swap,
            }],
            next_hops: vec![NextHopEntry {
                node: 1,
                label: Some(lbl(41)),
                next: Hop::Node(2),
            }],
            fecs: vec![FecEntry {
                node: 1,
                prefix: Prefix::new(0x0a010000, 16),
                push_label: lbl(40),
                cos: CosBits::EXPEDITED,
            }],
            ip_routes: vec![IpRoute {
                node: 1,
                prefix: Prefix::new(0xc0a80100, 24),
                next: Hop::Local,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn classification_returns_label_and_cos() {
        let t = RouterTables::from_config(&sample_config());
        let (l, cos) = t.classify(0x0a01ffff).unwrap();
        assert_eq!(l, lbl(40));
        assert_eq!(cos, CosBits::EXPEDITED);
        assert!(t.classify(0x0b000000).is_none());
    }

    #[test]
    fn next_hop_and_ip_fallthrough() {
        let t = RouterTables::from_config(&sample_config());
        assert_eq!(t.resolve_egress(Some(lbl(41)), 0), Ok(Hop::Node(2)));
        // Unknown label: no fallthrough.
        assert_eq!(
            t.resolve_egress(Some(lbl(99)), 0xc0a80101),
            Err(DiscardCause::NoNextHop)
        );
        // Unlabeled: IP route applies.
        assert_eq!(t.resolve_egress(None, 0xc0a80101), Ok(Hop::Local));
        assert_eq!(
            t.resolve_egress(None, 0x0b000001),
            Err(DiscardCause::NoNextHop)
        );
    }
}
