//! The all-software MPLS router — the baseline architecture the paper's
//! hardware offload is motivated against.
//!
//! Label processing runs on `mpls-dataplane`'s forwarder; latency comes
//! from a calibrated cost model (a fixed per-packet overhead plus a
//! per-table-probe cost) rather than host wall-clock time, so network
//! simulations are deterministic and machine-independent. The defaults
//! approximate a mid-2000s software router to match the paper's era; the
//! benchmarks also measure real host time separately.

use crate::forwarding::{Action, DiscardCause, Forwarding, MplsForwarder, RouterStats};
use crate::pipeline::{RouterTables, SrPick};
use mpls_control::{Hop, NodeConfig, NodeId, RouterRole, SrPolicyEntry};
use mpls_dataplane::fib::FibLevel;
use mpls_dataplane::{Discard, LookupStrategy, ProcessResult, SoftwareForwarder, SwRouterType};
use mpls_packet::sr::{self, MnaNas};
use mpls_packet::{label::LabelStackEntry, CosBits, LabelStack, MplsPacket};
use serde::{Deserialize, Serialize};

/// The software data plane's latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwTimingModel {
    /// Fixed cost per packet (parse, classify, splice), in nanoseconds.
    pub per_packet_ns: u64,
    /// Cost per lookup probe (one key comparison), in nanoseconds.
    pub per_probe_ns: u64,
}

impl Default for SwTimingModel {
    fn default() -> Self {
        // Roughly a 1 GHz era CPU spending ~500 instructions of fixed
        // work per packet and ~35 ns per probe including cache effects.
        Self {
            per_packet_ns: 500,
            per_probe_ns: 35,
        }
    }
}

fn to_cause(d: Discard) -> DiscardCause {
    match d {
        Discard::NoEntryFound => DiscardCause::NoEntryFound,
        Discard::TtlExpired => DiscardCause::TtlExpired,
        Discard::InconsistentOperation => DiscardCause::InconsistentOperation,
    }
}

/// A software MPLS router over a pluggable lookup strategy.
#[derive(Debug, Clone)]
pub struct SoftwareRouter<S: LookupStrategy> {
    node: NodeId,
    rtype: SwRouterType,
    forwarder: SoftwareForwarder<S>,
    tables: RouterTables,
    timing: SwTimingModel,
    stats: RouterStats,
    last_probes: u64,
    /// Whether reprogrammed forwarders get a (fresh, empty) flow cache.
    use_cache: bool,
}

/// Loads a fresh FIB from a node configuration. Building a new forwarder
/// is also how the router is *reprogrammed*, so any flow cache dies here
/// with the bindings it memoized — withdraw/release, fault rewrites and
/// LSP retirement all invalidate by construction.
fn load_fib<S: LookupStrategy>(
    rtype: SwRouterType,
    config: &NodeConfig,
    use_cache: bool,
) -> SoftwareForwarder<S> {
    let mut forwarder = SoftwareForwarder::new(rtype);
    if use_cache {
        forwarder = forwarder.with_flow_cache();
    }
    for b in &config.bindings {
        let level = match b.level {
            1 => FibLevel::L1,
            2 => FibLevel::L2,
            _ => FibLevel::L3,
        };
        let op = b.op;
        forwarder.bind(level, b.key, b.new_label, op);
    }
    forwarder
}

impl<S: LookupStrategy> SoftwareRouter<S> {
    /// Builds a router for `node` with `role`, loading the FIB from the
    /// control plane's `config`.
    pub fn new(node: NodeId, role: RouterRole, config: &NodeConfig, timing: SwTimingModel) -> Self {
        Self::with_options(node, role, config, timing, false)
    }

    /// [`Self::new`] with the per-ingress flow cache switched on or off.
    pub fn with_options(
        node: NodeId,
        role: RouterRole,
        config: &NodeConfig,
        timing: SwTimingModel,
        use_cache: bool,
    ) -> Self {
        let rtype = match role {
            RouterRole::Ler => SwRouterType::Ler,
            RouterRole::Lsr => SwRouterType::Lsr,
        };
        Self {
            node,
            rtype,
            forwarder: load_fib(rtype, config, use_cache),
            tables: RouterTables::from_config(config),
            timing,
            stats: RouterStats::default(),
            last_probes: 0,
            use_cache,
        }
    }

    /// The underlying forwarder.
    pub fn forwarder(&self) -> &SoftwareForwarder<S> {
        &self.forwarder
    }

    fn finish(&mut self, probes: u64, action: Action) -> Forwarding {
        let latency_ns = self.timing.per_packet_ns + probes * self.timing.per_probe_ns;
        self.stats.total_latency_ns += latency_ns;
        match &action {
            Action::Forward { .. } => self.stats.forwarded += 1,
            Action::Deliver(_) => self.stats.delivered += 1,
            Action::Discard(cause) => {
                self.stats.discarded += 1;
                self.stats.by_cause.record(*cause);
            }
        }
        Forwarding { action, latency_ns }
    }

    fn note_pick(&mut self, pick: SrPick) {
        match pick {
            SrPick::Ecmp => self.stats.ecmp_decisions += 1,
            SrPick::RldViolation => self.stats.rld_violations += 1,
            SrPick::Single => {}
        }
    }

    /// Segment-routing ingress: assembles the full source-route stack in
    /// one pass — transport SIDs on top, then the optional MNA sub-stack,
    /// then the optional entropy pair at the bottom — and resolves the
    /// first hop (possibly over an ECMP fan-out).
    fn sr_ingress(&mut self, mut packet: MplsPacket, policy: &SrPolicyEntry) -> Forwarding {
        if packet.ip.ttl == 0 {
            return self.finish(1, Action::Discard(DiscardCause::TtlExpired));
        }
        let (cos, ttl) = (policy.cos, packet.ip.ttl);
        let mut entries: Vec<LabelStackEntry> = policy
            .sids
            .iter()
            .map(|&sid| LabelStackEntry::new(sid, cos, false, ttl))
            .collect();
        if policy.mna {
            // The one in-stack action carried here attests the transport
            // segment count; the ancillary LSE carries that count as data.
            let nas = MnaNas::new(1, policy.sids.len() as u32).expect("opcode 1 is in range");
            entries.extend(nas.entries(cos, ttl));
        }
        if policy.entropy {
            let el = sr::entropy_label(packet.ip.src, packet.ip.dst);
            entries.extend(sr::entropy_entries(el, cos, ttl));
        }
        let depth = entries.len() as u64;
        let Ok(stack) = LabelStack::from_entries(&entries) else {
            return self.finish(1, Action::Discard(DiscardCause::InconsistentOperation));
        };
        packet.splice_stack(stack);
        self.stats.peak_stack_depth = self.stats.peak_stack_depth.max(depth);
        let dst = packet.ip.dst;
        let top = packet.stack.top().map(|e| e.label);
        let (res, pick) = self
            .tables
            .resolve_egress_on(top, dst, packet.stack.entries());
        self.note_pick(pick);
        match res {
            Ok(Hop::Node(next)) => self.finish(depth + 1, Action::Forward { next, packet }),
            Ok(Hop::Local) => self.finish(depth + 1, Action::Deliver(packet)),
            Err(cause) => self.finish(depth + 1, Action::Discard(cause)),
        }
    }
}

impl<S: LookupStrategy> MplsForwarder for SoftwareRouter<S> {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn handle(&mut self, packet: MplsPacket) -> Forwarding {
        self.handle_on_port(packet, 0)
    }

    fn handle_on_port(&mut self, mut packet: MplsPacket, port: u64) -> Forwarding {
        self.stats.packets_in += 1;
        self.stats.peak_stack_depth = self
            .stats
            .peak_stack_depth
            .max(packet.stack.entries().len() as u64);
        let dst = packet.ip.dst;

        if packet.stack.is_empty() {
            match self.tables.ip_route(dst) {
                Some(Hop::Local) => return self.finish(1, Action::Deliver(packet)),
                Some(Hop::Node(next)) => return self.finish(1, Action::Forward { next, packet }),
                None => {}
            }
            // Segment-routing ingress builds the whole source route in one
            // go, bypassing the single-op label forwarder.
            if let Some(policy) = self.tables.sr_classify(dst) {
                let policy = policy.clone();
                return self.sr_ingress(packet, &policy);
            }
            // Software ingress classifies by longest-prefix match
            // directly — no exact-match flow cache needed.
            let Some((push_label, cos)) = self.tables.classify(dst) else {
                return self.finish(1, Action::Discard(DiscardCause::NoRoute));
            };
            if packet.ip.ttl == 0 {
                return self.finish(1, Action::Discard(DiscardCause::TtlExpired));
            }
            let mut stack = packet.stack.clone();
            stack
                .push(LabelStackEntry::new(push_label, cos, false, packet.ip.ttl))
                .expect("empty stack");
            packet.splice_stack(stack);
            let top = packet.stack.top().map(|e| e.label);
            return match self.tables.resolve_egress(top, dst) {
                Ok(Hop::Node(next)) => self.finish(2, Action::Forward { next, packet }),
                Ok(Hop::Local) => self.finish(2, Action::Deliver(packet)),
                Err(cause) => self.finish(2, Action::Discard(cause)),
            };
        }

        // Labeled path: run the forwarder and charge its probes.
        let mut stack = packet.stack.clone();
        let before = self.forwarder.total_probes();
        let result = self.forwarder.process_on_port(
            &mut stack,
            dst,
            CosBits::BEST_EFFORT,
            packet.ip.ttl,
            port,
        );
        self.last_probes = self.forwarder.total_probes() - before;
        let probes = self.last_probes;
        match result {
            ProcessResult::Discarded(d) => self.finish(probes, Action::Discard(to_cause(d))),
            ProcessResult::Updated { .. } => {
                packet.splice_stack(stack);
                let top = packet.stack.top().map(|e| e.label);
                // Metadata exposed at the top means the last transport
                // segment ended here: strip the sub-stack (ELI/EL and the
                // MNA LSEs are meaningless past the final endpoint) and
                // route the bare packet by IP.
                if top.is_some_and(sr::is_metadata_indicator) {
                    packet.splice_stack(LabelStack::new());
                    return match self.tables.resolve_egress(None, dst) {
                        Ok(Hop::Node(next)) => {
                            self.finish(probes + 1, Action::Forward { next, packet })
                        }
                        Ok(Hop::Local) => self.finish(probes + 1, Action::Deliver(packet)),
                        Err(cause) => self.finish(probes + 1, Action::Discard(cause)),
                    };
                }
                let (res, pick) = self
                    .tables
                    .resolve_egress_on(top, dst, packet.stack.entries());
                self.note_pick(pick);
                match res {
                    Ok(Hop::Node(next)) => {
                        self.finish(probes + 1, Action::Forward { next, packet })
                    }
                    Ok(Hop::Local) => self.finish(probes + 1, Action::Deliver(packet)),
                    Err(cause) => self.finish(probes + 1, Action::Discard(cause)),
                }
            }
        }
    }

    fn stats(&self) -> RouterStats {
        // `self.stats` holds the totals of forwarders retired by
        // reprogram; add the live forwarder's share on top.
        let mut stats = self.stats;
        stats.fib_lookups += self.forwarder.fib_lookups();
        if let Some((hits, misses)) = self.forwarder.cache_stats() {
            stats.cache_hits += hits;
            stats.cache_misses += misses;
        }
        stats
    }

    fn reprogram(&mut self, config: &NodeConfig) {
        // Carry the fast-path diagnostics of the forwarder being retired
        // into the sticky stats (the serialized counters already live
        // there; these are the non-serialized ones).
        self.stats.fib_lookups += self.forwarder.fib_lookups();
        if let Some((hits, misses)) = self.forwarder.cache_stats() {
            self.stats.cache_hits += hits;
            self.stats.cache_misses += misses;
        }
        self.forwarder = load_fib(self.rtype, config, self.use_cache);
        self.tables = RouterTables::from_config(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpls_control::{ControlPlane, LspRequest, Topology};
    use mpls_dataplane::ftn::Prefix;
    use mpls_dataplane::HashTable;
    use mpls_packet::ipv4::parse_addr;
    use mpls_packet::{EtherType, EthernetFrame, Ipv4Header, LabelStack, MacAddr};

    fn packet_to_ttl(dst: &str, ttl: u8) -> MplsPacket {
        MplsPacket::ipv4(
            EthernetFrame {
                dst: MacAddr::from_node(0, 0),
                src: MacAddr::from_node(9, 0),
                ethertype: EtherType::Ipv4,
            },
            Ipv4Header::new(
                parse_addr("10.9.0.1").unwrap(),
                parse_addr(dst).unwrap(),
                Ipv4Header::PROTO_UDP,
                ttl,
                16,
            ),
            bytes::Bytes::from_static(&[0u8; 16]),
        )
    }

    fn packet_to(dst: &str) -> MplsPacket {
        packet_to_ttl(dst, 64)
    }

    fn setup() -> (ControlPlane, u32) {
        let mut cp = ControlPlane::new(Topology::figure1_example());
        let id = cp
            .establish_lsp(LspRequest::best_effort(
                0,
                1,
                Prefix::new(parse_addr("192.168.1.0").unwrap(), 24),
            ))
            .unwrap();
        (cp, id)
    }

    #[test]
    fn full_path_ingress_transit_egress() {
        let (cp, id) = setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut ingress: SoftwareRouter<HashTable> = SoftwareRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            SwTimingModel::default(),
        );
        let out = ingress.handle(packet_to("192.168.1.5"));
        let Action::Forward { next, packet } = out.action else {
            panic!("expected forward");
        };
        assert_eq!(next, 2);
        assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[0]);

        let mut transit: SoftwareRouter<HashTable> = SoftwareRouter::new(
            2,
            RouterRole::Lsr,
            &cp.config_for(2),
            SwTimingModel::default(),
        );
        let out = transit.handle(packet);
        let Action::Forward { next, packet } = out.action else {
            panic!("expected forward");
        };
        assert_eq!(next, 3);
        assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[1]);
        assert_eq!(packet.stack.top().unwrap().ttl, 63);
    }

    #[test]
    fn latency_model_charges_probes() {
        let (cp, id) = setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let timing = SwTimingModel {
            per_packet_ns: 100,
            per_probe_ns: 10,
        };
        let mut transit: SoftwareRouter<HashTable> =
            SoftwareRouter::new(2, RouterRole::Lsr, &cp.config_for(2), timing);
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(lsp.hop_labels[0], CosBits::BEST_EFFORT, 63)
            .unwrap();
        p.splice_stack(s);
        let out = transit.handle(p);
        // 1 hash probe + 1 next-hop resolution = 2 probes on top of fixed.
        assert_eq!(out.latency_ns, 100 + 2 * 10);
    }

    #[test]
    fn discards_match_hardware_reasons() {
        let (cp, _) = setup();
        let mut transit: SoftwareRouter<HashTable> = SoftwareRouter::new(
            2,
            RouterRole::Lsr,
            &cp.config_for(2),
            SwTimingModel::default(),
        );
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(
            mpls_packet::Label::new(4242).unwrap(),
            CosBits::BEST_EFFORT,
            63,
        )
        .unwrap();
        p.splice_stack(s);
        assert_eq!(
            transit.handle(p).action,
            Action::Discard(DiscardCause::NoEntryFound)
        );

        let out = transit.handle(packet_to("172.16.0.9"));
        assert_eq!(out.action, Action::Discard(DiscardCause::NoRoute));
    }

    #[test]
    fn ingress_ttl_edges_match_the_embedded_model() {
        // TTL 0 dies before the push (after classification, so NoRoute
        // still wins for unroutable packets); TTL 1 pushes and survives
        // to die at the next hop — identical to the embedded router.
        let (cp, id) = setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut ingress: SoftwareRouter<HashTable> = SoftwareRouter::new(
            0,
            RouterRole::Ler,
            &cp.config_for(0),
            SwTimingModel::default(),
        );
        assert_eq!(
            ingress.handle(packet_to_ttl("192.168.1.5", 0)).action,
            Action::Discard(DiscardCause::TtlExpired)
        );
        let out = ingress.handle(packet_to_ttl("192.168.1.5", 1));
        match out.action {
            Action::Forward { packet, .. } => {
                assert_eq!(packet.stack.top().unwrap().label, lsp.hop_labels[0]);
                assert_eq!(packet.stack.top().unwrap().ttl, 1);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn fast_path_reports_the_same_decisions_and_latency() {
        // The SoftwareFast configuration (HashFib + flow cache) must be
        // observably identical to the linear router, per packet: same
        // actions, same latencies. Only the non-serialized diagnostics
        // tell them apart.
        let (cp, id) = setup();
        let timing = SwTimingModel::default();
        let mut linear: SoftwareRouter<mpls_dataplane::LinearTable> =
            SoftwareRouter::new(2, RouterRole::Lsr, &cp.config_for(2), timing);
        let mut fast: SoftwareRouter<mpls_dataplane::HashFib> =
            SoftwareRouter::with_options(2, RouterRole::Lsr, &cp.config_for(2), timing, true);
        let lsp0 = cp.lsp(id).unwrap().clone();
        for _ in 0..4 {
            let mut p = packet_to("192.168.1.5");
            let mut s = LabelStack::new();
            s.push_parts(lsp0.hop_labels[0], CosBits::BEST_EFFORT, 63)
                .unwrap();
            p.splice_stack(s);
            let mut q = p.clone();
            q.splice_stack(p.stack.clone());
            let a = linear.handle(p);
            let b = fast.handle(q);
            assert_eq!(a, b);
        }
        let (ls, fs) = (linear.stats(), fast.stats());
        assert_eq!(ls.total_latency_ns, fs.total_latency_ns);
        assert_eq!(ls.forwarded, fs.forwarded);
        assert!(fs.cache_hits > 0, "repeat packets hit the flow cache");
        assert!(
            fs.fib_lookups < ls.fib_lookups || ls.fib_lookups == 0,
            "the cache absorbs repeat lookups"
        );
    }

    #[test]
    fn reprogram_structurally_drops_the_flow_cache() {
        // An SR recompile (or any control-plane rewrite) downloads fresh
        // state through `reprogram`, which rebuilds the forwarder — and
        // with it the flow cache. This pins that: a memoized binding for
        // a route the new configuration no longer carries must be
        // unreachable afterwards, never served stale.
        let (cp, id) = setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let timing = SwTimingModel::default();
        let mut transit: SoftwareRouter<mpls_dataplane::HashFib> =
            SoftwareRouter::with_options(2, RouterRole::Lsr, &cp.config_for(2), timing, true);
        let labeled = || {
            let mut p = packet_to("192.168.1.5");
            let mut s = LabelStack::new();
            s.push_parts(lsp.hop_labels[0], CosBits::BEST_EFFORT, 63)
                .unwrap();
            p.splice_stack(s);
            p
        };
        // Warm the cache: first packet misses, the repeat hits.
        assert!(matches!(
            transit.handle(labeled()).action,
            Action::Forward { next: 3, .. }
        ));
        assert!(matches!(
            transit.handle(labeled()).action,
            Action::Forward { next: 3, .. }
        ));
        let (hits, misses) = transit.forwarder().cache_stats().unwrap();
        assert!(
            hits >= 1 && misses >= 1,
            "cache must be warm ({hits}/{misses})"
        );

        // The LSP is retired: reprogram from a control plane that never
        // signaled it. The label's old next hop (3) is dead state now.
        let bare = ControlPlane::new(Topology::figure1_example());
        transit.reprogram(&bare.config_for(2));

        // A stale cache entry would still forward to 3; the rebuilt
        // forwarder must consult the new FIB and find nothing.
        assert_eq!(
            transit.handle(labeled()).action,
            Action::Discard(DiscardCause::NoEntryFound)
        );
        let (h2, _) = transit.forwarder().cache_stats().unwrap();
        assert_eq!(h2, 0, "the post-reprogram cache must start cold");
        // The retired forwarder's diagnostics fold into the sticky stats.
        let s = transit.stats();
        assert!(s.cache_hits >= hits && s.cache_misses >= misses);
    }

    #[test]
    fn egress_delivers_unlabeled() {
        let (cp, id) = setup();
        let lsp = cp.lsp(id).unwrap().clone();
        let mut egress: SoftwareRouter<HashTable> = SoftwareRouter::new(
            1,
            RouterRole::Ler,
            &cp.config_for(1),
            SwTimingModel::default(),
        );
        let mut p = packet_to("192.168.1.5");
        let mut s = LabelStack::new();
        s.push_parts(lsp.hop_labels[2], CosBits::BEST_EFFORT, 61)
            .unwrap();
        p.splice_stack(s);
        let out = egress.handle(p);
        assert!(matches!(out.action, Action::Deliver(p) if p.stack.is_empty()));
    }
}
