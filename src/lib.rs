#![warn(missing_docs)]
//! Workspace root crate.
//!
//! Exists to host the repository-level `examples/` (quickstart,
//! lsp_tunnel, voip_qos, waveforms, failover) and the cross-crate
//! integration tests in `tests/` (hardware/software differential,
//! end-to-end LSP walks, tunnels, failover, policing, simulation
//! invariants, grid stress). The actual library surface lives in the
//! `crates/*` members; see the README for the map.
