/root/repo/target/debug/libbytes.rlib: /root/repo/vendor/bytes/src/lib.rs /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
