/root/repo/target/debug/examples/voip_qos-76fe00eefc45bb78.d: examples/voip_qos.rs

/root/repo/target/debug/examples/voip_qos-76fe00eefc45bb78: examples/voip_qos.rs

examples/voip_qos.rs:
