/root/repo/target/debug/examples/voip_qos-8b2e8589e6188da1.d: examples/voip_qos.rs Cargo.toml

/root/repo/target/debug/examples/libvoip_qos-8b2e8589e6188da1.rmeta: examples/voip_qos.rs Cargo.toml

examples/voip_qos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
