/root/repo/target/debug/examples/failover-5912fdf6c4afb79f.d: examples/failover.rs

/root/repo/target/debug/examples/failover-5912fdf6c4afb79f: examples/failover.rs

examples/failover.rs:
