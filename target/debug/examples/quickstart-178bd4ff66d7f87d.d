/root/repo/target/debug/examples/quickstart-178bd4ff66d7f87d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-178bd4ff66d7f87d: examples/quickstart.rs

examples/quickstart.rs:
