/root/repo/target/debug/examples/lsp_tunnel-608e19d68f2cb5b8.d: examples/lsp_tunnel.rs

/root/repo/target/debug/examples/lsp_tunnel-608e19d68f2cb5b8: examples/lsp_tunnel.rs

examples/lsp_tunnel.rs:
