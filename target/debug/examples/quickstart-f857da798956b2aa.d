/root/repo/target/debug/examples/quickstart-f857da798956b2aa.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f857da798956b2aa: examples/quickstart.rs

examples/quickstart.rs:
