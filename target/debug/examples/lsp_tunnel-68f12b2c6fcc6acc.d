/root/repo/target/debug/examples/lsp_tunnel-68f12b2c6fcc6acc.d: examples/lsp_tunnel.rs Cargo.toml

/root/repo/target/debug/examples/liblsp_tunnel-68f12b2c6fcc6acc.rmeta: examples/lsp_tunnel.rs Cargo.toml

examples/lsp_tunnel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
