/root/repo/target/debug/examples/waveforms-468bc895926e0cea.d: examples/waveforms.rs Cargo.toml

/root/repo/target/debug/examples/libwaveforms-468bc895926e0cea.rmeta: examples/waveforms.rs Cargo.toml

examples/waveforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
