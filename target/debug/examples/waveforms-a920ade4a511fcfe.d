/root/repo/target/debug/examples/waveforms-a920ade4a511fcfe.d: examples/waveforms.rs

/root/repo/target/debug/examples/waveforms-a920ade4a511fcfe: examples/waveforms.rs

examples/waveforms.rs:
