/root/repo/target/debug/examples/waveforms-df7c6c2158af0a5c.d: examples/waveforms.rs

/root/repo/target/debug/examples/waveforms-df7c6c2158af0a5c: examples/waveforms.rs

examples/waveforms.rs:
