/root/repo/target/debug/examples/lsp_tunnel-5820ca85af1f0ff3.d: examples/lsp_tunnel.rs

/root/repo/target/debug/examples/lsp_tunnel-5820ca85af1f0ff3: examples/lsp_tunnel.rs

examples/lsp_tunnel.rs:
