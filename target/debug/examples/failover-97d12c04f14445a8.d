/root/repo/target/debug/examples/failover-97d12c04f14445a8.d: examples/failover.rs

/root/repo/target/debug/examples/failover-97d12c04f14445a8: examples/failover.rs

examples/failover.rs:
