/root/repo/target/debug/examples/waveforms-93828a310c5b2469.d: examples/waveforms.rs

/root/repo/target/debug/examples/waveforms-93828a310c5b2469: examples/waveforms.rs

examples/waveforms.rs:
