/root/repo/target/debug/examples/quickstart-96d5c97eb6e0d6e4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-96d5c97eb6e0d6e4: examples/quickstart.rs

examples/quickstart.rs:
