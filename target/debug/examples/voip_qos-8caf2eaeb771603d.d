/root/repo/target/debug/examples/voip_qos-8caf2eaeb771603d.d: examples/voip_qos.rs

/root/repo/target/debug/examples/voip_qos-8caf2eaeb771603d: examples/voip_qos.rs

examples/voip_qos.rs:
