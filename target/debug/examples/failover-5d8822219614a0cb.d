/root/repo/target/debug/examples/failover-5d8822219614a0cb.d: examples/failover.rs

/root/repo/target/debug/examples/failover-5d8822219614a0cb: examples/failover.rs

examples/failover.rs:
