/root/repo/target/debug/examples/lsp_tunnel-f2f4cfc4c8655061.d: examples/lsp_tunnel.rs

/root/repo/target/debug/examples/lsp_tunnel-f2f4cfc4c8655061: examples/lsp_tunnel.rs

examples/lsp_tunnel.rs:
