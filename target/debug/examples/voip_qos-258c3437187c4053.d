/root/repo/target/debug/examples/voip_qos-258c3437187c4053.d: examples/voip_qos.rs

/root/repo/target/debug/examples/voip_qos-258c3437187c4053: examples/voip_qos.rs

examples/voip_qos.rs:
