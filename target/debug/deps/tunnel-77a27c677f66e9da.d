/root/repo/target/debug/deps/tunnel-77a27c677f66e9da.d: tests/tunnel.rs Cargo.toml

/root/repo/target/debug/deps/libtunnel-77a27c677f66e9da.rmeta: tests/tunnel.rs Cargo.toml

tests/tunnel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
