/root/repo/target/debug/deps/end_to_end-7fd48d40d5b26823.d: crates/bench/src/bin/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7fd48d40d5b26823: crates/bench/src/bin/end_to_end.rs

crates/bench/src/bin/end_to_end.rs:
