/root/repo/target/debug/deps/fig14_level1-c30c61b8573b42cd.d: crates/bench/src/bin/fig14_level1.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_level1-c30c61b8573b42cd.rmeta: crates/bench/src/bin/fig14_level1.rs Cargo.toml

crates/bench/src/bin/fig14_level1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
