/root/repo/target/debug/deps/policing-1b31d6065b6e0e15.d: tests/policing.rs Cargo.toml

/root/repo/target/debug/deps/libpolicing-1b31d6065b6e0e15.rmeta: tests/policing.rs Cargo.toml

tests/policing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
