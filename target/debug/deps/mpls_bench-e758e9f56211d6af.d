/root/repo/target/debug/deps/mpls_bench-e758e9f56211d6af.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/mpls_bench-e758e9f56211d6af: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
