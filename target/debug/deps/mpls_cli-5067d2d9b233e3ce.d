/root/repo/target/debug/deps/mpls_cli-5067d2d9b233e3ce.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_cli-5067d2d9b233e3ce: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
crates/cli/src/../scenarios/example.json:
