/root/repo/target/debug/deps/stack_ops-d3d03b6c76b56c15.d: crates/bench/benches/stack_ops.rs Cargo.toml

/root/repo/target/debug/deps/libstack_ops-d3d03b6c76b56c15.rmeta: crates/bench/benches/stack_ops.rs Cargo.toml

crates/bench/benches/stack_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
