/root/repo/target/debug/deps/mpls_rtl-5dc6e0bddfcd8df7.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/mpls_rtl-5dc6e0bddfcd8df7: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
