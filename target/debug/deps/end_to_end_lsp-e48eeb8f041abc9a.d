/root/repo/target/debug/deps/end_to_end_lsp-e48eeb8f041abc9a.d: tests/end_to_end_lsp.rs

/root/repo/target/debug/deps/end_to_end_lsp-e48eeb8f041abc9a: tests/end_to_end_lsp.rs

tests/end_to_end_lsp.rs:
