/root/repo/target/debug/deps/end_to_end_lsp-bd1c8c3bc764714f.d: tests/end_to_end_lsp.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_lsp-bd1c8c3bc764714f.rmeta: tests/end_to_end_lsp.rs Cargo.toml

tests/end_to_end_lsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
