/root/repo/target/debug/deps/fig14_level1-4b34fc16f5475813.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/debug/deps/fig14_level1-4b34fc16f5475813: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
