/root/repo/target/debug/deps/vcd_roundtrip-dad3cf19a12b8333.d: crates/rtl/tests/vcd_roundtrip.rs

/root/repo/target/debug/deps/vcd_roundtrip-dad3cf19a12b8333: crates/rtl/tests/vcd_roundtrip.rs

crates/rtl/tests/vcd_roundtrip.rs:
