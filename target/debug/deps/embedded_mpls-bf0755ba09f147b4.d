/root/repo/target/debug/deps/embedded_mpls-bf0755ba09f147b4.d: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-bf0755ba09f147b4.rlib: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-bf0755ba09f147b4.rmeta: src/lib.rs

src/lib.rs:
