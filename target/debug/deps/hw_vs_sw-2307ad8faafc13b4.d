/root/repo/target/debug/deps/hw_vs_sw-2307ad8faafc13b4.d: crates/bench/benches/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-2307ad8faafc13b4: crates/bench/benches/hw_vs_sw.rs

crates/bench/benches/hw_vs_sw.rs:
