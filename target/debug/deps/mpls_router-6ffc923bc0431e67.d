/root/repo/target/debug/deps/mpls_router-6ffc923bc0431e67.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/mpls_router-6ffc923bc0431e67: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
