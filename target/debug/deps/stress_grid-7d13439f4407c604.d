/root/repo/target/debug/deps/stress_grid-7d13439f4407c604.d: tests/stress_grid.rs

/root/repo/target/debug/deps/stress_grid-7d13439f4407c604: tests/stress_grid.rs

tests/stress_grid.rs:
