/root/repo/target/debug/deps/end_to_end-6e86056c8a3f5e36.d: crates/bench/src/bin/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-6e86056c8a3f5e36.rmeta: crates/bench/src/bin/end_to_end.rs Cargo.toml

crates/bench/src/bin/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
