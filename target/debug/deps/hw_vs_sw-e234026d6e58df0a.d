/root/repo/target/debug/deps/hw_vs_sw-e234026d6e58df0a.d: crates/bench/src/bin/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-e234026d6e58df0a: crates/bench/src/bin/hw_vs_sw.rs

crates/bench/src/bin/hw_vs_sw.rs:
