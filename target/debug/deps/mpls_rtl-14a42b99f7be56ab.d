/root/repo/target/debug/deps/mpls_rtl-14a42b99f7be56ab.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/mpls_rtl-14a42b99f7be56ab: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
