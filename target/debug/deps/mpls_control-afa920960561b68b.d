/root/repo/target/debug/deps/mpls_control-afa920960561b68b.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_control-afa920960561b68b.rmeta: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs Cargo.toml

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
