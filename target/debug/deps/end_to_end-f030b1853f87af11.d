/root/repo/target/debug/deps/end_to_end-f030b1853f87af11.d: crates/bench/src/bin/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f030b1853f87af11: crates/bench/src/bin/end_to_end.rs

crates/bench/src/bin/end_to_end.rs:
