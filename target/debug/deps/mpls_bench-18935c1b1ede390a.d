/root/repo/target/debug/deps/mpls_bench-18935c1b1ede390a.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_bench-18935c1b1ede390a.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
