/root/repo/target/debug/deps/rfc3032_properties-bd41dfa25753af76.d: crates/packet/tests/rfc3032_properties.rs Cargo.toml

/root/repo/target/debug/deps/librfc3032_properties-bd41dfa25753af76.rmeta: crates/packet/tests/rfc3032_properties.rs Cargo.toml

crates/packet/tests/rfc3032_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
