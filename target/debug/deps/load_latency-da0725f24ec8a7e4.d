/root/repo/target/debug/deps/load_latency-da0725f24ec8a7e4.d: crates/bench/src/bin/load_latency.rs

/root/repo/target/debug/deps/load_latency-da0725f24ec8a7e4: crates/bench/src/bin/load_latency.rs

crates/bench/src/bin/load_latency.rs:
