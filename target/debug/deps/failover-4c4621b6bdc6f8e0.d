/root/repo/target/debug/deps/failover-4c4621b6bdc6f8e0.d: crates/bench/src/bin/failover.rs

/root/repo/target/debug/deps/failover-4c4621b6bdc6f8e0: crates/bench/src/bin/failover.rs

crates/bench/src/bin/failover.rs:
