/root/repo/target/debug/deps/red_vs_taildrop-17905a456cbb6017.d: crates/bench/src/bin/red_vs_taildrop.rs Cargo.toml

/root/repo/target/debug/deps/libred_vs_taildrop-17905a456cbb6017.rmeta: crates/bench/src/bin/red_vs_taildrop.rs Cargo.toml

crates/bench/src/bin/red_vs_taildrop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
