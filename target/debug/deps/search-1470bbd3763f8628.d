/root/repo/target/debug/deps/search-1470bbd3763f8628.d: crates/bench/benches/search.rs

/root/repo/target/debug/deps/search-1470bbd3763f8628: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
