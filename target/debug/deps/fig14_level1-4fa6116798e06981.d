/root/repo/target/debug/deps/fig14_level1-4fa6116798e06981.d: crates/bench/src/bin/fig14_level1.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_level1-4fa6116798e06981.rmeta: crates/bench/src/bin/fig14_level1.rs Cargo.toml

crates/bench/src/bin/fig14_level1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
