/root/repo/target/debug/deps/ablation-36e89ea769f5c101.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-36e89ea769f5c101: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
