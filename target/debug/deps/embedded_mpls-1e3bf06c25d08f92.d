/root/repo/target/debug/deps/embedded_mpls-1e3bf06c25d08f92.d: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-1e3bf06c25d08f92.rlib: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-1e3bf06c25d08f92.rmeta: src/lib.rs

src/lib.rs:
