/root/repo/target/debug/deps/failover-463f787badf91b5a.d: crates/bench/src/bin/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-463f787badf91b5a.rmeta: crates/bench/src/bin/failover.rs Cargo.toml

crates/bench/src/bin/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
