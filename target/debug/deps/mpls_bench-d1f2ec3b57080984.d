/root/repo/target/debug/deps/mpls_bench-d1f2ec3b57080984.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-d1f2ec3b57080984.rlib: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-d1f2ec3b57080984.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
