/root/repo/target/debug/deps/qos_te-e7a67dcac56268fa.d: crates/bench/src/bin/qos_te.rs Cargo.toml

/root/repo/target/debug/deps/libqos_te-e7a67dcac56268fa.rmeta: crates/bench/src/bin/qos_te.rs Cargo.toml

crates/bench/src/bin/qos_te.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
