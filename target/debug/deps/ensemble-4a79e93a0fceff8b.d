/root/repo/target/debug/deps/ensemble-4a79e93a0fceff8b.d: crates/bench/src/bin/ensemble.rs

/root/repo/target/debug/deps/ensemble-4a79e93a0fceff8b: crates/bench/src/bin/ensemble.rs

crates/bench/src/bin/ensemble.rs:
