/root/repo/target/debug/deps/mpls_router-233140372d62e304.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/mpls_router-233140372d62e304: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
