/root/repo/target/debug/deps/failover-bf3e88659765e2a2.d: crates/bench/src/bin/failover.rs

/root/repo/target/debug/deps/failover-bf3e88659765e2a2: crates/bench/src/bin/failover.rs

crates/bench/src/bin/failover.rs:
