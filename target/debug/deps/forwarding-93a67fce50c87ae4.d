/root/repo/target/debug/deps/forwarding-93a67fce50c87ae4.d: crates/bench/benches/forwarding.rs

/root/repo/target/debug/deps/forwarding-93a67fce50c87ae4: crates/bench/benches/forwarding.rs

crates/bench/benches/forwarding.rs:
