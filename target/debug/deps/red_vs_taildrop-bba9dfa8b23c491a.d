/root/repo/target/debug/deps/red_vs_taildrop-bba9dfa8b23c491a.d: crates/bench/src/bin/red_vs_taildrop.rs

/root/repo/target/debug/deps/red_vs_taildrop-bba9dfa8b23c491a: crates/bench/src/bin/red_vs_taildrop.rs

crates/bench/src/bin/red_vs_taildrop.rs:
