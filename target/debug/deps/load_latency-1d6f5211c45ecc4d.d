/root/repo/target/debug/deps/load_latency-1d6f5211c45ecc4d.d: crates/bench/src/bin/load_latency.rs

/root/repo/target/debug/deps/load_latency-1d6f5211c45ecc4d: crates/bench/src/bin/load_latency.rs

crates/bench/src/bin/load_latency.rs:
