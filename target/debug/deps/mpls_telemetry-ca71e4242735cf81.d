/root/repo/target/debug/deps/mpls_telemetry-ca71e4242735cf81.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

/root/repo/target/debug/deps/libmpls_telemetry-ca71e4242735cf81.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

/root/repo/target/debug/deps/libmpls_telemetry-ca71e4242735cf81.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/instrument.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/tracer.rs:
