/root/repo/target/debug/deps/embedded_mpls-8d4dd457d5109073.d: src/lib.rs

/root/repo/target/debug/deps/embedded_mpls-8d4dd457d5109073: src/lib.rs

src/lib.rs:
