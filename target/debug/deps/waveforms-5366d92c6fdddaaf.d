/root/repo/target/debug/deps/waveforms-5366d92c6fdddaaf.d: crates/core/tests/waveforms.rs

/root/repo/target/debug/deps/waveforms-5366d92c6fdddaaf: crates/core/tests/waveforms.rs

crates/core/tests/waveforms.rs:
