/root/repo/target/debug/deps/stress_grid-81caef8ae89a292c.d: tests/stress_grid.rs Cargo.toml

/root/repo/target/debug/deps/libstress_grid-81caef8ae89a292c.rmeta: tests/stress_grid.rs Cargo.toml

tests/stress_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
