/root/repo/target/debug/deps/qos_te-2d3f6452392de812.d: crates/bench/src/bin/qos_te.rs Cargo.toml

/root/repo/target/debug/deps/libqos_te-2d3f6452392de812.rmeta: crates/bench/src/bin/qos_te.rs Cargo.toml

crates/bench/src/bin/qos_te.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
