/root/repo/target/debug/deps/mpls_control-b5e6ae3469e31131.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/libmpls_control-b5e6ae3469e31131.rlib: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/libmpls_control-b5e6ae3469e31131.rmeta: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
