/root/repo/target/debug/deps/hw_vs_sw-299383e75bef6f91.d: crates/bench/benches/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-299383e75bef6f91: crates/bench/benches/hw_vs_sw.rs

crates/bench/benches/hw_vs_sw.rs:
