/root/repo/target/debug/deps/mpls_net-c197df2441c8b891.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/debug/deps/libmpls_net-c197df2441c8b891.rlib: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/debug/deps/libmpls_net-c197df2441c8b891.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/histogram.rs:
crates/net/src/link.rs:
crates/net/src/policer.rs:
crates/net/src/queue.rs:
crates/net/src/sim.rs:
crates/net/src/stats.rs:
crates/net/src/traffic.rs:
