/root/repo/target/debug/deps/search-7400c844e9ac46b4.d: crates/bench/benches/search.rs

/root/repo/target/debug/deps/search-7400c844e9ac46b4: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
