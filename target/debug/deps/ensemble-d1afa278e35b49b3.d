/root/repo/target/debug/deps/ensemble-d1afa278e35b49b3.d: crates/bench/src/bin/ensemble.rs

/root/repo/target/debug/deps/ensemble-d1afa278e35b49b3: crates/bench/src/bin/ensemble.rs

crates/bench/src/bin/ensemble.rs:
