/root/repo/target/debug/deps/mpls_sim-789496d4ad1e32b4.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_sim-789496d4ad1e32b4: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
