/root/repo/target/debug/deps/mpls_router-1f4ba0baee818209.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-1f4ba0baee818209.rlib: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-1f4ba0baee818209.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
