/root/repo/target/debug/deps/behavior-e221e5ab64cac328.d: crates/core/tests/behavior.rs Cargo.toml

/root/repo/target/debug/deps/libbehavior-e221e5ab64cac328.rmeta: crates/core/tests/behavior.rs Cargo.toml

crates/core/tests/behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
