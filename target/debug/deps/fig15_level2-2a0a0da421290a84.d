/root/repo/target/debug/deps/fig15_level2-2a0a0da421290a84.d: crates/bench/src/bin/fig15_level2.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_level2-2a0a0da421290a84.rmeta: crates/bench/src/bin/fig15_level2.rs Cargo.toml

crates/bench/src/bin/fig15_level2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
