/root/repo/target/debug/deps/ensemble-ee73e723bdac38da.d: crates/bench/src/bin/ensemble.rs

/root/repo/target/debug/deps/ensemble-ee73e723bdac38da: crates/bench/src/bin/ensemble.rs

crates/bench/src/bin/ensemble.rs:
