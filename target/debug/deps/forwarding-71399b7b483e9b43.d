/root/repo/target/debug/deps/forwarding-71399b7b483e9b43.d: crates/bench/benches/forwarding.rs

/root/repo/target/debug/deps/forwarding-71399b7b483e9b43: crates/bench/benches/forwarding.rs

crates/bench/benches/forwarding.rs:
