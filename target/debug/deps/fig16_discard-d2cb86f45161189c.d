/root/repo/target/debug/deps/fig16_discard-d2cb86f45161189c.d: crates/bench/src/bin/fig16_discard.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_discard-d2cb86f45161189c.rmeta: crates/bench/src/bin/fig16_discard.rs Cargo.toml

crates/bench/src/bin/fig16_discard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
