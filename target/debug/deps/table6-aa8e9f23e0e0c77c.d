/root/repo/target/debug/deps/table6-aa8e9f23e0e0c77c.d: crates/bench/benches/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-aa8e9f23e0e0c77c.rmeta: crates/bench/benches/table6.rs Cargo.toml

crates/bench/benches/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
