/root/repo/target/debug/deps/bytes-f2b76c39eece08fc.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f2b76c39eece08fc.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f2b76c39eece08fc.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
