/root/repo/target/debug/deps/fig15_level2-df3ad329d1dd5a8d.d: crates/bench/src/bin/fig15_level2.rs

/root/repo/target/debug/deps/fig15_level2-df3ad329d1dd5a8d: crates/bench/src/bin/fig15_level2.rs

crates/bench/src/bin/fig15_level2.rs:
