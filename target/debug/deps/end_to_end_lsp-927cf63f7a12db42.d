/root/repo/target/debug/deps/end_to_end_lsp-927cf63f7a12db42.d: tests/end_to_end_lsp.rs

/root/repo/target/debug/deps/end_to_end_lsp-927cf63f7a12db42: tests/end_to_end_lsp.rs

tests/end_to_end_lsp.rs:
