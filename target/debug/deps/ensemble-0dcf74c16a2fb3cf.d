/root/repo/target/debug/deps/ensemble-0dcf74c16a2fb3cf.d: crates/bench/src/bin/ensemble.rs Cargo.toml

/root/repo/target/debug/deps/libensemble-0dcf74c16a2fb3cf.rmeta: crates/bench/src/bin/ensemble.rs Cargo.toml

crates/bench/src/bin/ensemble.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
