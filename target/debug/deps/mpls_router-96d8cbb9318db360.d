/root/repo/target/debug/deps/mpls_router-96d8cbb9318db360.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-96d8cbb9318db360.rlib: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-96d8cbb9318db360.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
