/root/repo/target/debug/deps/mpls_sim-5e4350759732cb4c.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_sim-5e4350759732cb4c: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
