/root/repo/target/debug/deps/waveforms-147a335d7afb78bc.d: crates/core/tests/waveforms.rs

/root/repo/target/debug/deps/waveforms-147a335d7afb78bc: crates/core/tests/waveforms.rs

crates/core/tests/waveforms.rs:
