/root/repo/target/debug/deps/mpls_net-f723bb69841639c9.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/debug/deps/libmpls_net-f723bb69841639c9.rlib: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/debug/deps/libmpls_net-f723bb69841639c9.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/fault.rs:
crates/net/src/histogram.rs:
crates/net/src/link.rs:
crates/net/src/policer.rs:
crates/net/src/queue.rs:
crates/net/src/sim.rs:
crates/net/src/stats.rs:
crates/net/src/traffic.rs:
