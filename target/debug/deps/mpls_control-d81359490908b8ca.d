/root/repo/target/debug/deps/mpls_control-d81359490908b8ca.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/libmpls_control-d81359490908b8ca.rlib: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/libmpls_control-d81359490908b8ca.rmeta: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
