/root/repo/target/debug/deps/telemetry_demo-7c0fa709b0636fd6.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/debug/deps/telemetry_demo-7c0fa709b0636fd6: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
