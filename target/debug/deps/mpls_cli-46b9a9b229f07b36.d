/root/repo/target/debug/deps/mpls_cli-46b9a9b229f07b36.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_cli-46b9a9b229f07b36: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
crates/cli/src/../scenarios/example.json:
