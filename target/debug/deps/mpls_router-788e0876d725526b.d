/root/repo/target/debug/deps/mpls_router-788e0876d725526b.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-788e0876d725526b.rlib: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/libmpls_router-788e0876d725526b.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
