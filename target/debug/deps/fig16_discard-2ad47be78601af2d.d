/root/repo/target/debug/deps/fig16_discard-2ad47be78601af2d.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/debug/deps/fig16_discard-2ad47be78601af2d: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
