/root/repo/target/debug/deps/qos_te-459aea12b71a39cf.d: crates/bench/src/bin/qos_te.rs

/root/repo/target/debug/deps/qos_te-459aea12b71a39cf: crates/bench/src/bin/qos_te.rs

crates/bench/src/bin/qos_te.rs:
