/root/repo/target/debug/deps/failover-6b4f38ddeebef580.d: tests/failover.rs

/root/repo/target/debug/deps/failover-6b4f38ddeebef580: tests/failover.rs

tests/failover.rs:
