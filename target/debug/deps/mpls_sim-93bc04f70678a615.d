/root/repo/target/debug/deps/mpls_sim-93bc04f70678a615.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_sim-93bc04f70678a615: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
