/root/repo/target/debug/deps/embedded_mpls-20065b91dfbe658d.d: src/lib.rs

/root/repo/target/debug/deps/embedded_mpls-20065b91dfbe658d: src/lib.rs

src/lib.rs:
