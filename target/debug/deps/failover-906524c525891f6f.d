/root/repo/target/debug/deps/failover-906524c525891f6f.d: crates/bench/src/bin/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-906524c525891f6f.rmeta: crates/bench/src/bin/failover.rs Cargo.toml

crates/bench/src/bin/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
