/root/repo/target/debug/deps/fig15_level2-f2ee1c95d3dd17b0.d: crates/bench/src/bin/fig15_level2.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_level2-f2ee1c95d3dd17b0.rmeta: crates/bench/src/bin/fig15_level2.rs Cargo.toml

crates/bench/src/bin/fig15_level2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
