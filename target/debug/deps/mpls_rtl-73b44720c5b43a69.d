/root/repo/target/debug/deps/mpls_rtl-73b44720c5b43a69.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libmpls_rtl-73b44720c5b43a69.rlib: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libmpls_rtl-73b44720c5b43a69.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
