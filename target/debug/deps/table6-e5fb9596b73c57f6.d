/root/repo/target/debug/deps/table6-e5fb9596b73c57f6.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-e5fb9596b73c57f6: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
