/root/repo/target/debug/deps/search_scaling-0b22add451153622.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-0b22add451153622: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
