/root/repo/target/debug/deps/mpls_rtl-e4c96b6bd559e034.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_rtl-e4c96b6bd559e034.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
