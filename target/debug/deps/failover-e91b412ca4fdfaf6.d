/root/repo/target/debug/deps/failover-e91b412ca4fdfaf6.d: tests/failover.rs

/root/repo/target/debug/deps/failover-e91b412ca4fdfaf6: tests/failover.rs

tests/failover.rs:
