/root/repo/target/debug/deps/cycle_accuracy-045e0e11dee63c27.d: crates/core/tests/cycle_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libcycle_accuracy-045e0e11dee63c27.rmeta: crates/core/tests/cycle_accuracy.rs Cargo.toml

crates/core/tests/cycle_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
