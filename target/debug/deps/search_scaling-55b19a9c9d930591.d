/root/repo/target/debug/deps/search_scaling-55b19a9c9d930591.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-55b19a9c9d930591: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
