/root/repo/target/debug/deps/fig15_level2-351813deea9184c1.d: crates/bench/src/bin/fig15_level2.rs

/root/repo/target/debug/deps/fig15_level2-351813deea9184c1: crates/bench/src/bin/fig15_level2.rs

crates/bench/src/bin/fig15_level2.rs:
