/root/repo/target/debug/deps/mpls_telemetry-bee6639a89737a6f.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

/root/repo/target/debug/deps/mpls_telemetry-bee6639a89737a6f: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/instrument.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/tracer.rs:
