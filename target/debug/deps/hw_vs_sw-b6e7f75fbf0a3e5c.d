/root/repo/target/debug/deps/hw_vs_sw-b6e7f75fbf0a3e5c.d: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

/root/repo/target/debug/deps/libhw_vs_sw-b6e7f75fbf0a3e5c.rmeta: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

crates/bench/src/bin/hw_vs_sw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
