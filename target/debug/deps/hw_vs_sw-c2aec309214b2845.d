/root/repo/target/debug/deps/hw_vs_sw-c2aec309214b2845.d: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

/root/repo/target/debug/deps/libhw_vs_sw-c2aec309214b2845.rmeta: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

crates/bench/src/bin/hw_vs_sw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
