/root/repo/target/debug/deps/simulation_invariants-d1b0d4d4f4266ec4.d: tests/simulation_invariants.rs

/root/repo/target/debug/deps/simulation_invariants-d1b0d4d4f4266ec4: tests/simulation_invariants.rs

tests/simulation_invariants.rs:
