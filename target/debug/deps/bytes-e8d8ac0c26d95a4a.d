/root/repo/target/debug/deps/bytes-e8d8ac0c26d95a4a.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e8d8ac0c26d95a4a.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e8d8ac0c26d95a4a.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
