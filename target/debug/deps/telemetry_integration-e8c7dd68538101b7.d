/root/repo/target/debug/deps/telemetry_integration-e8c7dd68538101b7.d: tests/telemetry_integration.rs

/root/repo/target/debug/deps/telemetry_integration-e8c7dd68538101b7: tests/telemetry_integration.rs

tests/telemetry_integration.rs:
