/root/repo/target/debug/deps/fig16_discard-0b6fb7db2b272ef2.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/debug/deps/fig16_discard-0b6fb7db2b272ef2: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
