/root/repo/target/debug/deps/hw_sw_differential-08b49c54261c2f3e.d: tests/hw_sw_differential.rs

/root/repo/target/debug/deps/hw_sw_differential-08b49c54261c2f3e: tests/hw_sw_differential.rs

tests/hw_sw_differential.rs:
