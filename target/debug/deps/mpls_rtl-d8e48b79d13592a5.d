/root/repo/target/debug/deps/mpls_rtl-d8e48b79d13592a5.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libmpls_rtl-d8e48b79d13592a5.rlib: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libmpls_rtl-d8e48b79d13592a5.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
