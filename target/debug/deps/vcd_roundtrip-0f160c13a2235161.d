/root/repo/target/debug/deps/vcd_roundtrip-0f160c13a2235161.d: crates/rtl/tests/vcd_roundtrip.rs

/root/repo/target/debug/deps/vcd_roundtrip-0f160c13a2235161: crates/rtl/tests/vcd_roundtrip.rs

crates/rtl/tests/vcd_roundtrip.rs:
