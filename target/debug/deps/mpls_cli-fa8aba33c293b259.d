/root/repo/target/debug/deps/mpls_cli-fa8aba33c293b259.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-fa8aba33c293b259.rlib: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-fa8aba33c293b259.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
