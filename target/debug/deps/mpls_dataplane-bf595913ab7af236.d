/root/repo/target/debug/deps/mpls_dataplane-bf595913ab7af236.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_dataplane-bf595913ab7af236.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs Cargo.toml

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
