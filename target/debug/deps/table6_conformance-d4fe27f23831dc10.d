/root/repo/target/debug/deps/table6_conformance-d4fe27f23831dc10.d: tests/table6_conformance.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_conformance-d4fe27f23831dc10.rmeta: tests/table6_conformance.rs Cargo.toml

tests/table6_conformance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
