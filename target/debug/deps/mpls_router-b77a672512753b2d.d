/root/repo/target/debug/deps/mpls_router-b77a672512753b2d.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_router-b77a672512753b2d.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs Cargo.toml

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
