/root/repo/target/debug/deps/policing-c28d2ce88a9684f7.d: tests/policing.rs

/root/repo/target/debug/deps/policing-c28d2ce88a9684f7: tests/policing.rs

tests/policing.rs:
