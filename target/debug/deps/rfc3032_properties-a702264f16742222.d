/root/repo/target/debug/deps/rfc3032_properties-a702264f16742222.d: crates/packet/tests/rfc3032_properties.rs

/root/repo/target/debug/deps/rfc3032_properties-a702264f16742222: crates/packet/tests/rfc3032_properties.rs

crates/packet/tests/rfc3032_properties.rs:
