/root/repo/target/debug/deps/table6-374845fb59112b08.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-374845fb59112b08: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
