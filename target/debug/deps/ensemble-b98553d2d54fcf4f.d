/root/repo/target/debug/deps/ensemble-b98553d2d54fcf4f.d: crates/bench/src/bin/ensemble.rs

/root/repo/target/debug/deps/ensemble-b98553d2d54fcf4f: crates/bench/src/bin/ensemble.rs

crates/bench/src/bin/ensemble.rs:
