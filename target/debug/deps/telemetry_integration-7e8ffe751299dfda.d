/root/repo/target/debug/deps/telemetry_integration-7e8ffe751299dfda.d: tests/telemetry_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_integration-7e8ffe751299dfda.rmeta: tests/telemetry_integration.rs Cargo.toml

tests/telemetry_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
