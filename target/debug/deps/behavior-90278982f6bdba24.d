/root/repo/target/debug/deps/behavior-90278982f6bdba24.d: crates/core/tests/behavior.rs

/root/repo/target/debug/deps/behavior-90278982f6bdba24: crates/core/tests/behavior.rs

crates/core/tests/behavior.rs:
