/root/repo/target/debug/deps/red_vs_taildrop-b5237376456546f6.d: crates/bench/src/bin/red_vs_taildrop.rs

/root/repo/target/debug/deps/red_vs_taildrop-b5237376456546f6: crates/bench/src/bin/red_vs_taildrop.rs

crates/bench/src/bin/red_vs_taildrop.rs:
