/root/repo/target/debug/deps/table6-ecdacd34766a1cd4.d: crates/bench/benches/table6.rs

/root/repo/target/debug/deps/table6-ecdacd34766a1cd4: crates/bench/benches/table6.rs

crates/bench/benches/table6.rs:
