/root/repo/target/debug/deps/perf_counters-937e91b1f2a0c399.d: crates/core/tests/perf_counters.rs

/root/repo/target/debug/deps/perf_counters-937e91b1f2a0c399: crates/core/tests/perf_counters.rs

crates/core/tests/perf_counters.rs:
