/root/repo/target/debug/deps/stress_grid-eb8a76458c2e1e37.d: tests/stress_grid.rs

/root/repo/target/debug/deps/stress_grid-eb8a76458c2e1e37: tests/stress_grid.rs

tests/stress_grid.rs:
