/root/repo/target/debug/deps/mpls_packet-dd17a1b0402e947b.d: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/debug/deps/libmpls_packet-dd17a1b0402e947b.rlib: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/debug/deps/libmpls_packet-dd17a1b0402e947b.rmeta: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

crates/packet/src/lib.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/label.rs:
crates/packet/src/packet.rs:
crates/packet/src/stack.rs:
