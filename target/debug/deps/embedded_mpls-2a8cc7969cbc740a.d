/root/repo/target/debug/deps/embedded_mpls-2a8cc7969cbc740a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libembedded_mpls-2a8cc7969cbc740a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
