/root/repo/target/debug/deps/failover-af35f50614e942ac.d: crates/bench/src/bin/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-af35f50614e942ac.rmeta: crates/bench/src/bin/failover.rs Cargo.toml

crates/bench/src/bin/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
