/root/repo/target/debug/deps/mpls_cli-b30468cfa12a0947.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_cli-b30468cfa12a0947.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
