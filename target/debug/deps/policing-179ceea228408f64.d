/root/repo/target/debug/deps/policing-179ceea228408f64.d: tests/policing.rs

/root/repo/target/debug/deps/policing-179ceea228408f64: tests/policing.rs

tests/policing.rs:
