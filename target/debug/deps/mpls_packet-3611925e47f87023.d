/root/repo/target/debug/deps/mpls_packet-3611925e47f87023.d: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/debug/deps/libmpls_packet-3611925e47f87023.rlib: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/debug/deps/libmpls_packet-3611925e47f87023.rmeta: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

crates/packet/src/lib.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/label.rs:
crates/packet/src/packet.rs:
crates/packet/src/stack.rs:
