/root/repo/target/debug/deps/fig16_discard-7ec8756579ba860a.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/debug/deps/fig16_discard-7ec8756579ba860a: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
