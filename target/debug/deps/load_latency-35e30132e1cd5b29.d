/root/repo/target/debug/deps/load_latency-35e30132e1cd5b29.d: crates/bench/src/bin/load_latency.rs

/root/repo/target/debug/deps/load_latency-35e30132e1cd5b29: crates/bench/src/bin/load_latency.rs

crates/bench/src/bin/load_latency.rs:
