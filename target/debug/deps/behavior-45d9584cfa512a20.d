/root/repo/target/debug/deps/behavior-45d9584cfa512a20.d: crates/core/tests/behavior.rs

/root/repo/target/debug/deps/behavior-45d9584cfa512a20: crates/core/tests/behavior.rs

crates/core/tests/behavior.rs:
