/root/repo/target/debug/deps/search-e040a4e81c55b49c.d: crates/bench/benches/search.rs Cargo.toml

/root/repo/target/debug/deps/libsearch-e040a4e81c55b49c.rmeta: crates/bench/benches/search.rs Cargo.toml

crates/bench/benches/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
