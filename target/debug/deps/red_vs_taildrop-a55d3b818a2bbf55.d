/root/repo/target/debug/deps/red_vs_taildrop-a55d3b818a2bbf55.d: crates/bench/src/bin/red_vs_taildrop.rs

/root/repo/target/debug/deps/red_vs_taildrop-a55d3b818a2bbf55: crates/bench/src/bin/red_vs_taildrop.rs

crates/bench/src/bin/red_vs_taildrop.rs:
