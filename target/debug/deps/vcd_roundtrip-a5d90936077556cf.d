/root/repo/target/debug/deps/vcd_roundtrip-a5d90936077556cf.d: crates/rtl/tests/vcd_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libvcd_roundtrip-a5d90936077556cf.rmeta: crates/rtl/tests/vcd_roundtrip.rs Cargo.toml

crates/rtl/tests/vcd_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
