/root/repo/target/debug/deps/waveform_golden-6148a2d6d697c12c.d: tests/waveform_golden.rs

/root/repo/target/debug/deps/waveform_golden-6148a2d6d697c12c: tests/waveform_golden.rs

tests/waveform_golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
