/root/repo/target/debug/deps/perf_counters-cf4aa616e740cfda.d: crates/core/tests/perf_counters.rs Cargo.toml

/root/repo/target/debug/deps/libperf_counters-cf4aa616e740cfda.rmeta: crates/core/tests/perf_counters.rs Cargo.toml

crates/core/tests/perf_counters.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
