/root/repo/target/debug/deps/mpls_telemetry-9be4c94e5d7c0ba4.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_telemetry-9be4c94e5d7c0ba4.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/instrument.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
