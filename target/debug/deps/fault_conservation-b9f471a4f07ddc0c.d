/root/repo/target/debug/deps/fault_conservation-b9f471a4f07ddc0c.d: tests/fault_conservation.rs

/root/repo/target/debug/deps/fault_conservation-b9f471a4f07ddc0c: tests/fault_conservation.rs

tests/fault_conservation.rs:
