/root/repo/target/debug/deps/telemetry_demo-7c60f79a8dbbbc2f.d: crates/bench/src/bin/telemetry_demo.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_demo-7c60f79a8dbbbc2f.rmeta: crates/bench/src/bin/telemetry_demo.rs Cargo.toml

crates/bench/src/bin/telemetry_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
