/root/repo/target/debug/deps/hw_sw_differential-faee80819def2294.d: tests/hw_sw_differential.rs

/root/repo/target/debug/deps/hw_sw_differential-faee80819def2294: tests/hw_sw_differential.rs

tests/hw_sw_differential.rs:
