/root/repo/target/debug/deps/fsm_schedule-8b86506cd03d87e2.d: crates/core/tests/fsm_schedule.rs

/root/repo/target/debug/deps/fsm_schedule-8b86506cd03d87e2: crates/core/tests/fsm_schedule.rs

crates/core/tests/fsm_schedule.rs:
