/root/repo/target/debug/deps/table6-8267ea35262a474e.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-8267ea35262a474e: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
