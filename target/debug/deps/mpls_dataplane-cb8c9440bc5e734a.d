/root/repo/target/debug/deps/mpls_dataplane-cb8c9440bc5e734a.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/libmpls_dataplane-cb8c9440bc5e734a.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/libmpls_dataplane-cb8c9440bc5e734a.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
