/root/repo/target/debug/deps/fig16_discard-cee54203245e41e9.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/debug/deps/fig16_discard-cee54203245e41e9: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
