/root/repo/target/debug/deps/load_latency-054a6bbde3f90972.d: crates/bench/src/bin/load_latency.rs Cargo.toml

/root/repo/target/debug/deps/libload_latency-054a6bbde3f90972.rmeta: crates/bench/src/bin/load_latency.rs Cargo.toml

crates/bench/src/bin/load_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
