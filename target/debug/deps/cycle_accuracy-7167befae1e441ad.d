/root/repo/target/debug/deps/cycle_accuracy-7167befae1e441ad.d: crates/core/tests/cycle_accuracy.rs

/root/repo/target/debug/deps/cycle_accuracy-7167befae1e441ad: crates/core/tests/cycle_accuracy.rs

crates/core/tests/cycle_accuracy.rs:
