/root/repo/target/debug/deps/ablation-6ccdc48d4dc1b56f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-6ccdc48d4dc1b56f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
