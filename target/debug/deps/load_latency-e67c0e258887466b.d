/root/repo/target/debug/deps/load_latency-e67c0e258887466b.d: crates/bench/src/bin/load_latency.rs

/root/repo/target/debug/deps/load_latency-e67c0e258887466b: crates/bench/src/bin/load_latency.rs

crates/bench/src/bin/load_latency.rs:
