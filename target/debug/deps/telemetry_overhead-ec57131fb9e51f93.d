/root/repo/target/debug/deps/telemetry_overhead-ec57131fb9e51f93.d: crates/bench/tests/telemetry_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_overhead-ec57131fb9e51f93.rmeta: crates/bench/tests/telemetry_overhead.rs Cargo.toml

crates/bench/tests/telemetry_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
