/root/repo/target/debug/deps/fig15_level2-51b7592d7cb676ed.d: crates/bench/src/bin/fig15_level2.rs

/root/repo/target/debug/deps/fig15_level2-51b7592d7cb676ed: crates/bench/src/bin/fig15_level2.rs

crates/bench/src/bin/fig15_level2.rs:
