/root/repo/target/debug/deps/failover-eba080e9851f35a9.d: crates/bench/src/bin/failover.rs

/root/repo/target/debug/deps/failover-eba080e9851f35a9: crates/bench/src/bin/failover.rs

crates/bench/src/bin/failover.rs:
