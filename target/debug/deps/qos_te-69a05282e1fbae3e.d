/root/repo/target/debug/deps/qos_te-69a05282e1fbae3e.d: crates/bench/src/bin/qos_te.rs

/root/repo/target/debug/deps/qos_te-69a05282e1fbae3e: crates/bench/src/bin/qos_te.rs

crates/bench/src/bin/qos_te.rs:
