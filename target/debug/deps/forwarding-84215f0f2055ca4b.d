/root/repo/target/debug/deps/forwarding-84215f0f2055ca4b.d: crates/bench/benches/forwarding.rs Cargo.toml

/root/repo/target/debug/deps/libforwarding-84215f0f2055ca4b.rmeta: crates/bench/benches/forwarding.rs Cargo.toml

crates/bench/benches/forwarding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
