/root/repo/target/debug/deps/red_vs_taildrop-da3fc61a939628b9.d: crates/bench/src/bin/red_vs_taildrop.rs Cargo.toml

/root/repo/target/debug/deps/libred_vs_taildrop-da3fc61a939628b9.rmeta: crates/bench/src/bin/red_vs_taildrop.rs Cargo.toml

crates/bench/src/bin/red_vs_taildrop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
