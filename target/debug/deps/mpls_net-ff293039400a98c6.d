/root/repo/target/debug/deps/mpls_net-ff293039400a98c6.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_net-ff293039400a98c6.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/fault.rs:
crates/net/src/histogram.rs:
crates/net/src/link.rs:
crates/net/src/policer.rs:
crates/net/src/queue.rs:
crates/net/src/sim.rs:
crates/net/src/stats.rs:
crates/net/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
