/root/repo/target/debug/deps/mpls_sim-a4f74b35ccc672ec.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_sim-a4f74b35ccc672ec: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
