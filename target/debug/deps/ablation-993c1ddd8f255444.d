/root/repo/target/debug/deps/ablation-993c1ddd8f255444.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-993c1ddd8f255444: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
