/root/repo/target/debug/deps/load_latency-2756e0c14f347630.d: crates/bench/src/bin/load_latency.rs Cargo.toml

/root/repo/target/debug/deps/libload_latency-2756e0c14f347630.rmeta: crates/bench/src/bin/load_latency.rs Cargo.toml

crates/bench/src/bin/load_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
