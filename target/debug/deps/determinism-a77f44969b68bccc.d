/root/repo/target/debug/deps/determinism-a77f44969b68bccc.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-a77f44969b68bccc: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
