/root/repo/target/debug/deps/hw_vs_sw-9567b7e17ea6425f.d: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

/root/repo/target/debug/deps/libhw_vs_sw-9567b7e17ea6425f.rmeta: crates/bench/src/bin/hw_vs_sw.rs Cargo.toml

crates/bench/src/bin/hw_vs_sw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
