/root/repo/target/debug/deps/hw_sw_differential-9820cb8d855aefd3.d: tests/hw_sw_differential.rs

/root/repo/target/debug/deps/hw_sw_differential-9820cb8d855aefd3: tests/hw_sw_differential.rs

tests/hw_sw_differential.rs:
