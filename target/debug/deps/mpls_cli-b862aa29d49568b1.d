/root/repo/target/debug/deps/mpls_cli-b862aa29d49568b1.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-b862aa29d49568b1.rlib: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-b862aa29d49568b1.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
