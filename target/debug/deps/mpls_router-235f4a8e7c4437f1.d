/root/repo/target/debug/deps/mpls_router-235f4a8e7c4437f1.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/debug/deps/mpls_router-235f4a8e7c4437f1: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
