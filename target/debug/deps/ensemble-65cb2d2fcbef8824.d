/root/repo/target/debug/deps/ensemble-65cb2d2fcbef8824.d: crates/bench/src/bin/ensemble.rs Cargo.toml

/root/repo/target/debug/deps/libensemble-65cb2d2fcbef8824.rmeta: crates/bench/src/bin/ensemble.rs Cargo.toml

crates/bench/src/bin/ensemble.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
