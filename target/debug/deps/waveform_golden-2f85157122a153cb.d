/root/repo/target/debug/deps/waveform_golden-2f85157122a153cb.d: tests/waveform_golden.rs Cargo.toml

/root/repo/target/debug/deps/libwaveform_golden-2f85157122a153cb.rmeta: tests/waveform_golden.rs Cargo.toml

tests/waveform_golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
