/root/repo/target/debug/deps/mpls_net-045b5e5779772d93.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/debug/deps/mpls_net-045b5e5779772d93: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/fault.rs:
crates/net/src/histogram.rs:
crates/net/src/link.rs:
crates/net/src/policer.rs:
crates/net/src/queue.rs:
crates/net/src/sim.rs:
crates/net/src/stats.rs:
crates/net/src/traffic.rs:
