/root/repo/target/debug/deps/mpls_core-b010585c1ee54e6a.d: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/perf.rs crates/core/src/signals.rs crates/core/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_core-b010585c1ee54e6a.rmeta: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/perf.rs crates/core/src/signals.rs crates/core/src/timing.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/datapath/mod.rs:
crates/core/src/datapath/info_base.rs:
crates/core/src/datapath/stack.rs:
crates/core/src/figures.rs:
crates/core/src/fsm.rs:
crates/core/src/modifier.rs:
crates/core/src/ops.rs:
crates/core/src/perf.rs:
crates/core/src/signals.rs:
crates/core/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
