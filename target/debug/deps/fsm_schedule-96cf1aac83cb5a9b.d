/root/repo/target/debug/deps/fsm_schedule-96cf1aac83cb5a9b.d: crates/core/tests/fsm_schedule.rs

/root/repo/target/debug/deps/fsm_schedule-96cf1aac83cb5a9b: crates/core/tests/fsm_schedule.rs

crates/core/tests/fsm_schedule.rs:
