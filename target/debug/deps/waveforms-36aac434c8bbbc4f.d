/root/repo/target/debug/deps/waveforms-36aac434c8bbbc4f.d: crates/core/tests/waveforms.rs Cargo.toml

/root/repo/target/debug/deps/libwaveforms-36aac434c8bbbc4f.rmeta: crates/core/tests/waveforms.rs Cargo.toml

crates/core/tests/waveforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
