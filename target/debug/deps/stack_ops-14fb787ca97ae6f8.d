/root/repo/target/debug/deps/stack_ops-14fb787ca97ae6f8.d: crates/bench/benches/stack_ops.rs

/root/repo/target/debug/deps/stack_ops-14fb787ca97ae6f8: crates/bench/benches/stack_ops.rs

crates/bench/benches/stack_ops.rs:
