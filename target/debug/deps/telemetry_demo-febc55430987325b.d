/root/repo/target/debug/deps/telemetry_demo-febc55430987325b.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/debug/deps/telemetry_demo-febc55430987325b: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
