/root/repo/target/debug/deps/mpls_bench-49ad23f5512f560d.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-49ad23f5512f560d.rlib: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-49ad23f5512f560d.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
