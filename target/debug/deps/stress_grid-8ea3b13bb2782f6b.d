/root/repo/target/debug/deps/stress_grid-8ea3b13bb2782f6b.d: tests/stress_grid.rs

/root/repo/target/debug/deps/stress_grid-8ea3b13bb2782f6b: tests/stress_grid.rs

tests/stress_grid.rs:
