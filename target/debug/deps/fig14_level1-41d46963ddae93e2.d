/root/repo/target/debug/deps/fig14_level1-41d46963ddae93e2.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/debug/deps/fig14_level1-41d46963ddae93e2: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
