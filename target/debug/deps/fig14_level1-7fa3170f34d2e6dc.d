/root/repo/target/debug/deps/fig14_level1-7fa3170f34d2e6dc.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/debug/deps/fig14_level1-7fa3170f34d2e6dc: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
