/root/repo/target/debug/deps/stack_ops-f815528e100daebc.d: crates/bench/benches/stack_ops.rs

/root/repo/target/debug/deps/stack_ops-f815528e100daebc: crates/bench/benches/stack_ops.rs

crates/bench/benches/stack_ops.rs:
