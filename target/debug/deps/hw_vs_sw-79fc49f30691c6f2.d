/root/repo/target/debug/deps/hw_vs_sw-79fc49f30691c6f2.d: crates/bench/src/bin/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-79fc49f30691c6f2: crates/bench/src/bin/hw_vs_sw.rs

crates/bench/src/bin/hw_vs_sw.rs:
