/root/repo/target/debug/deps/qos_te-64364adae71c4dc8.d: crates/bench/src/bin/qos_te.rs

/root/repo/target/debug/deps/qos_te-64364adae71c4dc8: crates/bench/src/bin/qos_te.rs

crates/bench/src/bin/qos_te.rs:
