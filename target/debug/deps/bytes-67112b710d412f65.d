/root/repo/target/debug/deps/bytes-67112b710d412f65.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-67112b710d412f65: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
