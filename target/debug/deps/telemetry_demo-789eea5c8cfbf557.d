/root/repo/target/debug/deps/telemetry_demo-789eea5c8cfbf557.d: crates/bench/src/bin/telemetry_demo.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_demo-789eea5c8cfbf557.rmeta: crates/bench/src/bin/telemetry_demo.rs Cargo.toml

crates/bench/src/bin/telemetry_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
