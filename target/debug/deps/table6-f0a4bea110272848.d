/root/repo/target/debug/deps/table6-f0a4bea110272848.d: crates/bench/benches/table6.rs

/root/repo/target/debug/deps/table6-f0a4bea110272848: crates/bench/benches/table6.rs

crates/bench/benches/table6.rs:
