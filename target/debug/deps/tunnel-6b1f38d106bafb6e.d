/root/repo/target/debug/deps/tunnel-6b1f38d106bafb6e.d: tests/tunnel.rs

/root/repo/target/debug/deps/tunnel-6b1f38d106bafb6e: tests/tunnel.rs

tests/tunnel.rs:
