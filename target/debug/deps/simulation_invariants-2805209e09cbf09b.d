/root/repo/target/debug/deps/simulation_invariants-2805209e09cbf09b.d: tests/simulation_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation_invariants-2805209e09cbf09b.rmeta: tests/simulation_invariants.rs Cargo.toml

tests/simulation_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
