/root/repo/target/debug/deps/mpls_router-2ad3a16b72f15a50.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_router-2ad3a16b72f15a50.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs Cargo.toml

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
