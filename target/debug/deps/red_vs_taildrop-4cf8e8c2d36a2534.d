/root/repo/target/debug/deps/red_vs_taildrop-4cf8e8c2d36a2534.d: crates/bench/src/bin/red_vs_taildrop.rs

/root/repo/target/debug/deps/red_vs_taildrop-4cf8e8c2d36a2534: crates/bench/src/bin/red_vs_taildrop.rs

crates/bench/src/bin/red_vs_taildrop.rs:
