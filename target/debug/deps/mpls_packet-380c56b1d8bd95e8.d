/root/repo/target/debug/deps/mpls_packet-380c56b1d8bd95e8.d: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_packet-380c56b1d8bd95e8.rmeta: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/label.rs:
crates/packet/src/packet.rs:
crates/packet/src/stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
