/root/repo/target/debug/deps/fault_conservation-6a46c50505bcdc78.d: tests/fault_conservation.rs Cargo.toml

/root/repo/target/debug/deps/libfault_conservation-6a46c50505bcdc78.rmeta: tests/fault_conservation.rs Cargo.toml

tests/fault_conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
