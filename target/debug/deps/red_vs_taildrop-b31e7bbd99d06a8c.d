/root/repo/target/debug/deps/red_vs_taildrop-b31e7bbd99d06a8c.d: crates/bench/src/bin/red_vs_taildrop.rs

/root/repo/target/debug/deps/red_vs_taildrop-b31e7bbd99d06a8c: crates/bench/src/bin/red_vs_taildrop.rs

crates/bench/src/bin/red_vs_taildrop.rs:
