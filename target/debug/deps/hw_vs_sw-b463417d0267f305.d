/root/repo/target/debug/deps/hw_vs_sw-b463417d0267f305.d: crates/bench/benches/hw_vs_sw.rs Cargo.toml

/root/repo/target/debug/deps/libhw_vs_sw-b463417d0267f305.rmeta: crates/bench/benches/hw_vs_sw.rs Cargo.toml

crates/bench/benches/hw_vs_sw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
