/root/repo/target/debug/deps/end_to_end-924114e4ed40c636.d: crates/bench/src/bin/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-924114e4ed40c636: crates/bench/src/bin/end_to_end.rs

crates/bench/src/bin/end_to_end.rs:
