/root/repo/target/debug/deps/search_scaling-32265a8434391174.d: crates/bench/src/bin/search_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_scaling-32265a8434391174.rmeta: crates/bench/src/bin/search_scaling.rs Cargo.toml

crates/bench/src/bin/search_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
