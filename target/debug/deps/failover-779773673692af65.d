/root/repo/target/debug/deps/failover-779773673692af65.d: crates/bench/src/bin/failover.rs

/root/repo/target/debug/deps/failover-779773673692af65: crates/bench/src/bin/failover.rs

crates/bench/src/bin/failover.rs:
