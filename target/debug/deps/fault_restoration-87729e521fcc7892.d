/root/repo/target/debug/deps/fault_restoration-87729e521fcc7892.d: tests/fault_restoration.rs

/root/repo/target/debug/deps/fault_restoration-87729e521fcc7892: tests/fault_restoration.rs

tests/fault_restoration.rs:
