/root/repo/target/debug/deps/mpls_cli-4d9179ec87f6aaac.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json Cargo.toml

/root/repo/target/debug/deps/libmpls_cli-4d9179ec87f6aaac.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
crates/cli/src/../scenarios/example.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
