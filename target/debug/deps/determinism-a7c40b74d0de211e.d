/root/repo/target/debug/deps/determinism-a7c40b74d0de211e.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-a7c40b74d0de211e: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
