/root/repo/target/debug/deps/qos_te-d6938838870ffd36.d: crates/bench/src/bin/qos_te.rs

/root/repo/target/debug/deps/qos_te-d6938838870ffd36: crates/bench/src/bin/qos_te.rs

crates/bench/src/bin/qos_te.rs:
