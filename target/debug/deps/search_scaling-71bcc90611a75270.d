/root/repo/target/debug/deps/search_scaling-71bcc90611a75270.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-71bcc90611a75270: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
