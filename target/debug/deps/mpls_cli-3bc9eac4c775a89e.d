/root/repo/target/debug/deps/mpls_cli-3bc9eac4c775a89e.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-3bc9eac4c775a89e.rlib: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/debug/deps/libmpls_cli-3bc9eac4c775a89e.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
