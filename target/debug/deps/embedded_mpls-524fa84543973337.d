/root/repo/target/debug/deps/embedded_mpls-524fa84543973337.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libembedded_mpls-524fa84543973337.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
