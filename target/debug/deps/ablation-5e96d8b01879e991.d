/root/repo/target/debug/deps/ablation-5e96d8b01879e991.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-5e96d8b01879e991.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
