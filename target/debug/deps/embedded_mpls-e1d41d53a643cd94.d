/root/repo/target/debug/deps/embedded_mpls-e1d41d53a643cd94.d: src/lib.rs

/root/repo/target/debug/deps/embedded_mpls-e1d41d53a643cd94: src/lib.rs

src/lib.rs:
