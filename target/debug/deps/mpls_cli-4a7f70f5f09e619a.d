/root/repo/target/debug/deps/mpls_cli-4a7f70f5f09e619a.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libmpls_cli-4a7f70f5f09e619a.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
