/root/repo/target/debug/deps/ensemble-376bec32f341d750.d: crates/bench/src/bin/ensemble.rs Cargo.toml

/root/repo/target/debug/deps/libensemble-376bec32f341d750.rmeta: crates/bench/src/bin/ensemble.rs Cargo.toml

crates/bench/src/bin/ensemble.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
