/root/repo/target/debug/deps/fault_restoration-ff2cdb42ac347339.d: tests/fault_restoration.rs

/root/repo/target/debug/deps/fault_restoration-ff2cdb42ac347339: tests/fault_restoration.rs

tests/fault_restoration.rs:
