/root/repo/target/debug/deps/simulation_invariants-c6a2cd541dba6070.d: tests/simulation_invariants.rs

/root/repo/target/debug/deps/simulation_invariants-c6a2cd541dba6070: tests/simulation_invariants.rs

tests/simulation_invariants.rs:
