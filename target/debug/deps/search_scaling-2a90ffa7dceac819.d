/root/repo/target/debug/deps/search_scaling-2a90ffa7dceac819.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-2a90ffa7dceac819: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
