/root/repo/target/debug/deps/bytes-c8149fa0ce1e8424.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-c8149fa0ce1e8424.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
