/root/repo/target/debug/deps/mpls_dataplane-04e33f0e39dab5e7.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/libmpls_dataplane-04e33f0e39dab5e7.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/libmpls_dataplane-04e33f0e39dab5e7.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
