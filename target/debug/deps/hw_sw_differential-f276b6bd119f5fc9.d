/root/repo/target/debug/deps/hw_sw_differential-f276b6bd119f5fc9.d: tests/hw_sw_differential.rs Cargo.toml

/root/repo/target/debug/deps/libhw_sw_differential-f276b6bd119f5fc9.rmeta: tests/hw_sw_differential.rs Cargo.toml

tests/hw_sw_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
