/root/repo/target/debug/deps/fig16_discard-52cd0fce20c5c1a7.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/debug/deps/fig16_discard-52cd0fce20c5c1a7: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
