/root/repo/target/debug/deps/fault_restoration-0fd9db920ca90eb5.d: tests/fault_restoration.rs Cargo.toml

/root/repo/target/debug/deps/libfault_restoration-0fd9db920ca90eb5.rmeta: tests/fault_restoration.rs Cargo.toml

tests/fault_restoration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
