/root/repo/target/debug/deps/mpls_bench-9704882c4201e933.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/mpls_bench-9704882c4201e933: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
