/root/repo/target/debug/deps/simulation_invariants-a99b018f9b21cc41.d: tests/simulation_invariants.rs

/root/repo/target/debug/deps/simulation_invariants-a99b018f9b21cc41: tests/simulation_invariants.rs

tests/simulation_invariants.rs:
