/root/repo/target/debug/deps/load_latency-20edb89f5c30058d.d: crates/bench/src/bin/load_latency.rs

/root/repo/target/debug/deps/load_latency-20edb89f5c30058d: crates/bench/src/bin/load_latency.rs

crates/bench/src/bin/load_latency.rs:
