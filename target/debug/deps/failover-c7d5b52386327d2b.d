/root/repo/target/debug/deps/failover-c7d5b52386327d2b.d: tests/failover.rs

/root/repo/target/debug/deps/failover-c7d5b52386327d2b: tests/failover.rs

tests/failover.rs:
