/root/repo/target/debug/deps/bytes-0e61914ae32478cf.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-0e61914ae32478cf: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
