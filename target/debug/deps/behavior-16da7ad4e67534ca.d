/root/repo/target/debug/deps/behavior-16da7ad4e67534ca.d: crates/core/tests/behavior.rs

/root/repo/target/debug/deps/behavior-16da7ad4e67534ca: crates/core/tests/behavior.rs

crates/core/tests/behavior.rs:
