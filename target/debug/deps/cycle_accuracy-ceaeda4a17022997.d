/root/repo/target/debug/deps/cycle_accuracy-ceaeda4a17022997.d: crates/core/tests/cycle_accuracy.rs

/root/repo/target/debug/deps/cycle_accuracy-ceaeda4a17022997: crates/core/tests/cycle_accuracy.rs

crates/core/tests/cycle_accuracy.rs:
