/root/repo/target/debug/deps/fig15_level2-bef145288fa9cf7f.d: crates/bench/src/bin/fig15_level2.rs

/root/repo/target/debug/deps/fig15_level2-bef145288fa9cf7f: crates/bench/src/bin/fig15_level2.rs

crates/bench/src/bin/fig15_level2.rs:
