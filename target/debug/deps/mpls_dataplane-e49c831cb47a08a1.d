/root/repo/target/debug/deps/mpls_dataplane-e49c831cb47a08a1.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/mpls_dataplane-e49c831cb47a08a1: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
