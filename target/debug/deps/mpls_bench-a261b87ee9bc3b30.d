/root/repo/target/debug/deps/mpls_bench-a261b87ee9bc3b30.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/mpls_bench-a261b87ee9bc3b30: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
