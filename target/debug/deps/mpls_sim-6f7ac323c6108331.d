/root/repo/target/debug/deps/mpls_sim-6f7ac323c6108331.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_sim-6f7ac323c6108331: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
