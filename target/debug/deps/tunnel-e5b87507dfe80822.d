/root/repo/target/debug/deps/tunnel-e5b87507dfe80822.d: tests/tunnel.rs

/root/repo/target/debug/deps/tunnel-e5b87507dfe80822: tests/tunnel.rs

tests/tunnel.rs:
