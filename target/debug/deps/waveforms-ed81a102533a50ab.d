/root/repo/target/debug/deps/waveforms-ed81a102533a50ab.d: crates/core/tests/waveforms.rs

/root/repo/target/debug/deps/waveforms-ed81a102533a50ab: crates/core/tests/waveforms.rs

crates/core/tests/waveforms.rs:
