/root/repo/target/debug/deps/table6-6b51106d243575fe.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-6b51106d243575fe: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
