/root/repo/target/debug/deps/hw_vs_sw-2cd4c05844438cea.d: crates/bench/src/bin/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-2cd4c05844438cea: crates/bench/src/bin/hw_vs_sw.rs

crates/bench/src/bin/hw_vs_sw.rs:
