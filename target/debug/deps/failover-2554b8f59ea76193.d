/root/repo/target/debug/deps/failover-2554b8f59ea76193.d: tests/failover.rs Cargo.toml

/root/repo/target/debug/deps/libfailover-2554b8f59ea76193.rmeta: tests/failover.rs Cargo.toml

tests/failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
