/root/repo/target/debug/deps/ablation-a0b88bc6d886eacd.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-a0b88bc6d886eacd: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
