/root/repo/target/debug/deps/search_scaling-08abec5724b8af94.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-08abec5724b8af94: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
