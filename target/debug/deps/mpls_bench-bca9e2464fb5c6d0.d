/root/repo/target/debug/deps/mpls_bench-bca9e2464fb5c6d0.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-bca9e2464fb5c6d0.rlib: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/debug/deps/libmpls_bench-bca9e2464fb5c6d0.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
