/root/repo/target/debug/deps/fig15_level2-dfdee8e77e0e13d2.d: crates/bench/src/bin/fig15_level2.rs

/root/repo/target/debug/deps/fig15_level2-dfdee8e77e0e13d2: crates/bench/src/bin/fig15_level2.rs

crates/bench/src/bin/fig15_level2.rs:
