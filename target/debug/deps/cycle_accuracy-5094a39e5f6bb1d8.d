/root/repo/target/debug/deps/cycle_accuracy-5094a39e5f6bb1d8.d: crates/core/tests/cycle_accuracy.rs

/root/repo/target/debug/deps/cycle_accuracy-5094a39e5f6bb1d8: crates/core/tests/cycle_accuracy.rs

crates/core/tests/cycle_accuracy.rs:
