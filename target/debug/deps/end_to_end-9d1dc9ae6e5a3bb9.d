/root/repo/target/debug/deps/end_to_end-9d1dc9ae6e5a3bb9.d: crates/bench/src/bin/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9d1dc9ae6e5a3bb9: crates/bench/src/bin/end_to_end.rs

crates/bench/src/bin/end_to_end.rs:
