/root/repo/target/debug/deps/telemetry_overhead-fd5e2bb933ef7051.d: crates/bench/tests/telemetry_overhead.rs

/root/repo/target/debug/deps/telemetry_overhead-fd5e2bb933ef7051: crates/bench/tests/telemetry_overhead.rs

crates/bench/tests/telemetry_overhead.rs:
