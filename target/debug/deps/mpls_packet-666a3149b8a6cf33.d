/root/repo/target/debug/deps/mpls_packet-666a3149b8a6cf33.d: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/debug/deps/mpls_packet-666a3149b8a6cf33: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

crates/packet/src/lib.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/label.rs:
crates/packet/src/packet.rs:
crates/packet/src/stack.rs:
