/root/repo/target/debug/deps/embedded_mpls-d107feedf5a30cde.d: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-d107feedf5a30cde.rlib: src/lib.rs

/root/repo/target/debug/deps/libembedded_mpls-d107feedf5a30cde.rmeta: src/lib.rs

src/lib.rs:
