/root/repo/target/debug/deps/determinism-f2f87cc756f84cc2.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-f2f87cc756f84cc2: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
