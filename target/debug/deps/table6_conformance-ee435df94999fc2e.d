/root/repo/target/debug/deps/table6_conformance-ee435df94999fc2e.d: tests/table6_conformance.rs

/root/repo/target/debug/deps/table6_conformance-ee435df94999fc2e: tests/table6_conformance.rs

tests/table6_conformance.rs:
