/root/repo/target/debug/deps/fsm_schedule-51566b44cb725dfd.d: crates/core/tests/fsm_schedule.rs Cargo.toml

/root/repo/target/debug/deps/libfsm_schedule-51566b44cb725dfd.rmeta: crates/core/tests/fsm_schedule.rs Cargo.toml

crates/core/tests/fsm_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
