/root/repo/target/debug/deps/mpls_control-7c7780fcb49398bb.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/mpls_control-7c7780fcb49398bb: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
