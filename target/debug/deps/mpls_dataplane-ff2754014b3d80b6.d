/root/repo/target/debug/deps/mpls_dataplane-ff2754014b3d80b6.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/debug/deps/mpls_dataplane-ff2754014b3d80b6: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
