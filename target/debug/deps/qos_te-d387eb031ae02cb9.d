/root/repo/target/debug/deps/qos_te-d387eb031ae02cb9.d: crates/bench/src/bin/qos_te.rs

/root/repo/target/debug/deps/qos_te-d387eb031ae02cb9: crates/bench/src/bin/qos_te.rs

crates/bench/src/bin/qos_te.rs:
