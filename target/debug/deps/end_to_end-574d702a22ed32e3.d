/root/repo/target/debug/deps/end_to_end-574d702a22ed32e3.d: crates/bench/src/bin/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-574d702a22ed32e3: crates/bench/src/bin/end_to_end.rs

crates/bench/src/bin/end_to_end.rs:
