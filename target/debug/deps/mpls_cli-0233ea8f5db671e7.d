/root/repo/target/debug/deps/mpls_cli-0233ea8f5db671e7.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

/root/repo/target/debug/deps/mpls_cli-0233ea8f5db671e7: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs crates/cli/src/../scenarios/example.json

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
crates/cli/src/../scenarios/example.json:
