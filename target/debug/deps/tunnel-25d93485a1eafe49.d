/root/repo/target/debug/deps/tunnel-25d93485a1eafe49.d: tests/tunnel.rs

/root/repo/target/debug/deps/tunnel-25d93485a1eafe49: tests/tunnel.rs

tests/tunnel.rs:
