/root/repo/target/debug/deps/hw_vs_sw-76d04f26617eb9bd.d: crates/bench/src/bin/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-76d04f26617eb9bd: crates/bench/src/bin/hw_vs_sw.rs

crates/bench/src/bin/hw_vs_sw.rs:
