/root/repo/target/debug/deps/ensemble-bc434049fadaae4d.d: crates/bench/src/bin/ensemble.rs

/root/repo/target/debug/deps/ensemble-bc434049fadaae4d: crates/bench/src/bin/ensemble.rs

crates/bench/src/bin/ensemble.rs:
