/root/repo/target/debug/deps/ablation-9f9f7f0bd91f48d3.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9f9f7f0bd91f48d3: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
