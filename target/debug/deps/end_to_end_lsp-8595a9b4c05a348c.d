/root/repo/target/debug/deps/end_to_end_lsp-8595a9b4c05a348c.d: tests/end_to_end_lsp.rs

/root/repo/target/debug/deps/end_to_end_lsp-8595a9b4c05a348c: tests/end_to_end_lsp.rs

tests/end_to_end_lsp.rs:
