/root/repo/target/debug/deps/policing-0f33932b7e7a7cc5.d: tests/policing.rs

/root/repo/target/debug/deps/policing-0f33932b7e7a7cc5: tests/policing.rs

tests/policing.rs:
