/root/repo/target/debug/deps/fsm_schedule-f0de5a3b10d47156.d: crates/core/tests/fsm_schedule.rs

/root/repo/target/debug/deps/fsm_schedule-f0de5a3b10d47156: crates/core/tests/fsm_schedule.rs

crates/core/tests/fsm_schedule.rs:
