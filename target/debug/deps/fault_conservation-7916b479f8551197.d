/root/repo/target/debug/deps/fault_conservation-7916b479f8551197.d: tests/fault_conservation.rs

/root/repo/target/debug/deps/fault_conservation-7916b479f8551197: tests/fault_conservation.rs

tests/fault_conservation.rs:
