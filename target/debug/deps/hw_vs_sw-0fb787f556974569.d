/root/repo/target/debug/deps/hw_vs_sw-0fb787f556974569.d: crates/bench/src/bin/hw_vs_sw.rs

/root/repo/target/debug/deps/hw_vs_sw-0fb787f556974569: crates/bench/src/bin/hw_vs_sw.rs

crates/bench/src/bin/hw_vs_sw.rs:
