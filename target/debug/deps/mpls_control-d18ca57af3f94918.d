/root/repo/target/debug/deps/mpls_control-d18ca57af3f94918.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/debug/deps/mpls_control-d18ca57af3f94918: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
