/root/repo/target/debug/deps/search_scaling-dda276ebed61233d.d: crates/bench/src/bin/search_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_scaling-dda276ebed61233d.rmeta: crates/bench/src/bin/search_scaling.rs Cargo.toml

crates/bench/src/bin/search_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
