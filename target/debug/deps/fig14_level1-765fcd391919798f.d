/root/repo/target/debug/deps/fig14_level1-765fcd391919798f.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/debug/deps/fig14_level1-765fcd391919798f: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
