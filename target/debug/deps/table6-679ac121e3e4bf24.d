/root/repo/target/debug/deps/table6-679ac121e3e4bf24.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-679ac121e3e4bf24: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
