/root/repo/target/debug/deps/mpls_sim-7955a5401392d699.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json Cargo.toml

/root/repo/target/debug/deps/libmpls_sim-7955a5401392d699.rmeta: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
