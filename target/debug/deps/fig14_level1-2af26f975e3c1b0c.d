/root/repo/target/debug/deps/fig14_level1-2af26f975e3c1b0c.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/debug/deps/fig14_level1-2af26f975e3c1b0c: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
