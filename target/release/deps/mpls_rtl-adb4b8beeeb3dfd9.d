/root/repo/target/release/deps/mpls_rtl-adb4b8beeeb3dfd9.d: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libmpls_rtl-adb4b8beeeb3dfd9.rlib: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libmpls_rtl-adb4b8beeeb3dfd9.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comparator.rs crates/rtl/src/counter.rs crates/rtl/src/memory.rs crates/rtl/src/register.rs crates/rtl/src/trace.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comparator.rs:
crates/rtl/src/counter.rs:
crates/rtl/src/memory.rs:
crates/rtl/src/register.rs:
crates/rtl/src/trace.rs:
crates/rtl/src/vcd.rs:
