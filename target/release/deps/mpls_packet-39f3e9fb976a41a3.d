/root/repo/target/release/deps/mpls_packet-39f3e9fb976a41a3.d: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/release/deps/libmpls_packet-39f3e9fb976a41a3.rlib: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

/root/repo/target/release/deps/libmpls_packet-39f3e9fb976a41a3.rmeta: crates/packet/src/lib.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/ipv4.rs crates/packet/src/label.rs crates/packet/src/packet.rs crates/packet/src/stack.rs

crates/packet/src/lib.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/label.rs:
crates/packet/src/packet.rs:
crates/packet/src/stack.rs:
