/root/repo/target/release/deps/mpls_telemetry-b5e216075fe96434.d: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

/root/repo/target/release/deps/libmpls_telemetry-b5e216075fe96434.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

/root/repo/target/release/deps/libmpls_telemetry-b5e216075fe96434.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/export.rs crates/telemetry/src/instrument.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/sink.rs crates/telemetry/src/tracer.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/instrument.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/tracer.rs:
