/root/repo/target/release/deps/embedded_mpls-1437cd63552b5900.d: src/lib.rs

/root/repo/target/release/deps/libembedded_mpls-1437cd63552b5900.rlib: src/lib.rs

/root/repo/target/release/deps/libembedded_mpls-1437cd63552b5900.rmeta: src/lib.rs

src/lib.rs:
