/root/repo/target/release/deps/mpls_dataplane-cc49227f23c4fdb1.d: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/release/deps/libmpls_dataplane-cc49227f23c4fdb1.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

/root/repo/target/release/deps/libmpls_dataplane-cc49227f23c4fdb1.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/fib.rs crates/dataplane/src/forwarder.rs crates/dataplane/src/ftn.rs crates/dataplane/src/lookup.rs crates/dataplane/src/rfc.rs crates/dataplane/src/types.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/fib.rs:
crates/dataplane/src/forwarder.rs:
crates/dataplane/src/ftn.rs:
crates/dataplane/src/lookup.rs:
crates/dataplane/src/rfc.rs:
crates/dataplane/src/types.rs:
