/root/repo/target/release/deps/mpls_control-025d249967e32b3d.d: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/release/deps/libmpls_control-025d249967e32b3d.rlib: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

/root/repo/target/release/deps/libmpls_control-025d249967e32b3d.rmeta: crates/control/src/lib.rs crates/control/src/config.rs crates/control/src/cspf.rs crates/control/src/label_alloc.rs crates/control/src/signaling.rs crates/control/src/topology.rs

crates/control/src/lib.rs:
crates/control/src/config.rs:
crates/control/src/cspf.rs:
crates/control/src/label_alloc.rs:
crates/control/src/signaling.rs:
crates/control/src/topology.rs:
