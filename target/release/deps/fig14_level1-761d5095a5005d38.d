/root/repo/target/release/deps/fig14_level1-761d5095a5005d38.d: crates/bench/src/bin/fig14_level1.rs

/root/repo/target/release/deps/fig14_level1-761d5095a5005d38: crates/bench/src/bin/fig14_level1.rs

crates/bench/src/bin/fig14_level1.rs:
