/root/repo/target/release/deps/table6-296fa35ea03f9319.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-296fa35ea03f9319: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
