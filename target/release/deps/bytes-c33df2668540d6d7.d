/root/repo/target/release/deps/bytes-c33df2668540d6d7.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-c33df2668540d6d7.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-c33df2668540d6d7.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
