/root/repo/target/release/deps/mpls_sim-8ec0f1d421234a31.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/release/deps/mpls_sim-8ec0f1d421234a31: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
