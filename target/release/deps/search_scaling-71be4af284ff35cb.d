/root/repo/target/release/deps/search_scaling-71be4af284ff35cb.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/release/deps/search_scaling-71be4af284ff35cb: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
