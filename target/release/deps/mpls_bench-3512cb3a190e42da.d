/root/repo/target/release/deps/mpls_bench-3512cb3a190e42da.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/release/deps/libmpls_bench-3512cb3a190e42da.rlib: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/release/deps/libmpls_bench-3512cb3a190e42da.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
