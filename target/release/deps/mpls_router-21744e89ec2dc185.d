/root/repo/target/release/deps/mpls_router-21744e89ec2dc185.d: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/release/deps/libmpls_router-21744e89ec2dc185.rlib: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

/root/repo/target/release/deps/libmpls_router-21744e89ec2dc185.rmeta: crates/router/src/lib.rs crates/router/src/embedded.rs crates/router/src/forwarding.rs crates/router/src/pipeline.rs crates/router/src/software.rs

crates/router/src/lib.rs:
crates/router/src/embedded.rs:
crates/router/src/forwarding.rs:
crates/router/src/pipeline.rs:
crates/router/src/software.rs:
