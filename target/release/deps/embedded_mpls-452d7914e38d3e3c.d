/root/repo/target/release/deps/embedded_mpls-452d7914e38d3e3c.d: src/lib.rs

/root/repo/target/release/deps/libembedded_mpls-452d7914e38d3e3c.rlib: src/lib.rs

/root/repo/target/release/deps/libembedded_mpls-452d7914e38d3e3c.rmeta: src/lib.rs

src/lib.rs:
