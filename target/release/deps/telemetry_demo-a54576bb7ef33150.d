/root/repo/target/release/deps/telemetry_demo-a54576bb7ef33150.d: crates/bench/src/bin/telemetry_demo.rs

/root/repo/target/release/deps/telemetry_demo-a54576bb7ef33150: crates/bench/src/bin/telemetry_demo.rs

crates/bench/src/bin/telemetry_demo.rs:
