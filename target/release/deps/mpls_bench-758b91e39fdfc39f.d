/root/repo/target/release/deps/mpls_bench-758b91e39fdfc39f.d: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/release/deps/libmpls_bench-758b91e39fdfc39f.rlib: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

/root/repo/target/release/deps/libmpls_bench-758b91e39fdfc39f.rmeta: crates/bench/src/lib.rs crates/bench/src/figure_print.rs crates/bench/src/report.rs crates/bench/src/scenarios.rs

crates/bench/src/lib.rs:
crates/bench/src/figure_print.rs:
crates/bench/src/report.rs:
crates/bench/src/scenarios.rs:
