/root/repo/target/release/deps/mpls_net-186dc51a8ae6e173.d: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/release/deps/libmpls_net-186dc51a8ae6e173.rlib: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

/root/repo/target/release/deps/libmpls_net-186dc51a8ae6e173.rmeta: crates/net/src/lib.rs crates/net/src/event.rs crates/net/src/fault.rs crates/net/src/histogram.rs crates/net/src/link.rs crates/net/src/policer.rs crates/net/src/queue.rs crates/net/src/sim.rs crates/net/src/stats.rs crates/net/src/traffic.rs

crates/net/src/lib.rs:
crates/net/src/event.rs:
crates/net/src/fault.rs:
crates/net/src/histogram.rs:
crates/net/src/link.rs:
crates/net/src/policer.rs:
crates/net/src/queue.rs:
crates/net/src/sim.rs:
crates/net/src/stats.rs:
crates/net/src/traffic.rs:
