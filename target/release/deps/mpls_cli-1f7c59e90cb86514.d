/root/repo/target/release/deps/mpls_cli-1f7c59e90cb86514.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/release/deps/libmpls_cli-1f7c59e90cb86514.rlib: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/release/deps/libmpls_cli-1f7c59e90cb86514.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
