/root/repo/target/release/deps/failover-56d0ecea2d2d62db.d: crates/bench/src/bin/failover.rs

/root/repo/target/release/deps/failover-56d0ecea2d2d62db: crates/bench/src/bin/failover.rs

crates/bench/src/bin/failover.rs:
