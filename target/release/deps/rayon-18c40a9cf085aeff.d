/root/repo/target/release/deps/rayon-18c40a9cf085aeff.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-18c40a9cf085aeff.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-18c40a9cf085aeff.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
