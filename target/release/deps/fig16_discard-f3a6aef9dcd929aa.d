/root/repo/target/release/deps/fig16_discard-f3a6aef9dcd929aa.d: crates/bench/src/bin/fig16_discard.rs

/root/repo/target/release/deps/fig16_discard-f3a6aef9dcd929aa: crates/bench/src/bin/fig16_discard.rs

crates/bench/src/bin/fig16_discard.rs:
