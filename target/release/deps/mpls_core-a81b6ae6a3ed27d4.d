/root/repo/target/release/deps/mpls_core-a81b6ae6a3ed27d4.d: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/perf.rs crates/core/src/signals.rs crates/core/src/timing.rs

/root/repo/target/release/deps/libmpls_core-a81b6ae6a3ed27d4.rlib: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/perf.rs crates/core/src/signals.rs crates/core/src/timing.rs

/root/repo/target/release/deps/libmpls_core-a81b6ae6a3ed27d4.rmeta: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/perf.rs crates/core/src/signals.rs crates/core/src/timing.rs

crates/core/src/lib.rs:
crates/core/src/datapath/mod.rs:
crates/core/src/datapath/info_base.rs:
crates/core/src/datapath/stack.rs:
crates/core/src/figures.rs:
crates/core/src/fsm.rs:
crates/core/src/modifier.rs:
crates/core/src/ops.rs:
crates/core/src/perf.rs:
crates/core/src/signals.rs:
crates/core/src/timing.rs:
