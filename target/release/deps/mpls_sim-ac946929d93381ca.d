/root/repo/target/release/deps/mpls_sim-ac946929d93381ca.d: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

/root/repo/target/release/deps/mpls_sim-ac946929d93381ca: crates/cli/src/main.rs crates/cli/src/../scenarios/example.json

crates/cli/src/main.rs:
crates/cli/src/../scenarios/example.json:
