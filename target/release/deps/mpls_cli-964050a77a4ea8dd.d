/root/repo/target/release/deps/mpls_cli-964050a77a4ea8dd.d: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/release/deps/libmpls_cli-964050a77a4ea8dd.rlib: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

/root/repo/target/release/deps/libmpls_cli-964050a77a4ea8dd.rmeta: crates/cli/src/lib.rs crates/cli/src/report.rs crates/cli/src/scenario.rs

crates/cli/src/lib.rs:
crates/cli/src/report.rs:
crates/cli/src/scenario.rs:
