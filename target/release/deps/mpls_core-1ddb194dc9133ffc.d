/root/repo/target/release/deps/mpls_core-1ddb194dc9133ffc.d: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/signals.rs crates/core/src/timing.rs

/root/repo/target/release/deps/libmpls_core-1ddb194dc9133ffc.rlib: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/signals.rs crates/core/src/timing.rs

/root/repo/target/release/deps/libmpls_core-1ddb194dc9133ffc.rmeta: crates/core/src/lib.rs crates/core/src/datapath/mod.rs crates/core/src/datapath/info_base.rs crates/core/src/datapath/stack.rs crates/core/src/figures.rs crates/core/src/fsm.rs crates/core/src/modifier.rs crates/core/src/ops.rs crates/core/src/signals.rs crates/core/src/timing.rs

crates/core/src/lib.rs:
crates/core/src/datapath/mod.rs:
crates/core/src/datapath/info_base.rs:
crates/core/src/datapath/stack.rs:
crates/core/src/figures.rs:
crates/core/src/fsm.rs:
crates/core/src/modifier.rs:
crates/core/src/ops.rs:
crates/core/src/signals.rs:
crates/core/src/timing.rs:
